//! The `perfbench` driver: a seeded Table-4-style performance matrix over
//! (graph size × planner × topology), emitted as a machine-readable
//! `BENCH_*.json` perf trajectory and gated in CI against a committed
//! baseline.
//!
//! Each cell runs one planner (or the whole [`Portfolio`] with a
//! [`PlanCache`]) several times on one graph/topology pair and records
//! median/p95 wall-clock, simulated-evaluation counts, cache hit rate, and
//! the top profile-tree hotspots from the instrumented hot paths. The
//! matrix includes a stacked-Transformer graph whose depth scales the op
//! count toward the 100k-op regime of ROADMAP item 2, so every future
//! planner-speed PR shows up as a trajectory delta.
//!
//! Regression gating (see [`check_against_baseline`]): cell medians are
//! compared by `(graph, planner, topo)` key — more than
//! [`WARN_THRESHOLD_PCT`] slower warns, more than [`FAIL_THRESHOLD_PCT`]
//! fails, and cells whose baseline median is under [`MIN_GATE_SECS`] are
//! informational only (small medians are noise-dominated on shared CI
//! runners).

use fastt::{
    default_slos, DataParallelPlanner, DposPlanner, HierarchicalPlanner, OsDposPlanner, PlanCache,
    Planner, PlanningContext, Portfolio, PortfolioInputs,
};
use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::{build_training_graph, Graph};
use fastt_models::{stacked_transformer, Model};
use fastt_sim::{HardwarePerf, SimConfig};
use fastt_telemetry::{evaluate_slos, Collector, MetricValue, Value};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag stamped into every emitted JSON document.
pub const SCHEMA: &str = "fastt-perfbench/v1";

/// Median regressions beyond this fraction of the baseline warn.
pub const WARN_THRESHOLD_PCT: f64 = 0.10;

/// Median regressions beyond this fraction of the baseline fail the gate.
pub const FAIL_THRESHOLD_PCT: f64 = 0.25;

/// Cells whose *baseline* median is below this many seconds are reported
/// but never gate — low-millisecond medians swing ±30% run to run on
/// shared runners (measured), which would make a 25% fail threshold flaky.
pub const MIN_GATE_SECS: f64 = 5e-3;

/// How many profile-tree hotspots each cell keeps.
pub const HOTSPOT_COUNT: usize = 5;

/// Probing (one simulated iteration per portfolio candidate) is skipped for
/// graphs above this op count — it would dominate the measurement.
const PROBE_OP_LIMIT: usize = 20_000;

/// OS-DPOS cells (standalone and inside the portfolio) are skipped for
/// graphs above this op count: Alg. 2 re-runs Alg. 1 per candidate split
/// of every critical-path op, so its cost grows super-linearly — measured
/// at ~100 s per repeat on the 64-layer stack (3.3k ops, 2 servers) and
/// ~8.5 min on the 256-layer one (13.3k ops, 1 server), vs ~180 ms on the
/// 870-op Transformer. The deep scaling cells therefore track DPOS, which
/// is what the ROADMAP 100k-op latency item targets anyway. Skips are
/// logged, never silent.
pub const OS_DPOS_OP_LIMIT: usize = 1_000;

/// Matrix configuration. [`PerfConfig::small`] is the CI matrix;
/// [`PerfConfig::full`] adds the deep stacked-Transformer cells and the
/// multi-server topology.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// `"small"` or `"full"` — recorded in the JSON.
    pub mode: String,
    /// Wall-clock samples per cell.
    pub repeats: usize,
    /// Deterministic seed for the probe simulations.
    pub seed: u64,
    /// Encoder depths of the stacked-Transformer scaling cells.
    pub stack_layers: Vec<u32>,
    /// Cluster shapes to run each (graph, planner) pair on.
    pub topologies: Vec<(String, u16, u16)>,
    /// Whether the fixed reference models (LeNet, Transformer) are in the
    /// matrix; tests turn this off to keep debug-mode runs fast.
    pub reference_models: bool,
}

impl PerfConfig {
    /// The CI matrix: an 8-layer stack plus a 64-layer one (the 3.3k-op
    /// DPOS cell the gate actually watches), one 2-GPU server, 5 repeats.
    pub fn small() -> Self {
        PerfConfig {
            mode: "small".into(),
            repeats: 5,
            seed: 42,
            stack_layers: vec![8, 64],
            topologies: vec![("1x2".into(), 1, 2)],
            reference_models: true,
        }
    }

    /// The full matrix: deep stacks (op count scaled toward 100k),
    /// single- and multi-server topologies.
    pub fn full() -> Self {
        PerfConfig {
            mode: "full".into(),
            repeats: 5,
            seed: 42,
            stack_layers: vec![8, 64, 256],
            topologies: vec![("1x4".into(), 1, 4), ("2x4".into(), 2, 4)],
            reference_models: true,
        }
    }
}

/// The graphs of the matrix, smallest first.
fn matrix_graphs(cfg: &PerfConfig) -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    if cfg.reference_models {
        graphs.push(("lenet_b32".to_string(), Model::LeNet.training_graph(32)));
        graphs.push((
            "transformer_b256".to_string(),
            Model::Transformer.training_graph(256),
        ));
    }
    for &layers in &cfg.stack_layers {
        let fwd = stacked_transformer(64, layers);
        let g = build_training_graph(&fwd).expect("stacked transformer trains");
        graphs.push((format!("stack{layers}_b64"), g));
    }
    graphs
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn hotspots_json(col: &Collector) -> Value {
    Value::Arr(
        col.profiler()
            .hotspots(HOTSPOT_COUNT)
            .into_iter()
            .map(|h| {
                Value::obj([
                    ("path", Value::from(h.path)),
                    ("calls", Value::from(h.calls)),
                    ("total_secs", Value::from(h.total_secs)),
                    ("self_secs", Value::from(h.self_secs)),
                ])
            })
            .collect(),
    )
}

struct CellResult {
    samples: Vec<f64>,
    evals: u64,
    cache_hit_rate: f64,
    collector: Arc<Collector>,
    slos: Option<Value>,
    /// One seeded simulated iteration of the *last* repeat's plan, run
    /// outside the timed region — what lets the trajectory compare planner
    /// wall-clock at equal-or-better plan quality (NaN above the probe
    /// op limit).
    probed_makespan: f64,
    /// Planner-specific cell fields (the hierarchical cells report their
    /// decomposition shape and within/across time split here).
    extras: Vec<(String, Value)>,
}

/// One single-planner cell: `repeats` fresh plans on a shared collector.
fn run_planner_cell(
    planner: &dyn Planner,
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    cost: &CostModels,
    repeats: usize,
    seed: u64,
) -> CellResult {
    let col = Arc::new(Collector::new());
    let mut samples = Vec::with_capacity(repeats);
    let mut evals = 0u64;
    let mut last_plan = None;
    // Region-granular sub-plan store for planners that use one — every
    // session hands its planners a shared PlanCache, so the cell measures
    // the planner as deployed (repeat 1 populates, later repeats reuse;
    // repeated layers hit even within one pass).
    let region_cache = PlanCache::new(256);
    for _ in 0..repeats {
        let mut ctx = PlanningContext {
            graph,
            raw: Some(graph),
            current: None,
            topo,
            hw,
            cost: cost.clone(),
            collector: Some(col.clone()),
            enable_order: true,
            dp_ps: None,
            region_cache: Some(&region_cache),
            cache_salt: 0,
            evals_used: 0,
        };
        let t0 = Instant::now();
        let res = planner.plan(&mut ctx);
        samples.push(t0.elapsed().as_secs_f64());
        evals += ctx.evals_used as u64;
        assert!(res.is_ok(), "planner {} failed: {res:?}", planner.name());
        last_plan = res.ok();
    }
    let probed_makespan = match &last_plan {
        Some(plan) if graph.op_count() <= PROBE_OP_LIMIT => plan
            .simulate(
                topo,
                hw,
                &SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            )
            .map(|t| t.makespan)
            .unwrap_or(f64::NAN),
        _ => f64::NAN,
    };
    // Planners that decompose report their shape as gauges on the cell's
    // collector; surface them as trajectory-diffable cell fields.
    let mut extras = Vec::new();
    let m = col.metrics();
    for (gauge, field) in [
        ("hier.regions", "region_count"),
        ("hier.rounds", "collapse_rounds"),
        ("hier.residual", "residual_regions"),
        ("hier.decompose_secs", "decompose_secs"),
        ("hier.across_secs", "across_secs"),
        ("hier.within_secs", "within_secs"),
    ] {
        if let Some(MetricValue::Gauge(v)) = m.get(gauge) {
            extras.push((field.to_string(), Value::from(v)));
        }
    }
    CellResult {
        samples,
        evals,
        cache_hit_rate: f64::NAN,
        collector: col,
        slos: None,
        probed_makespan,
        extras,
    }
}

/// One portfolio cell: the full candidate fan-out through a [`PlanCache`]
/// (repeat 1 misses, later repeats hit), optionally probed on the
/// simulator, with SLO verdicts graded from the cell's own registry.
fn run_portfolio_cell(
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    cost: &CostModels,
    repeats: usize,
    seed: u64,
) -> CellResult {
    let col = Arc::new(Collector::new());
    let mut portfolio = Portfolio::new().with(Box::new(DposPlanner));
    if graph.op_count() <= OS_DPOS_OP_LIMIT {
        portfolio = portfolio.with(Box::new(OsDposPlanner::default()));
    }
    portfolio = portfolio.with(Box::<DataParallelPlanner>::default());
    portfolio = portfolio.with(Box::<HierarchicalPlanner>::default());
    // Sized so the hierarchical planner's per-region sub-plan entries
    // (which share this store) never evict the whole-plan entries between
    // repeats.
    let cache = PlanCache::new(128);
    // The probe carries the cell's collector so the simulator's own phases
    // (`sim.lower`, `sim.event_loop`) nest under `portfolio > probe`.
    let probe = (graph.op_count() <= PROBE_OP_LIMIT).then(|| SimConfig {
        seed,
        collector: Some(col.clone()),
        ..SimConfig::default()
    });
    let mut samples = Vec::with_capacity(repeats);
    let mut evals = 0u64;
    for _ in 0..repeats {
        let inputs = PortfolioInputs {
            graph,
            raw: Some(graph),
            current: None,
            topo,
            hw,
            cost,
            collector: Some(col.clone()),
            enable_order: true,
            dp_ps: None,
            cache_salt: 0,
            probe: probe.clone(),
        };
        let t0 = Instant::now();
        let outcome = portfolio.evaluate(&inputs, Some(&cache));
        samples.push(t0.elapsed().as_secs_f64());
        evals += outcome
            .candidates
            .iter()
            .map(|c| c.evals_used as u64)
            .sum::<u64>();
    }
    let lookups = cache.hits() + cache.misses();
    let verdicts = evaluate_slos(&default_slos(), col.metrics());
    let region_lookups = cache.region_hits() + cache.region_misses();
    let mut extras = Vec::new();
    if region_lookups > 0 {
        extras.push((
            "region_cache_hit_rate".to_string(),
            Value::from(cache.region_hits() as f64 / region_lookups as f64),
        ));
    }
    CellResult {
        samples,
        evals,
        cache_hit_rate: if lookups == 0 {
            f64::NAN
        } else {
            cache.hits() as f64 / lookups as f64
        },
        collector: col,
        slos: Some(Value::Arr(verdicts.iter().map(|v| v.to_json()).collect())),
        probed_makespan: f64::NAN,
        extras,
    }
}

/// Runs the whole matrix and returns the `BENCH_*.json` document.
pub fn run_matrix(cfg: &PerfConfig) -> Value {
    let hw = HardwarePerf::new();
    let graphs = matrix_graphs(cfg);
    let mut cells: Vec<Value> = Vec::new();
    for (topo_label, servers, gpus) in &cfg.topologies {
        let topo = Topology::multi_server(*servers, *gpus);
        for (graph_label, graph) in &graphs {
            // One bootstrap per (graph, topo): profiled costs shared by
            // every planner cell, outside the timed region.
            let cost = fastt::bootstrap_cost_models(graph, &topo, &hw);
            let mut planners: Vec<Box<dyn Planner>> = vec![Box::new(DposPlanner)];
            if graph.op_count() <= OS_DPOS_OP_LIMIT {
                planners.push(Box::new(OsDposPlanner::default()));
            } else {
                eprintln!(
                    "perfbench:   {graph_label}/os_dpos/{topo_label}: SKIPPED \
                     ({} ops > {OS_DPOS_OP_LIMIT} OS-DPOS op limit)",
                    graph.op_count()
                );
            }
            planners.push(Box::<HierarchicalPlanner>::default());
            for p in &planners {
                eprintln!("perfbench:   {graph_label}/{}/{topo_label}", p.name());
                let r =
                    run_planner_cell(p.as_ref(), graph, &topo, &hw, &cost, cfg.repeats, cfg.seed);
                cells.push(cell_json(graph_label, graph, p.name(), topo_label, cfg, r));
            }
            eprintln!("perfbench:   {graph_label}/portfolio/{topo_label}");
            let r = run_portfolio_cell(graph, &topo, &hw, &cost, cfg.repeats, cfg.seed);
            cells.push(cell_json(
                graph_label,
                graph,
                "portfolio",
                topo_label,
                cfg,
                r,
            ));
        }
    }
    Value::obj([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from(cfg.mode.clone())),
        ("seed", Value::from(cfg.seed)),
        ("repeats", Value::from(cfg.repeats as u64)),
        ("cells", Value::Arr(cells)),
    ])
}

fn cell_json(
    graph_label: &str,
    graph: &Graph,
    planner: &str,
    topo_label: &str,
    cfg: &PerfConfig,
    r: CellResult,
) -> Value {
    let mut sorted = r.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let mut fields = vec![
        ("graph".to_string(), Value::from(graph_label)),
        ("ops".to_string(), Value::from(graph.op_count() as u64)),
        ("planner".to_string(), Value::from(planner)),
        ("topo".to_string(), Value::from(topo_label)),
        ("repeats".to_string(), Value::from(cfg.repeats as u64)),
        (
            "median_secs".to_string(),
            Value::from(quantile(&sorted, 0.5)),
        ),
        ("p95_secs".to_string(), Value::from(quantile(&sorted, 0.95))),
        ("evals".to_string(), Value::from(r.evals)),
        ("cache_hit_rate".to_string(), Value::from(r.cache_hit_rate)),
        (
            "probed_makespan_secs".to_string(),
            Value::from(r.probed_makespan),
        ),
        ("hotspots".to_string(), hotspots_json(&r.collector)),
    ];
    fields.extend(r.extras);
    if let Some(slos) = r.slos {
        fields.push(("slos".to_string(), slos));
    }
    Value::Obj(fields)
}

/// The structure of a BENCH document with every timing-dependent field
/// removed: same-seed runs must produce identical fingerprints (pinned by
/// a test), which is what makes trajectory diffs trustworthy.
pub fn structural_fingerprint(doc: &Value) -> Value {
    const VOLATILE: [&str; 8] = [
        "median_secs",
        "p95_secs",
        "hotspots",
        "slos",
        "generated_unix",
        "decompose_secs",
        "across_secs",
        "within_secs",
    ];
    match doc {
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| !VOLATILE.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), structural_fingerprint(v)))
                .collect(),
        ),
        Value::Arr(items) => Value::Arr(items.iter().map(structural_fingerprint).collect()),
        other => other.clone(),
    }
}

/// Outcome of diffing a fresh BENCH document against the committed
/// baseline.
#[derive(Debug)]
pub struct GateOutcome {
    /// Human-readable per-cell lines.
    pub lines: Vec<String>,
    /// Cells slower than the warn threshold (but within the fail one).
    pub warns: usize,
    /// Cells slower than the fail threshold — a non-empty value should
    /// fail CI.
    pub fails: usize,
}

impl GateOutcome {
    /// Whether the gate passes (no cell beyond the fail threshold).
    pub fn passed(&self) -> bool {
        self.fails == 0
    }
}

fn cell_key(c: &Value) -> Option<String> {
    Some(format!(
        "{}/{}/{}",
        c["graph"].as_str()?,
        c["planner"].as_str()?,
        c["topo"].as_str()?
    ))
}

/// Compares cell medians between `current` and `baseline` by
/// `(graph, planner, topo)` key, applying the documented thresholds: warn
/// beyond [`WARN_THRESHOLD_PCT`], fail beyond [`FAIL_THRESHOLD_PCT`],
/// ignore cells whose baseline median is under [`MIN_GATE_SECS`]. Cells
/// present only on one side are reported but never fail the gate.
pub fn check_against_baseline(current: &Value, baseline: &Value) -> GateOutcome {
    let empty: [Value; 0] = [];
    let base_cells = baseline["cells"].as_array().unwrap_or(&empty);
    let cur_cells = current["cells"].as_array().unwrap_or(&empty);
    let mut out = GateOutcome {
        lines: Vec::new(),
        warns: 0,
        fails: 0,
    };
    for b in base_cells {
        let Some(key) = cell_key(b) else { continue };
        let Some(cur) = cur_cells
            .iter()
            .find(|c| cell_key(c).as_deref() == Some(key.as_str()))
        else {
            out.lines
                .push(format!("MISSING {key}: cell absent from current run"));
            out.warns += 1;
            continue;
        };
        let (Some(bm), Some(cm)) = (b["median_secs"].as_f64(), cur["median_secs"].as_f64()) else {
            continue;
        };
        if bm < MIN_GATE_SECS {
            out.lines.push(format!(
                "SKIP    {key}: baseline median {bm:.6}s below {MIN_GATE_SECS}s noise floor"
            ));
            continue;
        }
        let delta = cm / bm - 1.0;
        let verdict = if delta > FAIL_THRESHOLD_PCT {
            out.fails += 1;
            "FAIL"
        } else if delta > WARN_THRESHOLD_PCT {
            out.warns += 1;
            "WARN"
        } else {
            "OK"
        };
        out.lines.push(format!(
            "{verdict:<7} {key}: median {cm:.6}s vs baseline {bm:.6}s ({:+.1}%)",
            delta * 100.0
        ));
    }
    for c in cur_cells {
        if let Some(key) = cell_key(c) {
            if !base_cells
                .iter()
                .any(|b| cell_key(b).as_deref() == Some(key.as_str()))
            {
                out.lines.push(format!("NEW     {key}: no baseline entry"));
            }
        }
    }
    out
}
