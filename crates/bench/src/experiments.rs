//! Callable versions of every table/figure experiment, shared by the
//! `table*`/`fig*` binaries and the `paper` bench target (so `cargo bench`
//! regenerates the paper's entire evaluation).

pub mod table1 {
    //! Table 1: training speed (samples/s) under **strong scaling** — the global
    //! batch stays fixed while GPUs are added. Columns: 1 GPU, then DP vs FastT
    //! for 2/4/8 GPUs and 8 GPUs over two servers; final column is the speedup
    //! of the best FastT entry over the best DP entry (how the paper computes
    //! its bold speedup column).
    #[allow(unused_imports)]
    use crate::*;
    use fastt_cluster::Topology;
    use fastt_models::Model;

    /// Runs the experiment and prints its rows.
    pub fn table1(models: &[Model]) {
        let models = models.iter().copied();
        print_header(
            "Table 1: strong scaling, samples/s (global batch fixed)",
            &[
                "Model(batch)",
                "1 GPU",
                "2GPUs DP",
                "2GPUs FastT",
                "4GPUs DP",
                "4GPUs FastT",
                "8GPUs DP",
                "8GPUs FastT",
                "8GPUs(2srv) DP",
                "8GPUs(2srv) FastT",
                "Speedup",
            ],
        );

        for model in models {
            let global = model.paper_batch();
            let mut row = vec![format!("{}({})", model.name(), global)];

            // single GPU: DP and FastT coincide (one replica, no choices)
            let topo1 = Topology::single_server(1);
            let single = run_dp(model, &topo1, global);
            row.push(fmt_sps(&single));

            let mut best_dp = match &single {
                Ok(m) => m.samples_per_sec,
                Err(_) => 0.0,
            };
            let mut best_ft = best_dp;

            for setting in strong_scaling_settings() {
                let topo = setting.topology();
                let n = setting.gpus();
                let prb = per_replica_batch(model, global, n);
                let dp = run_dp(model, &topo, prb);
                if let Ok(m) = &dp {
                    best_dp = best_dp.max(m.samples_per_sec);
                }
                row.push(fmt_sps(&dp));
                match run_fastt(model, &topo, prb, prb * n as u64, None) {
                    Ok(ft) => {
                        best_ft = best_ft.max(ft.measurement.samples_per_sec);
                        row.push(format!("{:>9.1}", ft.measurement.samples_per_sec));
                    }
                    Err(e) => {
                        eprintln!("[table1] {model} {}: {e}", setting.label);
                        row.push(format!("{:>9}", "ERR"));
                    }
                }
            }

            let speedup = if best_dp > 0.0 {
                (best_ft / best_dp - 1.0) * 100.0
            } else {
                f64::NAN
            };
            row.push(format!("{speedup:.1}%"));
            println!("| {} |", row.join(" | "));
        }
    }
}

pub mod table2 {
    //! Table 2: training speed (samples/s) under **weak scaling** — the per-GPU
    //! batch stays fixed, so the global batch grows with the GPU count.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{fmt_sps, print_header, run_dp, run_fastt, weak_scaling_settings};
    use fastt_cluster::Topology;
    use fastt_models::Model;

    /// Runs the experiment and prints its rows.
    pub fn table2(models: &[Model]) {
        let models = models.iter().copied();
        print_header(
            "Table 2: weak scaling, samples/s (per-GPU batch fixed)",
            &[
                "Model(batch/GPU)",
                "1 GPU",
                "2GPUs DP",
                "2GPUs FastT",
                "4GPUs DP",
                "4GPUs FastT",
                "8GPUs DP",
                "8GPUs FastT",
                "16GPUs(2srv) DP",
                "16GPUs(2srv) FastT",
                "Speedup",
            ],
        );

        for model in models {
            let per_gpu = model.paper_batch();
            let mut row = vec![format!("{}({})", model.name(), per_gpu)];

            let topo1 = Topology::single_server(1);
            let single = run_dp(model, &topo1, per_gpu);
            row.push(fmt_sps(&single));
            let mut best_dp = match &single {
                Ok(m) => m.samples_per_sec,
                Err(_) => 0.0,
            };
            let mut best_ft = best_dp;

            for setting in weak_scaling_settings() {
                let topo = setting.topology();
                let n = setting.gpus();
                let dp = run_dp(model, &topo, per_gpu);
                if let Ok(m) = &dp {
                    best_dp = best_dp.max(m.samples_per_sec);
                }
                row.push(fmt_sps(&dp));
                match run_fastt(model, &topo, per_gpu, per_gpu * n as u64, None) {
                    Ok(ft) => {
                        best_ft = best_ft.max(ft.measurement.samples_per_sec);
                        row.push(format!("{:>9.1}", ft.measurement.samples_per_sec));
                    }
                    Err(e) => {
                        eprintln!("[table2] {model} {}: {e}", setting.label);
                        row.push(format!("{:>9}", "ERR"));
                    }
                }
            }

            let speedup = if best_dp > 0.0 {
                (best_ft / best_dp - 1.0) * 100.0
            } else {
                f64::NAN
            };
            row.push(format!("{speedup:.1}%"));
            println!("| {} |", row.join(" | "));
        }
    }
}

pub mod table3 {
    //! Table 3: per-iteration training time (seconds) for BERT-large at growing
    //! global batch sizes — single GPU, 2-GPU DP, and 2-GPU FastT. Data
    //! parallelism runs out of memory beyond batch 32; FastT keeps training at
    //! 40 and 48 by deploying the model across both GPUs.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{print_header, run_dp, run_fastt};
    use fastt_cluster::Topology;
    use fastt_models::Model;

    fn cell(r: Result<f64, bool>) -> String {
        match r {
            Ok(t) => format!("{t:.3}"),
            Err(true) => "OOM".into(),
            Err(false) => "ERR".into(),
        }
    }

    /// Runs the experiment and prints its rows.
    pub fn table3() {
        let model = Model::BertLarge;
        print_header(
            "Table 3: Bert-large per-iteration time (s) vs global batch",
            &["Global batch", "Single GPU", "2GPUs DP", "2GPUs FastT"],
        );

        for batch in [16u64, 32, 40, 48] {
            let topo1 = Topology::single_server(1);
            let single = run_dp(model, &topo1, batch)
                .map(|m| m.iter_time)
                .map_err(|e| e.is_oom());

            let topo2 = Topology::single_server(2);
            let dp = run_dp(model, &topo2, batch / 2)
                .map(|m| m.iter_time)
                .map_err(|e| e.is_oom());

            let ft = match run_fastt(model, &topo2, batch / 2, batch, None) {
                Ok(r) => Ok(r.measurement.iter_time),
                Err(fastt::FastTError::NoFeasibleStart { .. }) => Err(true),
                Err(fastt::FastTError::Sim(e)) => Err(e.is_oom()),
                Err(_) => Err(false),
            };

            println!(
                "| Bert-large({batch}) | {} | {} | {} |",
                cell(single),
                cell(dp),
                cell(ft)
            );
        }
    }
}

pub mod table4 {
    //! Table 4: wall-clock time to compute the FastT strategies (Alg. 2) per
    //! model and GPU count.
    //!
    //! The paper's numbers (minutes) include profiling iterations and session
    //! restarts on real hardware; ours isolate the pure strategy computation
    //! (DPOS/OS-DPOS invocations during the whole pre-training workflow), the
    //! quantity that actually scales with model size and device count. Relative
    //! ordering across models/GPU counts is the reproducible shape.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{per_replica_batch, print_header, run_fastt};
    use fastt_cluster::Topology;

    /// Runs the experiment and prints its rows.
    pub fn table4(models: &[Model]) {
        let models = models.iter().copied();
        print_header(
            "Table 4: strategy computation time (s, wall clock in Alg.1/Alg.2)",
            &["Model(batch)", "2GPUs", "4GPUs", "8GPUs"],
        );

        for model in models {
            let global = model.paper_batch();
            let mut row = vec![format!("{}({})", model.name(), global)];
            for gpus in [2u16, 4, 8] {
                let topo = Topology::single_server(gpus);
                let prb = per_replica_batch(model, global, gpus as u32);
                match run_fastt(model, &topo, prb, global, None) {
                    Ok(r) => row.push(format!("{:.2}", r.report.strategy_calc_secs)),
                    Err(e) => {
                        eprintln!("[table4] {model} {gpus} GPUs: {e}");
                        row.push("ERR".into());
                    }
                }
            }
            println!("| {} |", row.join(" | "));
        }
    }
}

pub mod table5 {
    //! Table 5: split decisions for representative operations in VGG-19
    //! (4 GPUs, the paper's best-speedup setting): per-op execution time,
    //! weight size, and whether FastT decided to split it.
    //!
    //! The paper's qualitative finding: ops that get split have long execution
    //! time and small weights; large-weight ops (fc6) are not split to avoid
    //! broadcasting parameters.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{per_replica_batch, print_header, run_fastt};
    use fastt_cluster::Topology;
    use fastt_cost::canonical_name;
    use fastt_graph::OpKind;
    use fastt_models::Model;

    /// Runs the experiment and prints its rows.
    pub fn table5() {
        let model = Model::Vgg19;
        let topo = Topology::single_server(4);
        let prb = per_replica_batch(model, 64, 4);
        let run = run_fastt(model, &topo, prb, 64, None).expect("vgg fits");
        let plan = run.session.current_plan();
        let cost = &run.session.cost;

        let split_names: Vec<String> = plan
            .splits
            .iter()
            .map(|s| canonical_name(&s.op_name))
            .collect();

        print_header(
            "Table 5: split decisions for representative VGG-19 ops (4 GPUs)",
            &["Operation", "Time(ms)", "Weight(KB)", "Split"],
        );

        let representative = [
            "conv1_1",
            "conv1_2",
            "grad/conv1_2",
            "relu1_2",
            "pool1",
            "fc6",
        ];
        // weights of an op live in its `<name>/weights` variable
        let graph = &plan.graph;
        for name in representative {
            // find any instance (replica 0 by convention, or a part of it)
            let inst = graph.iter_ops().find(|(_, o)| {
                canonical_name(&o.name) == name || {
                    // split parts keep the parent name plus `.part#`
                    canonical_name(&o.name).starts_with(name)
                        && canonical_name(&o.name)[name.len()..].starts_with(".part")
                }
            });
            let time_ms = cost
                .comp
                .max_time(&format!("rep0/{name}"))
                .or_else(|| cost.comp.max_time(name))
                .map(|t| t * 1e3)
                .unwrap_or(f64::NAN);
            let weight_kb = graph
                .iter_ops()
                .find(|(_, o)| {
                    o.kind == OpKind::Variable
                        && canonical_name(&o.name)
                            == format!("{}/weights", name.trim_start_matches("grad/"))
                })
                .map(|(_, o)| o.param_bytes as f64 / 1024.0)
                .unwrap_or(0.0);
            let split = split_names.iter().any(|s| s == name);
            println!(
                "| {name} | {time_ms:.3} | {weight_kb:.1} | {} |{}",
                split,
                if inst.is_none() { " (op absent)" } else { "" }
            );
        }

        println!("\nAll split decisions: {:?}", plan.splits);
    }
}

pub mod table6 {
    //! Table 6: per-iteration training time with and without operation
    //! splitting, plus the key split op kinds (the paper's ablation of
    //! Alg. 2: conv-heavy CNNs benefit from Conv2D/Conv2Dbp splits,
    //! attention models from MatMul splits, LeNet/AlexNet/LSTMs not at all).
    //!
    //! To isolate the split decision, both plans are computed from the
    //! *same* trained cost models (one FastT session with splitting on):
    //! "Split" is the OS-DPOS plan, "No split" the plain-DPOS plan, and
    //! both are measured in the simulator under order enforcement.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{dp_ps_for, per_replica_batch, print_header, run_fastt};
    use fastt::SessionConfig;
    use fastt_cluster::Topology;
    use fastt_cost::canonical_name;
    use fastt_sim::{HardwarePerf, SimConfig};

    /// Runs the experiment and prints its rows.
    pub fn table6(models: &[Model]) {
        print_header(
            "Table 6: per-iteration time (s) with/without operation split (8 GPUs)",
            &["Model", "No split", "Split", "Speedup", "Key split op"],
        );

        let hw = HardwarePerf::new();
        for model in models.iter().copied() {
            let topo = Topology::single_server(8);
            let global = model.paper_batch();
            let prb = per_replica_batch(model, global, 8);
            let cfg = SessionConfig {
                dp_ps: dp_ps_for(model),
                ..SessionConfig::default()
            };
            // one session to train the cost models (and the base graph)
            let run = match run_fastt(model, &topo, prb, global, Some(cfg)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("[table6] {model}: {e}");
                    println!("| {} | ERR | ERR | - | - |", model.name());
                    continue;
                }
            };
            let mut session = run.session;
            // candidate A: OS-DPOS (split search enabled)
            let split_plan = session.compute_candidate();
            // candidate B: plain DPOS from the same cost models
            let no_split_plan = session.compute_candidate_no_split();

            let measure = |p: &fastt::Plan| -> Option<f64> {
                p.simulate(&topo, &hw, &SimConfig::default())
                    .ok()
                    .map(|t| t.makespan)
            };
            match (measure(&no_split_plan), measure(&split_plan)) {
                (Some(t0), Some(t1)) => {
                    let speedup = (t0 / t1 - 1.0) * 100.0;
                    let mut kinds: Vec<String> = split_plan
                        .splits
                        .iter()
                        .map(|d| {
                            let base = canonical_name(&d.op_name);
                            split_plan
                                .graph
                                .iter_ops()
                                .find(|(_, o)| {
                                    canonical_name(&o.name).starts_with(&format!("{base}.part"))
                                })
                                .map(|(_, o)| o.kind.to_string())
                                .unwrap_or(base)
                        })
                        .collect();
                    kinds.sort();
                    kinds.dedup();
                    let key = if kinds.is_empty() {
                        "None".to_string()
                    } else {
                        kinds.join(",")
                    };
                    println!(
                        "| {} | {t0:.3} | {t1:.3} | {speedup:.2}% | {key} |",
                        model.name()
                    );
                }
                _ => println!("| {} | ERR | ERR | - | - |", model.name()),
            }
        }
    }
}

pub mod fig2 {
    //! Fig. 2: performance gain of order enforcement. Each model runs on 2 GPUs
    //! under the default data-parallel placement; we compare TensorFlow's
    //! default FIFO execution order against FastT's enforced order computed for
    //! the *same* placement (isolating the ordering effect, as the paper does).
    #[allow(unused_imports)]
    use crate::*;
    use crate::{dp_ps_for, print_header, MEASURE_ITERS};
    use fastt::{data_parallel_plan, data_parallel_plan_on, schedule_for_placement};
    use fastt_cluster::Topology;
    use fastt_cost::CostModels;
    use fastt_graph::{replicate_grouped, ReplicationMode};
    use fastt_models::Model;
    use fastt_sim::{HardwarePerf, SimConfig};

    /// Runs the experiment and prints its rows.
    pub fn fig2() {
        let models = [Model::AlexNet, Model::Vgg19, Model::LeNet, Model::ResNet200];
        let topo = Topology::single_server(2);
        let hw = HardwarePerf::new();

        print_header(
        "Fig. 2: per-iteration time (s), default FIFO vs order enforcement (2 GPUs, DP placement)",
        &["Model", "Default", "Order enforce", "Reduction"],
    );

        for model in models {
            let prb = model.paper_batch() / 2;
            let graph = model.training_graph(prb);
            let rep = replicate_grouped(&graph, &[0, 0], ReplicationMode::ParameterServer)
                .expect("replicates");
            let mut plan = match dp_ps_for(model) {
                Some(d) => data_parallel_plan_on(&rep, &topo, d),
                None => data_parallel_plan(&rep, &topo),
            };

            // profile under FIFO to learn the cost models and the baseline time
            let mut cost = CostModels::new();
            let mut fifo_time = 0.0;
            for it in 0..MEASURE_ITERS {
                let cfg = SimConfig {
                    jitter_pct: 0.02,
                    iteration: it as u64,
                    ..SimConfig::default()
                };
                let tr = plan.simulate(&topo, &hw, &cfg).expect("DP fits");
                cost.update_from_trace(&rep.graph, &tr);
                fifo_time += tr.makespan;
            }
            let fifo_time = fifo_time / MEASURE_ITERS as f64;

            // enforce the order the strategy calculator derives for the SAME
            // placement
            let sched = schedule_for_placement(&rep.graph, &topo, &cost, &hw, &plan.placement);
            plan.order = Some(sched.order);
            let mut ord_time = 0.0;
            for it in 0..MEASURE_ITERS {
                let cfg = SimConfig {
                    jitter_pct: 0.02,
                    iteration: 100 + it as u64,
                    ..SimConfig::default()
                };
                ord_time += plan
                    .simulate(&topo, &hw, &cfg)
                    .expect("same memory")
                    .makespan;
            }
            let ord_time = ord_time / MEASURE_ITERS as f64;

            println!(
                "| {} | {fifo_time:.4} | {ord_time:.4} | {:.1}% |",
                model.name(),
                (1.0 - ord_time / fifo_time) * 100.0
            );
        }
    }
}

pub mod fig3 {
    //! Fig. 3: normalized training speed (relative to data parallelism) of
    //! REINFORCE, GDP, Post, FlexFlow and FastT on Inception-v3, ResNet-200,
    //! GNMT and RNNLM over 2/4/8 GPUs.
    //!
    //! Unlike the paper — which copies the comparators' numbers out of their
    //! papers — every method here runs in the same simulated cluster (see
    //! DESIGN.md): REINFORCE/GDP/Post search placements of the **raw** model
    //! graph (model parallelism only, their published solution space), FlexFlow
    //! (MCMC) searches the **replicated** graph with a large evaluation budget,
    //! and FastT runs its full workflow. The expected shape: FastT beats the
    //! model-parallel-only searchers everywhere; FlexFlow comes closest.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{dp_ps_for, per_replica_batch, print_header, run_dp, run_fastt};
    use fastt::search::{CemPlanner, GdpPlanner, McmcPlanner, ReinforcePlanner};
    use fastt::{data_parallel_plan, data_parallel_plan_on, Portfolio, PortfolioInputs};
    use fastt_cluster::Topology;
    use fastt_graph::{replicate_grouped, ReplicationMode};
    use fastt_models::Model;
    use fastt_sim::HardwarePerf;

    use fastt::bootstrap_cost_models as bootstrap_costs;

    /// Runs the experiment and prints its rows.
    pub fn fig3() {
        let models = [
            Model::InceptionV3,
            Model::ResNet200,
            Model::Gnmt4,
            Model::Rnnlm,
        ];
        let hw = HardwarePerf::new();

        print_header(
            "Fig. 3: speed normalized to DP (higher is better)",
            &[
                "Model",
                "GPUs",
                "REINFORCE",
                "GDP",
                "Post",
                "FlexFlow",
                "FastT",
            ],
        );

        for model in models {
            let global = model.paper_batch();
            for gpus in [2u16, 4, 8] {
                let topo = Topology::single_server(gpus);
                let prb = per_replica_batch(model, global, gpus as u32);
                let dp = run_dp(model, &topo, prb).expect("DP fits");
                let norm = |iter: f64| dp.iter_time / iter;

                // model-parallel-only searchers on the raw graph at the global
                // batch (they cannot replicate, so they process the full batch)
                let raw = model.training_graph(global.min(prb * gpus as u64));
                let cost = bootstrap_costs(&raw, &topo, &hw);

                // one portfolio evaluation runs the three raw-graph
                // searchers concurrently; their `est_finish` is the
                // search's own best simulated time
                let raw_portfolio = Portfolio::new()
                    .with(Box::new(ReinforcePlanner {
                        rounds: 12,
                        batch: 8,
                        seed: 11,
                    }))
                    .with(Box::new(GdpPlanner))
                    .with(Box::new(CemPlanner {
                        rounds: 10,
                        pop: 10,
                        elite_frac: 0.25,
                        seed: 13,
                    }));
                let raw_outcome = raw_portfolio.evaluate(
                    &PortfolioInputs {
                        graph: &raw,
                        raw: None,
                        current: None,
                        topo: &topo,
                        hw: &hw,
                        cost: &cost,
                        collector: None,
                        enable_order: true,
                        dp_ps: None,
                        cache_salt: 0,
                        probe: None,
                    },
                    None,
                );
                let (reinforce, gdp, post) = (
                    raw_outcome.candidates[0].est_finish(),
                    raw_outcome.candidates[1].est_finish(),
                    raw_outcome.candidates[2].est_finish(),
                );

                // FlexFlow-like MCMC on the replicated graph, seeded from DP
                let groups: Vec<u16> = topo.gpu_ids().map(|d| topo.server_of(d)).collect();
                let rep = replicate_grouped(
                    &model.training_graph(prb),
                    &groups,
                    ReplicationMode::ParameterServer,
                )
                .expect("replicates");
                let dp_plan = match dp_ps_for(model) {
                    Some(d) => data_parallel_plan_on(&rep, &topo, d),
                    None => data_parallel_plan(&rep, &topo),
                };
                let flexflow = Portfolio::new()
                    .with(Box::new(McmcPlanner {
                        evals: 400,
                        temp: 0.03,
                        seed: 17,
                        start_from_current: true,
                    }))
                    .evaluate(
                        &PortfolioInputs {
                            graph: &rep.graph,
                            raw: None,
                            current: Some(&dp_plan),
                            topo: &topo,
                            hw: &hw,
                            cost: &cost,
                            collector: None,
                            enable_order: true,
                            dp_ps: None,
                            cache_salt: 0,
                            probe: None,
                        },
                        None,
                    )
                    .candidates[0]
                    .est_finish();

                let fastt = run_fastt(model, &topo, prb, global, None).expect("fastt runs");

                println!(
                    "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
                    model.name(),
                    gpus,
                    norm(reinforce),
                    norm(gdp),
                    norm(post),
                    norm(flexflow),
                    norm(fastt.measurement.iter_time),
                );
            }
        }
    }
}

pub mod fig4 {
    //! Fig. 4: number of operations placed on each GPU by FastT, for AlexNet,
    //! VGG-19 and LeNet on 2 and 4 GPUs. The paper's observation: FastT does not
    //! allocate operations evenly — replicas of large-parameter ops concentrate
    //! on one GPU to avoid gradient aggregation, while compute-heavy ops spread.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{per_replica_batch, print_header, run_fastt};
    use fastt_cluster::Topology;
    use fastt_models::Model;

    /// Runs the experiment and prints its rows.
    pub fn fig4() {
        let models = [Model::AlexNet, Model::Vgg19, Model::LeNet];

        for gpus in [2u16, 4] {
            print_header(
                &format!("Fig. 4: ops per GPU under FastT ({gpus} GPUs)"),
                &["Model", "Ops per GPU (gpu0..)", "Total"],
            );
            for model in models {
                let topo = Topology::single_server(gpus);
                let global = model.paper_batch();
                let prb = per_replica_batch(model, global, gpus as u32);
                match run_fastt(model, &topo, prb, global, None) {
                    Ok(run) => {
                        let hist = run.session.current_plan().placement.op_histogram(&topo);
                        let gpu_hist: Vec<usize> =
                            topo.gpu_ids().map(|d| hist[d.index()]).collect();
                        let host_ops: usize = topo
                            .device_ids()
                            .filter(|d| topo.is_host(*d))
                            .map(|d| hist[d.index()])
                            .sum();
                        let total: usize = hist.iter().sum();
                        print!("| {} | {:?}", model.name(), gpu_hist);
                        if host_ops > 0 {
                            print!(" (+{host_ops} on host)");
                        }
                        println!(" | {total} |");
                    }
                    Err(e) => println!("| {} | ERR: {e} | - |", model.name()),
                }
            }
        }
    }
}

pub mod fig5 {
    //! Fig. 5: average computation time, memcpy (tensor transfer) time, and
    //! per-iteration time for data parallelism vs FastT on 2 GPUs. The paper's
    //! observation: FastT may *increase* computation time (more ops packed on
    //! fewer devices) while reducing memcpy time and the per-iteration time.
    #[allow(unused_imports)]
    use crate::*;
    use crate::{dp_ps_for, per_replica_batch, print_header, run_fastt};
    use fastt::{data_parallel_plan, data_parallel_plan_on};
    use fastt_cluster::Topology;
    use fastt_graph::{replicate_grouped, ReplicationMode};
    use fastt_models::Model;
    use fastt_sim::{HardwarePerf, SimConfig};

    /// Runs the experiment and prints its rows.
    pub fn fig5() {
        let models = [Model::Vgg19, Model::ResNet200, Model::AlexNet, Model::LeNet];
        let topo = Topology::single_server(2);
        let hw = HardwarePerf::new();

        print_header(
            "Fig. 5: computation / memcpy / per-iteration time (ms), 2 GPUs",
            &[
                "Model",
                "DP comp",
                "DP memcpy",
                "DP iter",
                "FastT comp",
                "FastT memcpy",
                "FastT iter",
            ],
        );

        for model in models {
            let global = model.paper_batch();
            let prb = per_replica_batch(model, global, 2);
            let graph = model.training_graph(prb);
            let rep = replicate_grouped(&graph, &[0, 0], ReplicationMode::ParameterServer)
                .expect("replicates");
            let dp = match dp_ps_for(model) {
                Some(d) => data_parallel_plan_on(&rep, &topo, d),
                None => data_parallel_plan(&rep, &topo),
            };
            let dp_tr = dp
                .simulate(&topo, &hw, &SimConfig::default())
                .expect("DP fits");

            let ft = run_fastt(model, &topo, prb, global, None).expect("fastt runs");
            let ft_tr = ft
                .session
                .current_plan()
                .simulate(&topo, &hw, &SimConfig::default())
                .expect("plan fits");

            println!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
                model.name(),
                dp_tr.total_compute_time() * 1e3,
                dp_tr.total_memcpy_time() * 1e3,
                dp_tr.makespan * 1e3,
                ft_tr.total_compute_time() * 1e3,
                ft_tr.total_memcpy_time() * 1e3,
                ft_tr.makespan * 1e3,
            );
        }
    }
}
