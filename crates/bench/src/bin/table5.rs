//! Table 5: split decisions for representative operations in VGG-19
//! (4 GPUs, the paper's best-speedup setting): per-op execution time,
//! weight size, and whether FastT decided to split it.
//!
//! The paper's qualitative finding: ops that get split have long execution
//! time and small weights; large-weight ops (fc6) are not split to avoid
//! broadcasting parameters.

fn main() {
    fastt_bench::experiments::table5::table5();
}
