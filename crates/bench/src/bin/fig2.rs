//! Fig. 2: performance gain of order enforcement. Each model runs on 2 GPUs
//! under the default data-parallel placement; we compare TensorFlow's
//! default FIFO execution order against FastT's enforced order computed for
//! the *same* placement (isolating the ordering effect, as the paper does).

fn main() {
    fastt_bench::experiments::fig2::fig2();
}
