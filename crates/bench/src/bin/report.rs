//! Post-mortem telemetry report for one FastT pre-training session.
//!
//! Runs a session with a JSONL telemetry sink attached, then reads the
//! event stream back and prints what happened: the activation/rollback
//! timeline, where time waits in queues, and how the cost models' accuracy
//! evolved.
//!
//! ```bash
//! cargo run --release -p fastt-bench --bin report -- alexnet 4 /tmp/fastt-report
//! # multi-server: SERVERSxGPUS (2 servers of 4 GPUs over RDMA)
//! cargo run --release -p fastt-bench --bin report -- alexnet 2x4 /tmp/fastt-report
//! # with a scripted chaos scenario (fault injection + recovery timeline):
//! cargo run --release -p fastt-bench --bin report -- alexnet 4 /tmp/fastt-report chaos:21
//! # network chaos (link flaps, partitions, stragglers, NIC degradation):
//! cargo run --release -p fastt-bench --bin report -- alexnet 2x2 /tmp/fastt-report netchaos:21
//! # elastic churn (spot revocations, arrivals, hot-adds + promotion ladder):
//! cargo run --release -p fastt-bench --bin report -- lenet 2x2 /tmp/fastt-report elastic:21
//! # multi-tenant fleet (seeded job arrivals, preemption, shared plan cache):
//! cargo run --release -p fastt-bench --bin report -- lenet 2x4 /tmp/fastt-report fleet:21
//! ```

use fastt::search::{CemPlanner, GdpPlanner, McmcPlanner, RandomPlanner, ReinforcePlanner};
use fastt::{Portfolio, PortfolioInputs, SessionConfig, TrainingSession};
use fastt_bench::{dp_ps_for, per_replica_batch};
use fastt_cluster::Topology;
use fastt_sim::{FaultSchedule, HardwarePerf, SimConfig};
use fastt_telemetry::{parse_jsonl, Collector, Event, JsonlSink};
use std::path::PathBuf;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let model_arg = args.next().unwrap_or_else(|| "alexnet".into());
    // `N` → one server with N GPUs; `SxG` → S servers of G GPUs over RDMA.
    let topo_arg = args.next().unwrap_or_else(|| "2".into());
    let (topo, topo_label) = parse_topology(&topo_arg)?;
    let gpus = topo.gpu_count() as u16;
    let outdir = PathBuf::from(args.next().unwrap_or_else(|| "report-out".into()));
    std::fs::create_dir_all(&outdir)?;

    // Optional 4th arg `chaos[:seed]`, `netchaos[:seed]`, or
    // `elastic[:seed]`: inject a seeded fault scenario and run the
    // normal-training stage so the recovery machinery has something to do.
    // `chaos` scripts device faults (straggler, degraded link, transient
    // ops, memory pressure, one mid-run crash); `netchaos` scripts network
    // faults (link flaps, a host partition, a collective straggler, NIC
    // degradation); `elastic` scripts cluster churn (spot revocations with
    // notice windows, device arrivals, a hot-added server) so the capacity
    // oscillates and the promotion ladder engages.
    let (chaos_seed, chaos_mode): (Option<u64>, &str) = match args.next() {
        Some(s) if s == "chaos" => (Some(21), "chaos"),
        Some(s) if s == "netchaos" => (Some(21), "netchaos"),
        Some(s) if s == "elastic" => (Some(21), "elastic"),
        Some(s) if s == "fleet" => (Some(21), "fleet"),
        Some(s) => {
            let (prefix, mode) = if let Some(n) = s.strip_prefix("netchaos:") {
                (n, "netchaos")
            } else if let Some(n) = s.strip_prefix("chaos:") {
                (n, "chaos")
            } else if let Some(n) = s.strip_prefix("elastic:") {
                (n, "elastic")
            } else if let Some(n) = s.strip_prefix("fleet:") {
                (n, "fleet")
            } else {
                return Err(format!(
                    "unknown argument `{s}` (expected `chaos[:seed]`, `netchaos[:seed]`, \
                     `elastic[:seed]`, or `fleet[:seed]`)"
                )
                .into());
            };
            let seed = prefix
                .parse()
                .map_err(|_| format!("chaos seed must be an integer, got `{prefix}`"))?;
            (Some(seed), mode)
        }
        None => (None, ""),
    };

    let needle = model_arg.to_lowercase();
    let model = fastt_models::Model::all()
        .into_iter()
        .find(|m| m.name().to_lowercase().contains(&needle))
        .ok_or_else(|| format!("unknown model `{model_arg}`"))?;

    if chaos_mode == "fleet" {
        return fleet_report(model, topo, &topo_label, &outdir, chaos_seed.unwrap_or(21));
    }

    let batch = per_replica_batch(model, model.paper_batch(), gpus as u32);
    let graph = model.training_graph(batch);
    let servers = topo
        .device_ids()
        .map(|d| topo.server_of(d))
        .max()
        .map(|s| s + 1)
        .unwrap_or(1);
    let config = SessionConfig {
        dp_ps: dp_ps_for(model),
        faults: chaos_seed.map(|s| {
            Arc::new(match chaos_mode {
                "netchaos" => FaultSchedule::seeded_network(s, gpus, servers, 40),
                "elastic" => FaultSchedule::seeded_churn(s, gpus, servers, 60),
                _ => FaultSchedule::seeded(s, gpus, 60, gpus >= 2),
            })
        }),
        ..SessionConfig::default()
    };

    let jsonl_path = outdir.join(format!("{needle}-{topo_label}.events.jsonl"));
    let collector = Arc::new(Collector::new().with_sink(JsonlSink::create(&jsonl_path)?));

    let mut session = TrainingSession::new(&graph, topo.clone(), HardwarePerf::new(), config)?;
    session.attach_collector(collector.clone());
    let report = session.pre_train()?;
    if chaos_seed.is_some() {
        // run into the fault windows so the recovery timeline has content;
        // the churn schedule spans more iterations than the chaos ones
        session.train_normal(if chaos_mode == "elastic" { 60 } else { 40 }, 5)?;
    }
    collector.flush();

    // ---- Post-mortem: everything below is reconstructed from the JSONL
    // stream, exactly as an offline analysis of a saved run would do.
    let events = parse_jsonl(&std::fs::read_to_string(&jsonl_path)?);
    if events.is_empty() {
        return Err("event stream is empty — telemetry produced nothing".into());
    }

    println!("=== FastT session post-mortem: {model} on {topo_label} ({gpus} GPUs) ===");
    println!(
        "{} events in {} | rounds {} | activations {} | rollbacks {} | final iter {:.3} ms",
        events.len(),
        jsonl_path.display(),
        report.rounds,
        report.activations,
        report.rollbacks,
        report.final_iter_time * 1e3,
    );

    println!("\n--- Activation / rollback timeline ---");
    let mut any = false;
    for e in &events {
        let line = match e.kind.as_str() {
            "session.round" => format!(
                "round {} starts (measured {:.3} ms, drift {:.3})",
                e.field("round"),
                ms(e, "measured"),
                e.num("drift").unwrap_or(0.0),
            ),
            "session.candidate" => format!(
                "  candidate [{}] est {:.3} ms vs measured {:.3} ms",
                e.str_field("kind").unwrap_or("?"),
                ms(e, "est_finish"),
                ms(e, "measured"),
            ),
            "session.activation" => format!(
                "  ACTIVATED [{}]: {:.3} -> {:.3} ms (est was {:.3} ms, off by {:+.1}%)",
                e.str_field("kind").unwrap_or("?"),
                ms(e, "measured_before"),
                ms(e, "measured_after"),
                ms(e, "est"),
                e.num("est_error").unwrap_or(0.0) * 100.0,
            ),
            "session.rollback" => format!(
                "  ROLLED BACK [{}]: est {:.3} ms but measured {:.3} ms (was {:.3} ms)",
                e.str_field("kind").unwrap_or("?"),
                ms(e, "est"),
                ms(e, "measured_after"),
                ms(e, "measured_before"),
            ),
            _ => continue,
        };
        any = true;
        println!("[{:>9} us] {line}", e.t_us);
    }
    if !any {
        println!("(no strategy changes recorded)");
    }

    println!("\n--- Planner arbitration ---");
    let mut any_planner = false;
    for e in &events {
        let line = match e.kind.as_str() {
            "planner.cache_hit" => format!(
                "  cache HIT  [{}] (graph {:016x}, shape {:016x}, cost gen {})",
                e.str_field("planner").unwrap_or("?"),
                e.num("graph_hash").unwrap_or(0.0) as u64,
                e.num("capacity_mask").unwrap_or(0.0) as u64,
                e.field("cost_generation"),
            ),
            "planner.candidate" => {
                let cached = e.field("cached").as_bool().unwrap_or(false);
                let selected = e.field("selected").as_bool().unwrap_or(false);
                let sim = e.num("simulated").unwrap_or(f64::NAN);
                format!(
                    "  candidate [{}/{}] est {:.3} ms{}{}{}{}",
                    e.str_field("planner").unwrap_or("?"),
                    e.str_field("kind").unwrap_or("?"),
                    ms(e, "est_finish"),
                    if sim.is_nan() {
                        String::new()
                    } else {
                        format!(", probed {:.3} ms", sim * 1e3)
                    },
                    match e.num("evals_used") {
                        Some(v) if v > 0.0 => format!(", {v} evals"),
                        _ => String::new(),
                    },
                    if cached { " (cached)" } else { "" },
                    if selected { "  << selected" } else { "" },
                )
            }
            "planner.selected" => format!(
                "  WINNER [{}] by {} at {:.3} ms ({} candidates)",
                e.str_field("planner").unwrap_or("?"),
                e.str_field("by").unwrap_or("?"),
                ms(e, "score"),
                e.field("candidates"),
            ),
            _ => continue,
        };
        any_planner = true;
        println!("[{:>9} us] {line}", e.t_us);
    }
    if !any_planner {
        println!("(no portfolio evaluations recorded)");
    }
    println!(
        "plan cache: {} hits / {} misses, {} plans held",
        session.plan_cache().hits(),
        session.plan_cache().misses(),
        session.plan_cache().len(),
    );
    println!(
        "region sub-plans: {} hits / {} misses",
        session.plan_cache().region_hits(),
        session.plan_cache().region_misses(),
    );

    println!("\n--- Hierarchical decomposition ---");
    let hier: Vec<&Event> = events.iter().filter(|e| e.kind == "hier.plan").collect();
    if hier.is_empty() {
        println!("(the hierarchical planner never completed a plan this run)");
    }
    for e in &hier {
        let ops = e.num("ops").unwrap_or(0.0);
        let regions = e.num("regions").unwrap_or(0.0);
        println!(
            "[{:>9} us] {} ops -> {} regions ({:.1}x collapse, {} rounds) | \
             decompose {:.3} ms, across {:.3} ms, within {:.3} ms | \
             {} region-cache hits | est {:.3} ms",
            e.t_us,
            ops,
            regions,
            if regions > 0.0 { ops / regions } else { 0.0 },
            e.field("rounds"),
            ms(e, "decompose_secs"),
            ms(e, "across_secs"),
            ms(e, "within_secs"),
            e.field("region_cache_hits"),
            ms(e, "est_finish"),
        );
    }

    println!("\n--- Fault / recovery timeline ---");
    let mut any_fault = false;
    // the engine re-emits `fault.injected` on every iteration a fault is
    // active; the timeline only needs the first sighting of each fault
    let mut seen_faults = std::collections::HashSet::new();
    // a flapping transfer retries up to the budget: aggregate all of its
    // attempts so the timeline shows ONE line per retried transfer with the
    // retry count, not one line per attempt
    let mut retry_totals: std::collections::HashMap<String, (u64, f64)> =
        std::collections::HashMap::new();
    for e in &events {
        if e.kind == "comm.retry" {
            let key = format!(
                "{}/{}/{}/{}",
                e.field("op"),
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            );
            let ent = retry_totals.entry(key).or_default();
            ent.0 += 1;
            ent.1 += e.num("backoff").unwrap_or(0.0);
        }
    }
    let mut seen_retries = std::collections::HashSet::new();
    for e in &events {
        let line = match e.kind.as_str() {
            "fault.injected" => {
                let key = format!(
                    "{}/{}/{}/{}/{}",
                    e.str_field("kind").unwrap_or("?"),
                    e.str_field("scope").unwrap_or("device"),
                    e.field("device"),
                    e.field("from_iter"),
                    e.field("until_iter"),
                );
                if !seen_faults.insert(key) {
                    continue;
                }
                let until = match e.num("until_iter") {
                    Some(v) if v > 1e18 => "forever".to_string(),
                    _ => e.field("until_iter").to_string(),
                };
                format!(
                    "fault [{}] on {} {} (iterations {}..{until})",
                    e.str_field("kind").unwrap_or("?"),
                    e.str_field("scope").unwrap_or("device"),
                    e.field("device"),
                    e.field("from_iter"),
                )
            }
            "comm.retry" => {
                let key = format!(
                    "{}/{}/{}/{}",
                    e.field("op"),
                    e.field("src"),
                    e.field("dst"),
                    e.field("iteration"),
                );
                if !seen_retries.insert(key.clone()) {
                    continue;
                }
                let (count, backoff) = retry_totals.get(&key).copied().unwrap_or((1, 0.0));
                format!(
                    "  link retry x{count} on {}->{} (op {}, iteration {}, total backoff {:.1} ms)",
                    e.field("src"),
                    e.field("dst"),
                    e.field("op"),
                    e.field("iteration"),
                    backoff * 1e3,
                )
            }
            "health.degraded" => format!(
                "  DEGRADED device {} running {:.2}x slower than predicted (iteration {})",
                e.field("device"),
                e.num("slowdown").unwrap_or(f64::NAN),
                e.field("iteration"),
            ),
            "health.restored" => format!(
                "  restored device {} (iteration {})",
                e.field("device"),
                e.field("iteration"),
            ),
            "session.retry" => format!(
                "  retry attempt {} on device {} (iteration {}, backoff {:.0} ms)",
                e.field("attempt"),
                e.field("device"),
                e.field("iteration"),
                ms(e, "backoff_secs"),
            ),
            "session.replan" => format!(
                "  REPLAN [{}] over {} survivors (iteration {}, failed {})",
                e.str_field("reason").unwrap_or("?"),
                e.field("survivors"),
                e.field("iteration"),
                e.field("failed"),
            ),
            "session.fallback" => format!(
                "  FELL BACK to [{}] at {:.3} ms (iteration {})",
                e.str_field("kind").unwrap_or("?"),
                ms(e, "measured"),
                e.field("iteration"),
            ),
            "session.recovered" => format!(
                "  RECOVERED with [{}] on {} survivors at {:.3} ms (iteration {})",
                e.str_field("kind").unwrap_or("?"),
                e.field("survivors"),
                ms(e, "measured"),
                e.field("iteration"),
            ),
            _ => continue,
        };
        any_fault = true;
        println!("[{:>9} us] {line}", e.t_us);
    }
    if !any_fault {
        println!("(no faults injected — pass `chaos[:seed]` as the 4th argument)");
    } else {
        let topo_now = session.topology();
        println!(
            "surviving GPUs {}/{} | blacklisted {:?} | {} recovery decisions",
            topo_now.gpu_count(),
            gpus,
            topo_now
                .failed_devices()
                .iter()
                .map(|d| d.0)
                .collect::<Vec<_>>(),
            session.recovery_log().len(),
        );
    }

    println!("\n--- Link-health / partition timeline ---");
    let mut any_link = false;
    for e in &events {
        let line = match e.kind.as_str() {
            "fault.link" => format!(
                "LINK FAULT [{}] on hop {}->{} (iteration {})",
                e.str_field("kind").unwrap_or("?"),
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            ),
            "health.link_degraded" => format!(
                "  DEGRADED link {}->{} running {:.2}x slower than predicted (iteration {})",
                e.field("src"),
                e.field("dst"),
                e.num("slowdown").unwrap_or(f64::NAN),
                e.field("iteration"),
            ),
            "health.link_restored" => format!(
                "  restored link {}->{} (iteration {})",
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            ),
            "health.link_failed" => format!(
                "  FAILED link {}->{} blacklisted (iteration {})",
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            ),
            "session.partition" => format!(
                "  PARTITION server {} unreachable; blacklisting its devices (iteration {})",
                e.field("server"),
                e.field("iteration"),
            ),
            "session.stranded" => format!(
                "  stranded GPUs dropped: {} (iteration {})",
                e.field("dropped"),
                e.field("iteration"),
            ),
            "session.unreachable" => format!(
                "  UNREACHABLE {}->{}: no live route (iteration {})",
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            ),
            "comm.collective_abort" => format!(
                "  COLLECTIVE ABORT [{}] with {} participants: {} (iteration {})",
                e.str_field("kind").unwrap_or("?"),
                e.field("participants"),
                e.str_field("error").unwrap_or("?"),
                e.field("iteration"),
            ),
            "session.degraded_mode" => format!(
                "  DEGRADED MODE [{}] over {} survivors (reason {}, iteration {})",
                e.str_field("mode").unwrap_or("?"),
                e.field("survivors"),
                e.str_field("reason").unwrap_or("?"),
                e.field("iteration"),
            ),
            _ => continue,
        };
        any_link = true;
        println!("[{:>9} us] {line}", e.t_us);
    }
    if !any_link {
        println!("(no link-health events — pass `netchaos[:seed]` as the 4th argument)");
    } else {
        let hm = session.health();
        println!(
            "link-health summary: {} failed, {} degraded | retried transfers: {}",
            hm.failed_links().len(),
            hm.degraded_links().len(),
            retry_totals.len(),
        );
    }
    // Every lowered plan passed the comm-plan cycle validator (a Deadlock
    // error would have aborted the session before this line prints).
    println!("deadlocks: 0");

    elasticity_section(&events);

    println!("\n--- Top 10 queue-wait ops (final plan, one iteration) ---");
    let plan = session.current_plan();
    let trace = plan.simulate(&topo, &HardwarePerf::new(), &SimConfig::default())?;
    let names: Vec<String> = plan.graph.iter_ops().map(|(_, o)| o.name.clone()).collect();
    let top = trace.top_queue_waits(10);
    if top.is_empty() {
        println!("(no op ever waited in a ready queue)");
    }
    for (op, wait) in top {
        println!(
            "{:>10.1} us  {}",
            wait * 1e6,
            names.get(op.index()).map(String::as_str).unwrap_or("?")
        );
    }
    let per_dev = trace.device_queue_wait();
    println!(
        "per-device queue-wait totals (ms): {:?} | channel contention {:.3} ms",
        per_dev.iter().map(|w| w * 1e3).collect::<Vec<_>>(),
        trace.contention * 1e3,
    );

    communication_section(&graph, &topo);

    // Fig.-3 search baselines, re-planned from the session's *final* graph
    // and trained cost models, arbitrated by one probed iteration each —
    // small budgets, this is a report not a benchmark.
    println!("\n--- Search-baseline comparison (final graph, trained cost models) ---");
    let search_portfolio = Portfolio::new()
        .with(Box::new(GdpPlanner))
        .with(Box::new(McmcPlanner {
            evals: 200,
            ..McmcPlanner::default()
        }))
        .with(Box::new(CemPlanner {
            rounds: 6,
            pop: 8,
            ..CemPlanner::default()
        }))
        .with(Box::new(ReinforcePlanner {
            rounds: 6,
            batch: 6,
            ..ReinforcePlanner::default()
        }))
        .with(Box::new(RandomPlanner::default()));
    let search_outcome = search_portfolio.evaluate(
        &PortfolioInputs {
            graph: &plan.graph,
            raw: None,
            current: Some(plan),
            topo: &topo,
            hw: &HardwarePerf::new(),
            cost: &session.cost,
            collector: None,
            enable_order: true,
            dp_ps: None,
            cache_salt: 0,
            probe: Some(SimConfig::default()),
        },
        None,
    );
    println!(
        "| {:<12} | {:<13} | {:>9} | {:>6} |",
        "Method", "Source", "Sim (ms)", "Evals"
    );
    println!(
        "| {:<12} | {:<13} | {:>9.3} | {:>6} |",
        "fastt",
        "session plan",
        trace.makespan * 1e3,
        "-"
    );
    for c in &search_outcome.candidates {
        match c.simulated {
            Some(s) => println!(
                "| {:<12} | {:<13} | {:>9.3} | {:>6} |",
                c.planner,
                "search",
                s * 1e3,
                c.evals_used,
            ),
            None => println!(
                "| {:<12} | {:<13} | {:>9} | {:>6} |",
                c.planner, "search", "ERR", c.evals_used,
            ),
        }
    }

    println!("\n--- Cost-model error trend ---");
    let errs: Vec<&Event> = events.iter().filter(|e| e.kind == "cost.error").collect();
    if errs.is_empty() {
        println!("(models were never scored — no re-profile happened)");
    }
    for e in &errs {
        println!(
            "[{:>9} us] MAPE {:.2}% (worst {:.1}%, {} comp + {} comm samples)",
            e.t_us,
            e.num("mape").unwrap_or(0.0) * 100.0,
            e.num("worst").unwrap_or(0.0) * 100.0,
            e.field("comp_samples"),
            e.field("comm_samples"),
        );
    }
    if let (Some(first), Some(last)) = (errs.first(), errs.last()) {
        println!(
            "trend: {:.2}% -> {:.2}% over {} scorings",
            first.num("mape").unwrap_or(0.0) * 100.0,
            last.num("mape").unwrap_or(0.0) * 100.0,
            errs.len()
        );
    }

    // ---- Perf: where the strategy-calculation time went (the profile
    // tree accumulated by the instrumented planner/simulator hot paths)
    // and whether the declared latency SLOs held.
    println!("\n--- Perf: profile tree ---");
    if collector.profiler().is_empty() {
        println!("(no profiled phases — planners never ran with this collector)");
    } else {
        print!("{}", collector.profiler().render());
        let hot = collector.profiler().hotspots(5);
        println!("top self-time hotspots:");
        for h in &hot {
            println!(
                "  {:<44} {:>10} self  x{}",
                h.path,
                fastt_telemetry::fmt_secs(h.self_secs),
                h.calls
            );
        }
    }
    println!("\n--- Perf: SLO verdicts ---");
    for v in fastt_telemetry::evaluate_slos(&fastt::default_slos(), collector.metrics()) {
        println!("{}", v.render());
    }

    println!("\n--- Metrics registry ---");
    println!("{}", collector.metrics().to_json());

    // A Perfetto-ready trace of the final plan, with named tracks and
    // per-device memory counters.
    let full_cfg = SimConfig {
        record_mem_timeline: true,
        ..SimConfig::default()
    };
    let full = plan.simulate(&topo, &HardwarePerf::new(), &full_cfg)?;
    let trace_path = outdir.join(format!("{needle}-{topo_label}.trace.json"));
    std::fs::write(&trace_path, full.to_chrome_trace_full(&names, &topo))?;
    println!("\nperfetto trace: {}", trace_path.display());
    println!("event stream  : {}", jsonl_path.display());
    Ok(())
}

/// Millisecond rendering of a seconds field (NaN when absent).
fn ms(e: &Event, field: &str) -> f64 {
    e.num(field).map(|v| v * 1e3).unwrap_or(f64::NAN)
}

/// `fleet[:seed]` mode: a multi-tenant run of the seeded arrival workload
/// through [`fastt::fleet::ClusterManager`] on one shared topology, reported as a
/// cluster-level post-mortem — admission/preemption timeline, utilization,
/// per-job queue-wait and iteration-time timelines, shared plan-cache
/// stats, and the fleet + planner SLO verdicts.
fn fleet_report(
    model: fastt_models::Model,
    topo: Topology,
    topo_label: &str,
    outdir: &std::path::Path,
    seed: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    use fastt::fleet::{fleet_slos, seeded_workload, ClusterManager, FleetEvent};

    let gpus = topo.gpu_count() as u32;
    let total = topo.gpu_count();
    let name = model.name().to_lowercase();
    // Two templates of the same model at different per-replica batches:
    // the workload's twin jobs share the first, so the fleet exercises the
    // shared-cache admission path; the second adds shape diversity.
    let big = per_replica_batch(model, model.paper_batch(), gpus);
    let small = (big / 2).max(model.min_batch());
    let templates = vec![
        (format!("{name}{big}"), model.training_graph(big)),
        (format!("{name}{small}"), model.training_graph(small)),
    ];

    let jsonl_path = outdir.join(format!("fleet-{topo_label}-seed{seed}.events.jsonl"));
    let collector = Arc::new(Collector::new().with_sink(JsonlSink::create(&jsonl_path)?));
    let mut fleet =
        ClusterManager::new(topo, HardwarePerf::new(), seed).with_collector(collector.clone());
    let workload = seeded_workload(seed, &templates, total);
    let n_jobs = workload.len();
    for spec in workload {
        fleet.submit(spec);
    }
    let report = fleet.run()?;
    collector.flush();

    println!("=== FastT fleet post-mortem: {n_jobs} jobs on {topo_label} (seed {seed}) ===");
    println!(
        "{} scheduling events over {} ticks | max concurrent jobs: {} | preemptions: {}",
        report.events.len(),
        report.ticks,
        report.max_concurrent,
        report.preemptions,
    );

    // The deterministic decision log: byte-identical across same-seed
    // runs, so CI can diff it. Saved next to the JSONL stream.
    println!("\n--- Fleet decision log ---");
    print!("{}", report.event_log());
    let log_path = outdir.join(format!("fleet-{topo_label}-seed{seed}.log"));
    std::fs::write(&log_path, report.event_log())?;

    println!("\n--- Cluster utilization timeline ---");
    if report.utilization.is_empty() {
        println!("(empty — no ticks ran)");
    }
    for (t, busy, total) in &report.utilization {
        let width = 24usize;
        let filled = (busy * width) / total.max(&1);
        let bar: String = (0..width)
            .map(|i| if i < filled { '#' } else { '-' })
            .collect();
        println!("t={t:03} [{bar}] {busy}/{total}");
    }
    println!(
        "utilization samples: {} | mean utilization: {:.1}%",
        report.utilization.len(),
        report.mean_utilization() * 100.0
    );

    println!("\n--- Per-job outcomes ---");
    println!(
        "| {:<14} | {:>4} | {:>5} | {:>12} | {:>6} | {:>8} | {:>8} |",
        "Job", "Wait", "Iters", "Mean iter", "Cached", "Preempts", "Deadline"
    );
    for j in &report.jobs {
        println!(
            "| {:<14} | {:>4} | {:>5} | {:>9.3} ms | {:>6} | {:>8} | {:>8} |",
            j.name,
            j.queue_wait,
            j.iters_run,
            j.mean_iter_time * 1e3,
            j.cached_start,
            j.preemptions,
            if j.deadline_met { "met" } else { "MISSED" },
        );
    }

    println!("\n--- Per-job iteration-time timelines (ms) ---");
    for j in &report.jobs {
        let series: Vec<String> = j
            .iter_times
            .iter()
            .map(|t| format!("{:.3}", t * 1e3))
            .collect();
        println!("{:<14} {}", j.name, series.join(" "));
    }

    println!("\n--- Shared plan cache ---");
    println!(
        "hits: {} | misses: {} | resident plans: {}",
        report.cache_hits, report.cache_misses, report.cache_len
    );
    let cached_admissions = report.jobs.iter().filter(|j| j.cached_start).count();
    println!("admissions served from a sibling's plan: {cached_admissions}");

    // Deadlock-freedom: preemptions and grants never wedged the scheduler,
    // and every survivor's plan passed the comm-plan cycle validator (a
    // Deadlock error would have aborted `run()` above).
    let rejected = report
        .events
        .iter()
        .filter(|e| matches!(e, FleetEvent::Rejected { .. }))
        .count();
    println!(
        "\njobs departed: {} | rejected: {}",
        report.jobs.len(),
        rejected
    );
    println!("deadlocks: {}", report.deadlocks);

    println!("\n--- Perf: SLO verdicts ---");
    let mut slos = fastt::default_slos();
    slos.extend(fleet_slos());
    for v in fastt_telemetry::evaluate_slos(&slos, collector.metrics()) {
        println!("{}", v.render());
    }

    println!("\n--- Metrics registry ---");
    println!("{}", collector.metrics().to_json());
    println!("\nfleet log     : {}", log_path.display());
    println!("event stream  : {}", jsonl_path.display());
    Ok(())
}

/// Cluster-capacity / elasticity timeline: the scripted lifecycle events
/// (revocations, arrivals, hot-adds), the session's drain → quarantine →
/// restore → promote trajectory, and the live-GPU count against the
/// simulated per-iteration time whenever capacity moved.
fn elasticity_section(events: &[Event]) {
    println!("\n--- Cluster-capacity / elasticity timeline ---");
    // the engine re-emits a revocation's `fault.lifecycle` on every
    // iteration of its notice window: dedupe to ONE line per
    // (kind, device, at_iter) with a repeat count, not one per sighting
    let mut lifecycle_totals: std::collections::HashMap<String, u64> =
        std::collections::HashMap::new();
    for e in events {
        if e.kind == "fault.lifecycle" {
            let key = format!(
                "{}/{}/{}",
                e.str_field("kind").unwrap_or("?"),
                e.field("device"),
                e.field("at_iter"),
            );
            *lifecycle_totals.entry(key).or_default() += 1;
        }
    }
    let mut seen_lifecycle = std::collections::HashSet::new();
    let mut any_elastic = false;
    for e in events {
        let line = match e.kind.as_str() {
            "fault.lifecycle" => {
                let key = format!(
                    "{}/{}/{}",
                    e.str_field("kind").unwrap_or("?"),
                    e.field("device"),
                    e.field("at_iter"),
                );
                if !seen_lifecycle.insert(key.clone()) {
                    continue;
                }
                let n = lifecycle_totals.get(&key).copied().unwrap_or(1);
                format!(
                    "lifecycle [{}] device {} (at iter {}, deadline {}){}",
                    e.str_field("kind").unwrap_or("?"),
                    e.field("device"),
                    e.field("at_iter"),
                    e.field("deadline"),
                    if n > 1 {
                        format!(" x{n}")
                    } else {
                        String::new()
                    },
                )
            }
            "session.revocation_notice" => format!(
                "  REVOCATION NOTICE device {} dies at iteration {} (noticed at {})",
                e.field("device"),
                e.field("deadline"),
                e.field("iteration"),
            ),
            "session.drained" => format!(
                "  DRAINED device {} ahead of deadline {} (iteration {})",
                e.field("device"),
                e.field("deadline"),
                e.field("iteration"),
            ),
            "session.quarantine" => format!(
                "  QUARANTINED device {} until iteration {} (readmitted at {})",
                e.field("device"),
                e.field("until"),
                e.field("iteration"),
            ),
            "session.scaled_up" => format!(
                "  SCALED UP to {} GPUs: device {} restored (iteration {})",
                e.field("gpus"),
                e.field("device"),
                e.field("iteration"),
            ),
            "session.link_restored" => format!(
                "  link {}->{} restored (iteration {})",
                e.field("src"),
                e.field("dst"),
                e.field("iteration"),
            ),
            "session.promoted" => format!(
                "  PROMOTED [{}] to rung [{}] over {} survivors: \
                 {:.3} -> {:.3} ms/replica (iteration {})",
                e.str_field("kind").unwrap_or("?"),
                e.str_field("rung").unwrap_or("?"),
                e.field("survivors"),
                ms(e, "incumbent"),
                ms(e, "candidate"),
                e.field("iteration"),
            ),
            "session.promotion_held" => format!(
                "  promotion HELD: candidate {:.3} vs incumbent {:.3} ms/replica \
                 within margin (iteration {})",
                ms(e, "candidate"),
                ms(e, "incumbent"),
                e.field("iteration"),
            ),
            _ => continue,
        };
        any_elastic = true;
        println!("[{:>9} us] {line}", e.t_us);
    }
    if !any_elastic {
        println!("(no capacity changes — pass `elastic[:seed]` as the 4th argument)");
        return;
    }
    // Capacity timeline: the live-GPU count every time it moved, against
    // the last simulated per-iteration time observed at that point.
    let mut last_makespan: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for e in events {
        if e.kind == "sim.iteration" {
            if let (Some(i), Some(m)) = (e.num("iteration"), e.num("makespan")) {
                last_makespan.insert(i as u64, m);
            }
        }
    }
    let mut timeline: Vec<(u64, u64)> = Vec::new();
    for e in events {
        let (iter, gpus) = match e.kind.as_str() {
            "session.replan" => (e.num("iteration"), e.num("survivors")),
            "session.scaled_up" => (e.num("iteration"), e.num("gpus")),
            _ => continue,
        };
        if let (Some(i), Some(g)) = (iter, gpus) {
            if timeline
                .last()
                .map(|&(_, lg)| lg != g as u64)
                .unwrap_or(true)
            {
                timeline.push((i as u64, g as u64));
            }
        }
    }
    println!("capacity timeline (live GPUs vs simulated iteration time):");
    println!(
        "| {:>9} | {:>4} | {:>9} |",
        "iteration", "GPUs", "iter (ms)"
    );
    for (i, g) in &timeline {
        match last_makespan.range(..=*i).next_back() {
            Some((_, m)) => println!("| {:>9} | {:>4} | {:>9.3} |", i, g, m * 1e3),
            None => println!("| {:>9} | {:>4} | {:>9} |", i, g, "-"),
        }
    }
    let count = |k: &str| events.iter().filter(|e| e.kind == k).count();
    // every promoted/held decision ran a full re-plan over the enlarged
    // survivor set — that is the scale-up re-plan count CI gates on
    println!(
        "scale-up replans: {} | drains: {} | quarantines: {} | scale-ups: {} | promotions: {}",
        count("session.promoted") + count("session.promotion_held"),
        count("session.drained"),
        count("session.quarantine"),
        count("session.scaled_up"),
        count("session.promoted"),
    );
}

/// `N` → one server with N GPUs; `SxG` → S servers of G GPUs each. Returns
/// the topology and a filesystem-safe label (`4gpu`, `2x4`).
fn parse_topology(arg: &str) -> Result<(Topology, String), String> {
    if let Some((s, g)) = arg.split_once('x') {
        let servers: u16 = s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("server count must be a positive integer, got `{s}`"))?;
        let per: u16 = g
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("GPUs per server must be a positive integer, got `{g}`"))?;
        return Ok((
            Topology::multi_server(servers, per),
            format!("{servers}x{per}"),
        ));
    }
    let n: u16 = arg
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("GPU count must be `N` or `SxG`, got `{arg}`"))?;
    Ok((Topology::single_server(n), format!("{n}gpu")))
}

/// Compares the two data-parallel gradient-aggregation strategies on the
/// raw training graph: the parameter-server funnel vs ring all-reduce
/// collectives, with per-link-class traffic totals for each. Everything is
/// one plain simulated iteration — no profiling, no cost models.
fn communication_section(graph: &fastt_graph::Graph, topo: &Topology) {
    use fastt_cluster::LinkClass;
    use fastt_graph::{replicate_grouped, ReplicationMode};

    println!("\n--- Communication: PS funnel vs ring all-reduce (data parallel) ---");
    if topo.gpu_count() < 2 {
        println!("(needs at least 2 GPUs)");
        return;
    }
    let groups: Vec<u16> = topo.gpu_ids().map(|d| topo.server_of(d)).collect();
    let mut results: Vec<(&str, f64, f64, usize)> = Vec::new();
    println!(
        "| {:<22} | {:>9} | {:>12} | {:>11} | traffic by link class |",
        "Aggregation", "Sim (ms)", "Agg comm (ms)", "Collectives"
    );
    for (label, mode) in [
        ("parameter server", ReplicationMode::ParameterServer),
        ("ring all-reduce", ReplicationMode::AllReduce),
    ] {
        let rep = match replicate_grouped(graph, &groups, mode) {
            Ok(r) => r,
            Err(e) => {
                println!("| {label:<22} | replication failed: {e} |");
                continue;
            }
        };
        let plan = fastt::data_parallel_plan(&rep, topo);
        let tr = match plan.simulate(topo, &HardwarePerf::new(), &SimConfig::default()) {
            Ok(t) => t,
            Err(e) => {
                println!("| {label:<22} | simulation failed: {e} |");
                continue;
            }
        };
        // time spent moving/reducing gradients: P2P transfers into the
        // aggregation nodes for PS, collective durations for all-reduce
        let agg_comm: f64 = if mode == ReplicationMode::AllReduce {
            tr.collectives.iter().map(|c| c.duration()).sum()
        } else {
            let agg: Vec<bool> = plan
                .graph
                .iter_ops()
                .map(|(_, o)| o.kind == fastt_graph::OpKind::AggregateGradients)
                .collect();
            tr.transfers
                .iter()
                .filter(|t| agg.get(t.dst_op.index()).copied().unwrap_or(false))
                .map(|t| t.duration())
                .sum()
        };
        let mut by_class: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for t in &tr.transfers {
            let class = match topo.link_class(t.src_dev, t.dst_dev) {
                Some(LinkClass::NvLink) => "nvlink",
                Some(LinkClass::Pcie) => "pcie",
                Some(LinkClass::Eth) => "eth",
                Some(LinkClass::Rdma) => "rdma",
                None => "local",
            };
            *by_class.entry(class).or_default() += t.bytes;
        }
        let traffic = by_class
            .iter()
            .map(|(c, b)| format!("{c} {:.1} MB", *b as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "| {:<22} | {:>9.3} | {:>12.3} | {:>11} | {} |",
            label,
            tr.makespan * 1e3,
            agg_comm * 1e3,
            tr.collectives.len(),
            if traffic.is_empty() {
                "-".into()
            } else {
                traffic
            },
        );
        results.push((label, tr.makespan, agg_comm, tr.collectives.len()));
    }
    if let [ps, ar] = results.as_slice() {
        let speedup = ps.1 / ar.1;
        println!(
            "ring all-reduce is {:.2}x {} than the PS funnel on this topology",
            if speedup >= 1.0 {
                speedup
            } else {
                1.0 / speedup
            },
            if speedup >= 1.0 { "faster" } else { "slower" },
        );
    }
}
