//! Table 3: per-iteration training time (seconds) for BERT-large at growing
//! global batch sizes — single GPU, 2-GPU DP, and 2-GPU FastT. Data
//! parallelism runs out of memory beyond batch 32; FastT keeps training at
//! 40 and 48 by deploying the model across both GPUs.

fn main() {
    fastt_bench::experiments::table3::table3();
}
