//! Table 6: per-iteration training time with and without operation
//! splitting, plus the key split op kinds (the paper's ablation of Alg. 2:
//! conv-heavy CNNs benefit from Conv2D/Conv2DBackprop splits, attention
//! models from MatMul splits, LeNet/AlexNet/LSTMs not at all).

fn main() {
    let models = fastt_bench::cli_models();
    fastt_bench::experiments::table6::table6(&models);
}
