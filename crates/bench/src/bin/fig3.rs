//! Fig. 3: normalized training speed (relative to data parallelism) of
//! REINFORCE, GDP, Post, FlexFlow and FastT on Inception-v3, ResNet-200,
//! GNMT and RNNLM over 2/4/8 GPUs.
//!
//! Unlike the paper — which copies the comparators' numbers out of their
//! papers — every method here runs in the same simulated cluster (see
//! DESIGN.md): REINFORCE/GDP/Post search placements of the **raw** model
//! graph (model parallelism only, their published solution space), FlexFlow
//! (MCMC) searches the **replicated** graph with a large evaluation budget,
//! and FastT runs its full workflow. The expected shape: FastT beats the
//! model-parallel-only searchers everywhere; FlexFlow comes closest.

fn main() {
    fastt_bench::experiments::fig3::fig3();
}
