//! Fig. 4: number of operations placed on each GPU by FastT, for AlexNet,
//! VGG-19 and LeNet on 2 and 4 GPUs. The paper's observation: FastT does not
//! allocate operations evenly — replicas of large-parameter ops concentrate
//! on one GPU to avoid gradient aggregation, while compute-heavy ops spread.

fn main() {
    fastt_bench::experiments::fig4::fig4();
}
