//! Table 4: wall-clock time to compute the FastT strategies (Alg. 2) per
//! model and GPU count.
//!
//! The paper's numbers (minutes) include profiling iterations and session
//! restarts on real hardware; ours isolate the pure strategy computation
//! (DPOS/OS-DPOS invocations during the whole pre-training workflow), the
//! quantity that actually scales with model size and device count. Relative
//! ordering across models/GPU counts is the reproducible shape.

fn main() {
    let models = fastt_bench::cli_models();
    fastt_bench::experiments::table4::table4(&models);
}
