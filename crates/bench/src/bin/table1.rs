//! Table 1: training speed (samples/s) under **strong scaling** — the global
//! batch stays fixed while GPUs are added. Columns: 1 GPU, then DP vs FastT
//! for 2/4/8 GPUs and 8 GPUs over two servers; final column is the speedup
//! of the best FastT entry over the best DP entry (how the paper computes
//! its bold speedup column).

fn main() {
    let models = fastt_bench::cli_models();
    fastt_bench::experiments::table1::table1(&models);
}
