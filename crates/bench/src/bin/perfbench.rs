//! `perfbench` — the Table-4-style performance matrix (graph size ×
//! planner × topology), emitting a machine-readable `BENCH_*.json` perf
//! trajectory and optionally gating against a committed baseline.
//!
//! ```text
//! perfbench [--small | --full] [--repeats N] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--small` (default): the CI matrix — LeNet, Transformer, 8- and
//!   64-layer stacked Transformers, on one 2-GPU server.
//! * `--full`: adds a 256-layer stacked-Transformer cell (op count scaled
//!   toward the ROADMAP 100k-op regime) and a 2-server topology.
//! * `--out PATH`: where to write the JSON (default `BENCH_pr10.json`).
//! * `--check BASELINE`: diff medians against a committed baseline; warn
//!   beyond 10%, exit non-zero beyond 25% (baseline cells under the 5 ms
//!   noise floor are informational only — see `fastt_bench::perf`).

use fastt_bench::perf::{check_against_baseline, run_matrix, PerfConfig};
use fastt_telemetry::Value;
use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = PerfConfig::small();
    let mut out_path = "BENCH_pr10.json".to_string();
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => cfg = PerfConfig::small(),
            "--full" => cfg = PerfConfig::full(),
            "--repeats" => {
                cfg.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a number");
            }
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: perfbench [--small | --full] [--repeats N] [--out PATH] [--check BASELINE]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "perfbench: running {} matrix ({} repeats/cell)...",
        cfg.mode, cfg.repeats
    );
    let mut doc = run_matrix(&cfg);
    if let Value::Obj(fields) = &mut doc {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        fields.push(("generated_unix".to_string(), Value::from(now)));
    }
    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH json");
    eprintln!("perfbench: wrote {out_path}");

    // Human summary on stdout.
    if let Some(cells) = doc["cells"].as_array() {
        println!(
            "{:<18} {:>7} {:<12} {:<5} {:>12} {:>12} {:>6} {:>9}",
            "graph", "ops", "planner", "topo", "median", "p95", "evals", "cache-hit"
        );
        for c in cells {
            println!(
                "{:<18} {:>7} {:<12} {:<5} {:>12} {:>12} {:>6} {:>9}",
                c["graph"].as_str().unwrap_or("?"),
                c["ops"].as_u64().unwrap_or(0),
                c["planner"].as_str().unwrap_or("?"),
                c["topo"].as_str().unwrap_or("?"),
                fastt_telemetry::fmt_secs(c["median_secs"].as_f64().unwrap_or(0.0)),
                fastt_telemetry::fmt_secs(c["p95_secs"].as_f64().unwrap_or(0.0)),
                c["evals"].as_u64().unwrap_or(0),
                c["cache_hit_rate"]
                    .as_f64()
                    .filter(|r| r.is_finite())
                    .map(|r| format!("{:.0}%", r * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Value::parse(&text).expect("parse baseline json");
        let gate = check_against_baseline(&doc, &baseline);
        println!("\nregression gate vs {baseline_path}:");
        for line in &gate.lines {
            println!("  {line}");
        }
        println!("  => {} warn(s), {} fail(s)", gate.warns, gate.fails);
        if !gate.passed() {
            eprintln!("perfbench: median regression beyond 25% — failing");
            std::process::exit(1);
        }
    }
}
