//! Exports visual artifacts for one model's FastT deployment:
//! a Graphviz DOT of the placed graph and a Chrome-trace JSON of one
//! simulated iteration (open in `chrome://tracing` / Perfetto).
//!
//! ```bash
//! cargo run --release -p fastt-bench --bin visualize -- alexnet 2 /tmp/fastt-viz
//! ```

use fastt_bench::{dp_ps_for, per_replica_batch, run_fastt};
use fastt_cluster::Topology;
use fastt_graph::to_dot;
use fastt_sim::{HardwarePerf, SimConfig};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let model_arg = args.next().unwrap_or_else(|| "alexnet".into());
    let gpus: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let outdir = PathBuf::from(args.next().unwrap_or_else(|| "viz-out".into()));
    std::fs::create_dir_all(&outdir)?;

    let needle = model_arg.to_lowercase();
    let model = fastt_models::Model::all()
        .into_iter()
        .find(|m| m.name().to_lowercase().contains(&needle))
        .ok_or_else(|| format!("unknown model `{model_arg}`"))?;

    let topo = Topology::single_server(gpus);
    let global = model.paper_batch();
    let prb = per_replica_batch(model, global, gpus as u32);
    let _ = dp_ps_for(model);
    let run = run_fastt(model, &topo, prb, global, None)?;
    let plan = run.session.current_plan();

    // DOT with device coloring
    let devices: Vec<u16> = plan.placement.iter().map(|(_, d)| d.0).collect();
    let dot = to_dot(&plan.graph, &devices);
    let dot_path = outdir.join(format!("{needle}-{gpus}gpu.dot"));
    std::fs::write(&dot_path, dot)?;

    // Chrome trace of one iteration, with Perfetto track names and
    // per-device memory counter tracks
    let cfg = SimConfig {
        record_mem_timeline: true,
        ..SimConfig::default()
    };
    let trace = plan.simulate(&topo, &HardwarePerf::new(), &cfg)?;
    let names: Vec<String> = plan.graph.iter_ops().map(|(_, o)| o.name.clone()).collect();
    let json_path = outdir.join(format!("{needle}-{gpus}gpu.trace.json"));
    std::fs::write(&json_path, trace.to_chrome_trace_full(&names, &topo))?;

    println!("{model} on {gpus} GPUs:");
    println!("  iteration time : {:.3} ms", trace.makespan * 1e3);
    println!(
        "  utilization    : {:?}",
        trace
            .utilization()
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>()
    );
    println!("  graph          : {}", dot_path.display());
    println!("  chrome trace   : {}", json_path.display());
    Ok(())
}
