//! Table 2: training speed (samples/s) under **weak scaling** — the per-GPU
//! batch stays fixed, so the global batch grows with the GPU count.

fn main() {
    let models = fastt_bench::cli_models();
    fastt_bench::experiments::table2::table2(&models);
}
