//! Fig. 5: average computation time, memcpy (tensor transfer) time, and
//! per-iteration time for data parallelism vs FastT on 2 GPUs. The paper's
//! observation: FastT may *increase* computation time (more ops packed on
//! fewer devices) while reducing memcpy time and the per-iteration time.

fn main() {
    fastt_bench::experiments::fig5::fig5();
}
