//! # fastt-bench
//!
//! Benchmark harness reproducing every table and figure of the FastT paper's
//! evaluation (Sec. 6). Each `table*`/`fig*` binary prints the same rows or
//! series the paper reports; this library holds the shared experiment
//! drivers.
//!
//! Scaling modes follow Sec. 6.2: **strong** scaling keeps the global batch
//! fixed as GPUs are added (each replica gets `global / n`); **weak** scaling
//! fixes the per-GPU batch (the global batch grows with `n`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fastt::{
    data_parallel_plan, data_parallel_plan_on, PreTrainReport, SessionConfig, TrainingSession,
};
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{replicate_grouped, ReplicationMode};
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig, SimError};

/// One cluster setting of the paper's scaling tables.
#[derive(Debug, Clone)]
pub struct Setting {
    /// Column label, e.g. `"8GPUs (2servers)"`.
    pub label: String,
    /// Number of servers.
    pub servers: u16,
    /// GPUs per server.
    pub gpus_per_server: u16,
}

impl Setting {
    /// Creates the topology for this setting.
    pub fn topology(&self) -> Topology {
        Topology::multi_server(self.servers, self.gpus_per_server)
    }

    /// Total GPU count.
    pub fn gpus(&self) -> u32 {
        (self.servers * self.gpus_per_server) as u32
    }
}

/// The multi-GPU settings of Table 1 (strong scaling): 2/4/8 GPUs on one
/// server plus 8 GPUs over two servers.
pub fn strong_scaling_settings() -> Vec<Setting> {
    vec![
        Setting {
            label: "2GPUs".into(),
            servers: 1,
            gpus_per_server: 2,
        },
        Setting {
            label: "4GPUs".into(),
            servers: 1,
            gpus_per_server: 4,
        },
        Setting {
            label: "8GPUs".into(),
            servers: 1,
            gpus_per_server: 8,
        },
        Setting {
            label: "8GPUs (2servers)".into(),
            servers: 2,
            gpus_per_server: 4,
        },
    ]
}

/// The multi-GPU settings of Table 2 (weak scaling): up to 16 GPUs over two
/// servers.
pub fn weak_scaling_settings() -> Vec<Setting> {
    vec![
        Setting {
            label: "2GPUs".into(),
            servers: 1,
            gpus_per_server: 2,
        },
        Setting {
            label: "4GPUs".into(),
            servers: 1,
            gpus_per_server: 4,
        },
        Setting {
            label: "8GPUs".into(),
            servers: 1,
            gpus_per_server: 8,
        },
        Setting {
            label: "16GPUs (2servers)".into(),
            servers: 2,
            gpus_per_server: 8,
        },
    ]
}

/// Where the DP baseline keeps its shared variables for a model family:
/// TF-slim (the CNN benchmarks) defaults to the CPU host; the NMT/attention
/// baselines keep variables on GPU 0.
pub fn dp_ps_for(model: Model) -> Option<DeviceId> {
    if model.is_cnn() {
        None // slim default: CPU host
    } else {
        Some(DeviceId(0))
    }
}

/// Number of measurement iterations (after the paper's warm-up idea,
/// shrunk from 500 to keep the harness fast — the simulator's jitter is
/// only ±2%).
pub const MEASURE_ITERS: u32 = 5;

/// Result of one measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Average per-iteration time in seconds.
    pub iter_time: f64,
    /// Training speed in samples/second at the *global* batch size.
    pub samples_per_sec: f64,
}

/// Runs the DP baseline: per-replica graphs at `per_replica_batch`,
/// replicated over all GPUs of `topo`, PS placement per model family.
///
/// # Errors
///
/// Propagates simulator errors — an `Err(Oom)` here is the paper's "OOM"
/// table entry.
pub fn run_dp(
    model: Model,
    topo: &Topology,
    per_replica_batch: u64,
) -> Result<Measurement, SimError> {
    let n = topo.gpu_count() as u32;
    let graph = model.training_graph(per_replica_batch);
    let groups: Vec<u16> = topo.gpu_ids().map(|d| topo.server_of(d)).collect();
    let rep = replicate_grouped(&graph, &groups, ReplicationMode::ParameterServer)
        .expect("model graphs replicate");
    let plan = match dp_ps_for(model) {
        Some(d) => data_parallel_plan_on(&rep, topo, d),
        None => data_parallel_plan(&rep, topo),
    };
    let mut total = 0.0;
    for it in 0..MEASURE_ITERS {
        let cfg = SimConfig {
            jitter_pct: 0.02,
            iteration: it as u64,
            ..SimConfig::default()
        };
        total += plan.simulate(topo, &HardwarePerf::new(), &cfg)?.makespan;
    }
    let iter_time = total / MEASURE_ITERS as f64;
    Ok(Measurement {
        iter_time,
        samples_per_sec: (per_replica_batch * n as u64) as f64 / iter_time,
    })
}

/// Result of a FastT run: the measurement plus the session artifacts
/// (consumed by the analysis experiments).
pub struct FastTRun {
    /// Speed measurement at the global batch size.
    pub measurement: Measurement,
    /// The pre-training report (strategy-calculation time, rollbacks, …).
    pub report: PreTrainReport,
    /// The finished session (owning the final plan and cost models).
    pub session: TrainingSession,
}

/// Runs the full FastT workflow on a model.
///
/// `per_replica_batch` is the batch the model graph is built with; when the
/// model fits, FastT starts from the DP-replicated graph, so the global batch
/// is `per_replica_batch × gpus` — matching how [`run_dp`] is driven.
///
/// # Errors
///
/// Returns an error when no start strategy fits in memory.
pub fn run_fastt(
    model: Model,
    topo: &Topology,
    per_replica_batch: u64,
    global_batch: u64,
    config: Option<SessionConfig>,
) -> Result<FastTRun, fastt::FastTError> {
    let graph = model.training_graph(per_replica_batch);
    let config = config.unwrap_or_else(|| SessionConfig {
        dp_ps: dp_ps_for(model),
        ..SessionConfig::default()
    });
    let mut session =
        TrainingSession::new(&graph, topo.clone(), HardwarePerf::new(), config.clone())?;
    if !session.started_data_parallel() && per_replica_batch != global_batch {
        // Data parallelism cannot host this model, so the paper's rule
        // applies: FastT deploys the *whole-batch* model DAG (Sec. 5.2) —
        // rebuild at the global batch so the reported speed is honest.
        let graph = model.training_graph(global_batch);
        session = TrainingSession::new(&graph, topo.clone(), HardwarePerf::new(), config)?;
    }
    let report = session.pre_train()?;
    let iter_time = report.final_iter_time;
    Ok(FastTRun {
        measurement: Measurement {
            iter_time,
            samples_per_sec: global_batch as f64 / iter_time,
        },
        report,
        session,
    })
}

/// Splits a global batch across `n` replicas, clamping at the model's
/// minimum buildable batch (strong scaling at high GPU counts).
pub fn per_replica_batch(model: Model, global: u64, n: u32) -> u64 {
    (global / n as u64).max(model.min_batch())
}

/// Formats a samples/s cell.
pub fn fmt_sps(m: &Result<Measurement, SimError>) -> String {
    match m {
        Ok(v) => format!("{:>9.1}", v.samples_per_sec),
        Err(e) if e.is_oom() => format!("{:>9}", "OOM"),
        Err(_) => format!("{:>9}", "ERR"),
    }
}

/// Parses command-line arguments as model names (substring match against the
/// paper names, case-insensitive); no arguments selects all nine models.
///
/// # Panics
///
/// Panics with a helpful message when an argument matches no model.
pub fn cli_models() -> Vec<Model> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Model::all().to_vec();
    }
    args.iter()
        .map(|a| {
            let needle = a.to_lowercase();
            Model::all()
                .into_iter()
                .find(|m| m.name().to_lowercase().contains(&needle))
                .unwrap_or_else(|| {
                    panic!(
                        "unknown model `{a}`; known: {}",
                        Model::all().map(|m| m.name()).join(", ")
                    )
                })
        })
        .collect()
}

/// Prints a Markdown-ish table header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n## {title}\n");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_cover_the_papers_columns() {
        let s = strong_scaling_settings();
        assert_eq!(s.len(), 4);
        assert_eq!(s[3].gpus(), 8);
        assert_eq!(s[3].servers, 2);
        let w = weak_scaling_settings();
        assert_eq!(w[3].gpus(), 16);
    }

    #[test]
    fn per_replica_batch_clamps() {
        assert_eq!(per_replica_batch(Model::Vgg19, 64, 4), 16);
        assert_eq!(per_replica_batch(Model::Transformer, 4096, 8), 512);
        // transformer needs at least one 64-token sequence per replica
        assert_eq!(per_replica_batch(Model::Transformer, 64, 8), 64);
    }

    #[test]
    fn dp_runs_on_small_model() {
        let topo = Topology::single_server(2);
        let m = run_dp(Model::LeNet, &topo, 32).unwrap();
        assert!(m.iter_time > 0.0);
        assert!(m.samples_per_sec > 0.0);
    }

    #[test]
    fn fastt_beats_or_matches_dp_on_lenet() {
        let topo = Topology::single_server(2);
        let dp = run_dp(Model::LeNet, &topo, 32).unwrap();
        let ft = run_fastt(Model::LeNet, &topo, 32, 64, None).unwrap();
        assert!(
            ft.measurement.iter_time <= dp.iter_time * 1.05,
            "FastT {} vs DP {}",
            ft.measurement.iter_time,
            dp.iter_time
        );
    }

    #[test]
    fn ps_family_rule() {
        assert_eq!(dp_ps_for(Model::Vgg19), None);
        assert_eq!(dp_ps_for(Model::BertLarge), Some(DeviceId(0)));
    }
}

pub mod experiments;
pub mod perf;
