//! Criterion micro-benchmarks of FastT's core algorithms: the quantities
//! behind the paper's Table 4 (strategy-computation time) and the claim that
//! FastT's "time complexity is linear with the number of operations and
//! devices" (Sec. 6.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastt::{dpos, os_dpos, schedule_for_placement, upward_ranks, OsDposOptions};
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::{replicate, Graph};
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// Cost models bootstrapped the way a session would: one profile run per GPU
/// plus a round-robin run for communication.
fn bootstrapped(graph: &Graph, topo: &Topology) -> CostModels {
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(graph.op_count(), d);
        if let Ok(tr) = simulate(
            graph,
            topo,
            &p,
            &hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        ) {
            cost.update_from_trace(graph, &tr);
        }
    }
    let mut p = Placement::uniform(graph.op_count(), DeviceId(0));
    for (i, op) in graph.op_ids().enumerate() {
        p.set(op, DeviceId((i % topo.gpu_count()) as u16));
    }
    if let Ok(tr) = simulate(
        graph,
        topo,
        &p,
        &hw,
        ExecPolicy::Fifo,
        &SimConfig::default(),
    ) {
        cost.update_from_trace(graph, &tr);
    }
    cost
}

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("upward_ranks");
    for model in [Model::Vgg19, Model::InceptionV3, Model::ResNet200] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(4);
        let cost = bootstrapped(&graph, &topo);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{model}/{} ops", graph.op_count())),
            &graph,
            |b, graph| b.iter(|| upward_ranks(graph, &cost)),
        );
    }
    g.finish();
}

fn bench_dpos(c: &mut Criterion) {
    // DPOS runtime vs device count: the linear-complexity claim.
    let mut g = c.benchmark_group("dpos");
    let graph = Model::Vgg19.training_graph(8);
    for gpus in [2u16, 4, 8] {
        let topo = Topology::single_server(gpus);
        let rep = replicate(&graph, gpus as u32).unwrap();
        let cost = bootstrapped(&rep.graph, &topo);
        let hw = HardwarePerf::new();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("vgg19-dp/{gpus}gpus")),
            &topo,
            |b, topo| b.iter(|| dpos(&rep.graph, topo, &cost, &hw)),
        );
    }
    g.finish();
}

fn bench_os_dpos(c: &mut Criterion) {
    // Full Alg. 2 — the per-invocation cost inside Table 4.
    let mut g = c.benchmark_group("os_dpos");
    g.sample_size(10);
    for model in [Model::LeNet, Model::AlexNet, Model::Vgg19] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(4);
        let rep = replicate(&graph, 4).unwrap();
        let cost = bootstrapped(&rep.graph, &topo);
        let hw = HardwarePerf::new();
        let opts = OsDposOptions::for_topology(&topo);
        g.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &rep.graph,
            |b, graph| {
                b.iter(|| {
                    let mut c = cost.clone();
                    os_dpos(graph, &topo, &mut c, &hw, &opts)
                })
            },
        );
    }
    g.finish();
}

fn bench_order_for_placement(c: &mut Criterion) {
    // Ordering an existing placement (the Fig. 2 lever) is even cheaper.
    let graph = Model::ResNet200.training_graph(8);
    let topo = Topology::single_server(2);
    let rep = replicate(&graph, 2).unwrap();
    let cost = bootstrapped(&rep.graph, &topo);
    let hw = HardwarePerf::new();
    let plan = fastt::data_parallel_plan(&rep, &topo);
    c.bench_function("schedule_for_placement/resnet200-dp2", |b| {
        b.iter(|| schedule_for_placement(&rep.graph, &topo, &cost, &hw, &plan.placement))
    });
}

criterion_group!(
    benches,
    bench_rank,
    bench_dpos,
    bench_os_dpos,
    bench_order_for_placement
);
criterion_main!(benches);
