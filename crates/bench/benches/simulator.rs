//! Criterion micro-benchmarks of the discrete-event simulator — the
//! substrate every profiling iteration and black-box evaluation runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastt::data_parallel_plan;
use fastt_cluster::Topology;
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};
use fastt_telemetry::{Collector, NullSink};
use std::sync::Arc;

fn bench_simulate_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate-dp4");
    g.sample_size(20);
    for model in [
        Model::LeNet,
        Model::Vgg19,
        Model::InceptionV3,
        Model::ResNet200,
    ] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(4);
        let rep = replicate(&graph, 4).unwrap();
        let plan = data_parallel_plan(&rep, &topo);
        let hw = HardwarePerf::new();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{model}/{} ops", rep.graph.op_count())),
            &plan,
            |b, plan| {
                b.iter(|| {
                    plan.simulate(&topo, &hw, &SimConfig::default())
                        .expect("fits")
                })
            },
        );
    }
    g.finish();
}

fn bench_policy_overhead(c: &mut Criterion) {
    // Priority queues vs FIFO: the executor-side cost of order enforcement.
    let graph = Model::InceptionV3.training_graph(8);
    let topo = Topology::single_server(2);
    let rep = replicate(&graph, 2).unwrap();
    let mut plan = data_parallel_plan(&rep, &topo);
    let hw = HardwarePerf::new();
    let mut g = c.benchmark_group("executor-policy");
    g.bench_function("fifo", |b| {
        b.iter(|| {
            plan.simulate(&topo, &hw, &SimConfig::default())
                .expect("fits")
        })
    });
    plan.order = Some(rep.graph.topo_order().unwrap());
    g.bench_function("priority", |b| {
        b.iter(|| {
            plan.simulate(&topo, &hw, &SimConfig::default())
                .expect("fits")
        })
    });
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The acceptance bar for the telemetry layer: a collector draining to a
    // null sink must not measurably slow the simulator against no collector
    // at all.
    let graph = Model::InceptionV3.training_graph(8);
    let topo = Topology::single_server(4);
    let rep = replicate(&graph, 4).unwrap();
    let plan = data_parallel_plan(&rep, &topo);
    let hw = HardwarePerf::new();
    let mut g = c.benchmark_group("telemetry-overhead");
    g.sample_size(20);
    g.bench_function("no-collector", |b| {
        b.iter(|| {
            plan.simulate(&topo, &hw, &SimConfig::default())
                .expect("fits")
        })
    });
    let cfg = SimConfig {
        collector: Some(Arc::new(Collector::new().with_sink(NullSink))),
        ..SimConfig::default()
    };
    g.bench_function("null-sink", |b| {
        b.iter(|| plan.simulate(&topo, &hw, &cfg).expect("fits"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulate_models,
    bench_policy_overhead,
    bench_telemetry_overhead
);
criterion_main!(benches);
