//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * idle-slot insertion vs append-only scheduling (`avail[j]`, Sec. 5.1);
//! * critical-path device grouping vs pure min-EFT;
//! * learned cost models vs an oracle that reads the hardware ground truth;
//! * parameter-server placement: CPU host vs GPU 0 vs FastT.
//!
//! `cargo bench --bench ablations` prints, per model, the simulated
//! per-iteration time of each variant.

use fastt::{data_parallel_plan, data_parallel_plan_on, dpos_with, DposFlags};
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::{replicate, Graph};
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

fn bootstrapped(graph: &Graph, topo: &Topology) -> CostModels {
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(graph.op_count(), d);
        if let Ok(tr) = simulate(
            graph,
            topo,
            &p,
            &hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        ) {
            cost.update_from_trace(graph, &tr);
        }
    }
    let mut p = Placement::uniform(graph.op_count(), DeviceId(0));
    for (i, op) in graph.op_ids().enumerate() {
        p.set(op, DeviceId((i % topo.gpu_count()) as u16));
    }
    if let Ok(tr) = simulate(
        graph,
        topo,
        &p,
        &hw,
        ExecPolicy::Fifo,
        &SimConfig::default(),
    ) {
        cost.update_from_trace(graph, &tr);
    }
    cost
}

/// Cost models filled directly from the ground truth — the "oracle" the
/// learned models are compared against.
fn oracle(graph: &Graph, topo: &Topology) -> CostModels {
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for (oid, op) in graph.iter_ops() {
        for d in topo.gpu_ids() {
            cost.comp
                .observe(&op.name, d, hw.exec_time(graph, oid, topo.device(d)));
        }
    }
    for s in topo.device_ids() {
        for d in topo.device_ids() {
            if s == d {
                continue;
            }
            if let Some(l) = topo.link(s, d) {
                for bytes in [1u64 << 12, 1 << 18, 1 << 24] {
                    cost.comm.observe(s, d, bytes, l.transfer_time(bytes));
                }
            }
        }
    }
    cost.comm.refit();
    cost
}

fn sim_time(graph: &Graph, topo: &Topology, s: &fastt::Schedule) -> f64 {
    match simulate(
        graph,
        topo,
        &s.placement,
        &HardwarePerf::new(),
        ExecPolicy::Priority(&s.order),
        &SimConfig::default(),
    ) {
        Ok(t) => t.makespan,
        Err(_) => f64::NAN,
    }
}

fn dpos_variant_ablation() {
    println!("\n## Ablation: DPOS design choices (simulated s/iteration, 4 GPUs)\n");
    println!("| Model | full DPOS | no insertion | no CP grouping | neither |");
    println!("|---|---|---|---|---|");
    let hw = HardwarePerf::new();
    for model in [Model::Vgg19, Model::InceptionV3, Model::Gnmt4] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(4);
        let rep = replicate(&graph, 4).unwrap();
        let cost = bootstrapped(&rep.graph, &topo);
        let variants = [
            DposFlags {
                insertion: true,
                cp_grouping: true,
            },
            DposFlags {
                insertion: false,
                cp_grouping: true,
            },
            DposFlags {
                insertion: true,
                cp_grouping: false,
            },
            DposFlags {
                insertion: false,
                cp_grouping: false,
            },
        ];
        let times: Vec<String> = variants
            .iter()
            .map(|f| {
                let s = dpos_with(&rep.graph, &topo, &cost, &hw, *f);
                format!("{:.4}", sim_time(&rep.graph, &topo, &s))
            })
            .collect();
        println!("| {} | {} |", model.name(), times.join(" | "));
    }
}

fn cost_model_ablation() {
    println!("\n## Ablation: learned cost models vs ground-truth oracle (4 GPUs)\n");
    println!("| Model | learned est | learned sim | oracle est | oracle sim |");
    println!("|---|---|---|---|---|");
    let hw = HardwarePerf::new();
    for model in [Model::AlexNet, Model::Vgg19] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(4);
        let rep = replicate(&graph, 4).unwrap();
        let learned = bootstrapped(&rep.graph, &topo);
        let orc = oracle(&rep.graph, &topo);
        let sl = dpos_with(&rep.graph, &topo, &learned, &hw, DposFlags::default());
        let so = dpos_with(&rep.graph, &topo, &orc, &hw, DposFlags::default());
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} |",
            model.name(),
            sl.est_finish,
            sim_time(&rep.graph, &topo, &sl),
            so.est_finish,
            sim_time(&rep.graph, &topo, &so),
        );
    }
}

fn ps_placement_ablation() {
    println!("\n## Ablation: parameter-server placement for DP (2 GPUs, s/iteration)\n");
    println!("| Model | PS on CPU host | PS on GPU 0 |");
    println!("|---|---|---|");
    let hw = HardwarePerf::new();
    for model in [Model::Vgg19, Model::AlexNet, Model::Rnnlm] {
        let graph = model.training_graph(model.paper_batch() / 2);
        let topo = Topology::single_server(2);
        let rep = replicate(&graph, 2).unwrap();
        let on_host = data_parallel_plan(&rep, &topo);
        let on_gpu = data_parallel_plan_on(&rep, &topo, DeviceId(0));
        let t = |p: &fastt::Plan| {
            p.simulate(&topo, &hw, &SimConfig::default())
                .map(|t| format!("{:.4}", t.makespan))
                .unwrap_or_else(|_| "OOM".into())
        };
        println!("| {} | {} | {} |", model.name(), t(&on_host), t(&on_gpu));
    }
}

fn main() {
    dpos_variant_ablation();
    cost_model_ablation();
    ps_placement_ablation();
}
