//! Search-budget study: strategy quality vs the number of full training
//! iterations each method consumes — our measured version of the paper's
//! central resource argument ("REINFORCE and GDP use another big cluster …
//! and spend hours", while FastT "can find excellent device placement and
//! execution order within minutes using the same computing node").
//!
//! `cargo bench --bench search_budget` prints, per budget level, the best
//! simulated iteration time each black-box method found, next to the
//! one-shot white-box results (GDP, FastT) and the DP baseline.

use fastt::search::{cem_search, mcmc_search, random_search, reinforce_search};
use fastt::{bootstrap_cost_models, data_parallel_plan};
use fastt_cluster::Topology;
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};
use std::time::Instant;

fn main() {
    let model = Model::InceptionV3;
    let gpus = 4u16;
    let topo = Topology::single_server(gpus);
    let hw = HardwarePerf::new();
    let global = model.paper_batch();

    // DP reference
    let replica = model.training_graph(global / gpus as u64);
    let rep = replicate(&replica, gpus as u32).unwrap();
    let dp = data_parallel_plan(&rep, &topo);
    let dp_time = dp
        .simulate(&topo, &hw, &SimConfig::default())
        .expect("DP fits")
        .makespan;
    println!("\n## Search budget vs quality — {model}, {gpus} GPUs\n");
    println!("DP baseline: {dp_time:.4} s/iteration\n");
    println!("| budget (evals) | random | REINFORCE | Post (CEM) | FlexFlow (MCMC) |");
    println!("|---|---|---|---|---|");

    let raw = model.training_graph(global);
    for budget in [10u32, 40, 160, 640] {
        let rnd = random_search(&raw, &topo, &hw, budget, 1);
        let rl = reinforce_search(&raw, &topo, &hw, budget / 8, 8, 2);
        let cem = cem_search(&raw, &topo, &hw, budget / 10, 10, 0.25, 3);
        let mcmc = mcmc_search(&rep.graph, &topo, &hw, Some(&dp.placement), budget, 0.03, 4);
        println!(
            "| {budget} | {:.4} | {:.4} | {:.4} | {:.4} |",
            rnd.best_time, rl.best_time, cem.best_time, mcmc.best_time
        );
    }

    // one-shot white-box methods for contrast
    let t0 = Instant::now();
    let cost = bootstrap_cost_models(&raw, &topo, &hw);
    let gdp = fastt::search::gdp_place(&raw, &topo, &cost, &hw);
    println!(
        "\nGDP (white box, 1 eval): {:.4} s/iteration, computed in {:.2}s",
        gdp.best_time,
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let mut session = fastt::TrainingSession::new(
        &replica,
        topo.clone(),
        hw.clone(),
        fastt::SessionConfig::default(),
    )
    .expect("feasible");
    let report = session.pre_train().expect("trains");
    println!(
        "FastT (white box + profiling): {:.4} s/iteration, strategies computed in {:.2}s \
         (total wall {:.2}s incl. simulated profiling)",
        report.final_iter_time,
        report.strategy_calc_secs,
        t0.elapsed().as_secs_f64()
    );
}
