//! `cargo bench --bench paper` regenerates **every table and figure** of the
//! paper's evaluation (Sec. 6) and prints them to stdout.
//!
//! Scope control via the environment:
//! * `FASTT_MODELS="vgg,lenet"` restricts the scaling tables to a subset;
//! * `FASTT_SKIP_FIG3=1` skips the (slow) black-box search comparison.

use fastt_bench::experiments;
use fastt_models::Model;

fn selected_models() -> Vec<Model> {
    match std::env::var("FASTT_MODELS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|a| {
                let needle = a.trim().to_lowercase();
                Model::all()
                    .into_iter()
                    .find(|m| m.name().to_lowercase().contains(&needle))
                    .unwrap_or_else(|| panic!("unknown model `{a}`"))
            })
            .collect(),
        _ => Model::all().to_vec(),
    }
}

fn main() {
    // Criterion-style filtering is not useful here: this target is a
    // deterministic experiment harness, not a statistical benchmark — the
    // numbers it prints *are* the deliverable (recorded in EXPERIMENTS.md).
    let models = selected_models();

    experiments::table1::table1(&models);
    experiments::table2::table2(&models);
    experiments::table3::table3();
    experiments::table4::table4(&models);
    experiments::table5::table5();
    experiments::table6::table6(&models);
    experiments::fig2::fig2();
    if std::env::var("FASTT_SKIP_FIG3").is_err() {
        experiments::fig3::fig3();
    } else {
        println!("\n## Fig. 3 skipped (FASTT_SKIP_FIG3 set)");
    }
    experiments::fig4::fig4();
    experiments::fig5::fig5();
}
