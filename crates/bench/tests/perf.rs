//! Tests for the perfbench driver: structural determinism of the emitted
//! BENCH JSON, regression-gate threshold semantics, and the per-cell
//! schema the CI gate depends on.

use fastt_bench::perf::{
    check_against_baseline, run_matrix, structural_fingerprint, PerfConfig, SCHEMA,
};
use fastt_telemetry::Value;

/// A matrix small enough for debug-mode test runs: one 2-layer stack on
/// one 2-GPU server, 2 repeats.
fn tiny() -> PerfConfig {
    PerfConfig {
        mode: "tiny".into(),
        repeats: 2,
        seed: 7,
        stack_layers: vec![2],
        topologies: vec![("1x2".into(), 1, 2)],
        reference_models: false,
    }
}

#[test]
fn same_seed_runs_are_structurally_identical() {
    let a = run_matrix(&tiny());
    let b = run_matrix(&tiny());
    // Timings differ run to run; the structure (cells, keys, op counts,
    // eval counts, cache hit rates) must not.
    assert_eq!(
        structural_fingerprint(&a).to_string(),
        structural_fingerprint(&b).to_string()
    );
    // ... while the fingerprint really did strip the volatile fields.
    let s = structural_fingerprint(&a).to_string();
    assert!(!s.contains("median_secs"));
    assert!(!s.contains("hotspots"));
}

#[test]
fn bench_document_has_the_gated_schema() {
    let doc = run_matrix(&tiny());
    assert_eq!(doc["schema"].as_str(), Some(SCHEMA));
    let cells = doc["cells"].as_array().unwrap();
    // 4 planner rows (dpos, os_dpos, hierarchical, portfolio) × 1 graph
    // × 1 topo
    assert_eq!(cells.len(), 4);
    // The hierarchical cell reports its decomposition shape.
    let hier = cells
        .iter()
        .find(|c| c["planner"].as_str() == Some("hierarchical"))
        .unwrap();
    assert!(hier["region_count"].as_f64().unwrap() >= 1.0);
    assert!(hier["collapse_rounds"].as_f64().unwrap() >= 1.0);
    assert!(hier["decompose_secs"].as_f64().unwrap() >= 0.0);
    assert!(hier["probed_makespan_secs"].as_f64().unwrap() > 0.0);
    for c in cells {
        for key in ["graph", "planner", "topo"] {
            assert!(c[key].as_str().is_some(), "cell missing {key}");
        }
        for key in ["ops", "evals", "repeats"] {
            assert!(c[key].as_u64().is_some(), "cell missing {key}");
        }
        assert!(c["median_secs"].as_f64().unwrap() > 0.0);
        assert!(c["p95_secs"].as_f64().unwrap() >= c["median_secs"].as_f64().unwrap());
        assert!(!c["hotspots"].as_array().unwrap().is_empty());
    }
    let portfolio = cells
        .iter()
        .find(|c| c["planner"].as_str() == Some("portfolio"))
        .unwrap();
    // With 2 repeats and 2 cacheable planners: repeat 1 misses, repeat 2
    // hits — hit rate is exactly 1/2.
    assert_eq!(portfolio["cache_hit_rate"].as_f64(), Some(0.5));
    // SLO verdicts graded from the cell's own registry.
    let slos = portfolio["slos"].as_array().unwrap();
    assert!(slos
        .iter()
        .any(|s| s["slo"].as_str() == Some("planner.latency.p95")));
    // The profile tree reached the planner hot paths.
    let hot: Vec<&str> = portfolio["hotspots"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|h| h["path"].as_str())
        .collect();
    assert!(
        hot.iter()
            .any(|p| p.starts_with("portfolio") || p.starts_with("plan")),
        "hotspots must come from instrumented phases: {hot:?}"
    );
}

fn doc_with_cell(median: f64) -> Value {
    Value::parse(&format!(
        r#"{{"schema":"fastt-perfbench/v1","cells":[
            {{"graph":"g","planner":"dpos","topo":"1x2","median_secs":{median}}},
            {{"graph":"tiny","planner":"dpos","topo":"1x2","median_secs":{}}}
        ]}}"#,
        1e-5
    ))
    .unwrap()
}

#[test]
fn gate_thresholds_warn_at_10_and_fail_at_25_percent() {
    let base = doc_with_cell(0.100);

    let ok = check_against_baseline(&doc_with_cell(0.105), &base);
    assert_eq!((ok.warns, ok.fails), (0, 0), "{:?}", ok.lines);
    assert!(ok.passed());

    let warn = check_against_baseline(&doc_with_cell(0.115), &base);
    assert_eq!((warn.warns, warn.fails), (1, 0), "{:?}", warn.lines);
    assert!(warn.passed());

    let fail = check_against_baseline(&doc_with_cell(0.126), &base);
    assert_eq!((fail.warns, fail.fails), (0, 1), "{:?}", fail.lines);
    assert!(!fail.passed());

    // Sub-millisecond baseline cells never gate, regardless of ratio: the
    // `tiny` cell is 10µs in both docs and is reported as SKIP.
    assert!(fail.lines.iter().any(|l| l.starts_with("SKIP")));

    // Improvements are plain OK.
    let faster = check_against_baseline(&doc_with_cell(0.050), &base);
    assert_eq!((faster.warns, faster.fails), (0, 0));
}

#[test]
fn gate_reports_missing_and_new_cells_without_failing() {
    let base = doc_with_cell(0.1);
    let empty = Value::parse(r#"{"cells":[]}"#).unwrap();
    let gate = check_against_baseline(&empty, &base);
    assert!(gate.passed(), "missing cells warn, not fail");
    assert_eq!(gate.warns, 2);
    assert!(gate.lines.iter().all(|l| l.starts_with("MISSING")));

    let reverse = check_against_baseline(&base, &empty);
    assert!(reverse.passed());
    assert!(reverse.lines.iter().all(|l| l.starts_with("NEW")));
}
