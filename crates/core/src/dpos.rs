//! DPOS — Device Placement and Operation Sequencing (Alg. 1 of the paper).
//!
//! List scheduling in two phases (Sec. 5.1): operations are prioritized by
//! upward rank, then assigned devices one by one. Operations on the critical
//! path go to a jointly-chosen *critical-path device* (minimizing the average
//! execution time of as many CP ops as fit in its memory); all other ops go
//! to the device minimizing their earliest finish time (EFT), with
//! idle-slot insertion.

use crate::rank::{critical_path, upward_ranks};
use crate::timeline::DeviceTimeline;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::{Graph, OpId};
use fastt_sim::{HardwarePerf, Placement};
use fastt_telemetry::{jobj, Collector, Value};

/// The output of one DPOS run: placement, execution order, and the
/// estimated schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Device assignment for every op (the paper's `S_new`).
    pub placement: Placement,
    /// Execution order list `A`: ops by ascending estimated start time.
    pub order: Vec<OpId>,
    /// Estimated finish time of the exit operation, `FT(o_exit)` —
    /// the maximum finish time over all sinks.
    pub est_finish: f64,
    /// Estimated start time per op.
    pub start_times: Vec<f64>,
    /// Estimated finish time per op.
    pub finish_times: Vec<f64>,
    /// The rank-based critical path the schedule was built around.
    pub critical_path: Vec<OpId>,
}

/// Picks a critical-path device for the remaining CP ops: for each device,
/// greedily pack as many remaining CP ops as fit in its free memory and
/// compute their average execution time from the computation cost model;
/// the device with the smallest average wins (Sec. 5.1).
fn select_cp_device(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    remaining_cp: &[OpId],
    mem_used: &[u64],
) -> DeviceId {
    let mut best = topo.gpu_ids().next().unwrap_or(DeviceId(0));
    let mut best_avg = f64::INFINITY;
    for d in topo.gpu_ids() {
        let cap = topo.device(d).mem_bytes;
        let mut free = cap.saturating_sub(mem_used[d.index()]);
        let mut sum = 0.0;
        let mut count = 0u32;
        for &o in remaining_cp {
            let need = hw.planning_bytes(graph.op_ref(o));
            if need > free {
                break;
            }
            free -= need;
            sum += cost.comp.get(&graph.op_ref(o).name, d).unwrap_or(0.0);
            count += 1;
        }
        let avg = if count == 0 {
            f64::INFINITY
        } else {
            sum / count as f64
        };
        if avg < best_avg {
            best_avg = avg;
            best = d;
        }
    }
    best
}

/// Design-choice switches for [`dpos_with`] — used by the ablation benches
/// to quantify each ingredient of Alg. 1 (see DESIGN.md §5).
#[derive(Debug, Clone, Copy)]
pub struct DposFlags {
    /// Idle-slot insertion (`avail[j]` as the paper defines it). Off =
    /// append-only scheduling (ops can only start after the device's last
    /// scheduled op).
    pub insertion: bool,
    /// Critical-path device grouping (Sec. 5.1). Off = every op, including
    /// CP ops, is placed by plain min-EFT.
    pub cp_grouping: bool,
}

impl Default for DposFlags {
    fn default() -> Self {
        DposFlags {
            insertion: true,
            cp_grouping: true,
        }
    }
}

/// Runs DPOS on `graph` over `topo` using the current cost models.
///
/// Missing *computation* costs are treated as zero, which biases the
/// schedule toward unexplored placements so the profiler can measure them in
/// the following training steps (Sec. 4). Missing *communication* costs fall
/// back to the topology's analytic per-route transfer time instead — a free
/// unprofiled link would win every earliest-finish-time comparison and pull
/// whole subgraphs across the slowest wires in the cluster.
///
/// # Panics
///
/// Panics if `graph` contains a cycle.
pub fn dpos(graph: &Graph, topo: &Topology, cost: &CostModels, hw: &HardwarePerf) -> Schedule {
    dpos_impl(graph, topo, cost, hw, None, DposFlags::default(), None)
}

/// [`dpos`] with optional scheduler decision tracing: when `col` is `Some`,
/// every placement decision is emitted as a `dpos.place` event carrying the
/// chosen device and the earliest-finish-time score of every device that was
/// considered. This is the single entry point the planner layer uses — the
/// old `dpos_traced` duplicate is gone.
///
/// # Panics
///
/// Panics if `graph` contains a cycle.
pub(crate) fn dpos_opt(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    col: Option<&Collector>,
) -> Schedule {
    dpos_impl(graph, topo, cost, hw, None, DposFlags::default(), col)
}

/// [`dpos`] with explicit design-choice switches (ablations).
///
/// # Panics
///
/// Panics if `graph` contains a cycle.
pub fn dpos_with(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    flags: DposFlags,
) -> Schedule {
    dpos_impl(graph, topo, cost, hw, None, flags, None)
}

/// Computes an execution order (and schedule estimate) for a **fixed**
/// placement: the same list-scheduling pass as [`dpos`], but every op is
/// pinned to its device from `placement`. This is how FastT derives an
/// enforced execution order for a deployment it did not choose — e.g.
/// ordering the default data-parallel placement (the paper's Fig. 2
/// experiment isolates exactly this effect).
///
/// # Panics
///
/// Panics if `graph` contains a cycle or `placement` does not cover it.
pub fn schedule_for_placement(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    placement: &Placement,
) -> Schedule {
    dpos_impl(
        graph,
        topo,
        cost,
        hw,
        Some(placement),
        DposFlags::default(),
        None,
    )
}

fn dpos_impl(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    fixed: Option<&Placement>,
    flags: DposFlags,
    col: Option<&Collector>,
) -> Schedule {
    if let Some(col) = col {
        col.metrics().inc("dpos.runs");
    }
    let _place_phase = col.map(|c| c.phase("dpos.place"));
    let n = graph.op_count();
    let n_dev = topo.device_count();
    let rank_phase = col.map(|c| c.phase("rank"));
    let ranks = upward_ranks(graph, cost);
    let cp = critical_path(graph, &ranks);
    drop(rank_phase);
    let mut on_cp = vec![false; n];
    for &o in &cp {
        on_cp[o.index()] = true;
    }

    // Priority queue: rank descending, topological position as tiebreak so
    // predecessors are always placed before successors.
    let topo_order = graph.topo_order().expect("DAG");
    let mut topo_pos = vec![0usize; n];
    for (i, &o) in topo_order.iter().enumerate() {
        topo_pos[o.index()] = i;
    }
    // Rank descending; critical-path ops win ties (the paper always places
    // "the entry operation in the new critical path" next); topological
    // position as the final tiebreak. A rank tie across an edge could still
    // put a successor ahead of its predecessor, so the placement loop below
    // iterates this priority order *topologically*: always the
    // highest-priority op whose predecessors are already placed.
    let mut queue: Vec<OpId> = graph.op_ids().collect();
    queue.sort_by(|a, b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then(on_cp[b.index()].cmp(&on_cp[a.index()]))
            .then(topo_pos[a.index()].cmp(&topo_pos[b.index()]))
    });
    let mut prio = vec![0usize; n];
    for (i, &o) in queue.iter().enumerate() {
        prio[o.index()] = i;
    }
    let mut unplaced_preds: Vec<u32> = vec![0; n];
    for e in graph.iter_edges() {
        unplaced_preds[e.dst.index()] += 1;
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(usize, OpId)>> = graph
        .op_ids()
        .filter(|o| unplaced_preds[o.index()] == 0)
        .map(|o| std::cmp::Reverse((prio[o.index()], o)))
        .collect();

    let mut timelines: Vec<DeviceTimeline> = (0..n_dev).map(|_| DeviceTimeline::new()).collect();
    let mut mem_used = vec![0u64; n_dev];
    let mut st = vec![f64::NAN; n];
    let mut ft = vec![f64::NAN; n];
    let mut placement = Placement::uniform(n, DeviceId(0));
    let mut placed = vec![false; n];
    let mut forced: Vec<Option<DeviceId>> = vec![None; n];

    // Remaining CP ops in path order, advanced as they get placed.
    let mut cp_remaining: Vec<OpId> = cp.clone();
    let mut cp_device = if cp_remaining.is_empty() {
        DeviceId(0)
    } else {
        select_cp_device(graph, topo, cost, hw, &cp_remaining, &mem_used)
    };

    // Transfer bookkeeping mirrors the executor: tensors are sent once per
    // (producer, destination device) — later readers reuse the arrival —
    // routed hop by hop over the physical topology, and hops sharing a
    // physical channel serialize, which the schedule models with channel
    // timelines (the estimate would otherwise be blind to exactly the
    // contention the communication cost model measures).
    let mut chan: std::collections::HashMap<(u32, u32), DeviceTimeline> =
        std::collections::HashMap::new();
    let mut xfer_done: std::collections::HashMap<(OpId, DeviceId), f64> =
        std::collections::HashMap::new();

    // Predicted duration of one physical hop: the cost model's answer when
    // it has one, else the topology's analytic transfer time — never zero.
    // An unprofiled link priced at zero would beat every profiled one in
    // each EFT comparison it enters, which is the opposite of pessimism the
    // scheduler needs before the profiler has visited that link.
    let hop_dur = |a: DeviceId, b: DeviceId, bytes: u64| -> f64 {
        cost.comm
            .predict(a, b, bytes)
            .unwrap_or_else(|| topo.transfer_time_routed(a, b, bytes))
    };

    // Collective duration as the simulator will run it: ring all-reduce over
    // the producers' devices, predicted from the same per-link-class fits,
    // with the analytic ring time as the unprofiled fallback.
    let collective_dur = |parts: &[DeviceId], bytes: u64| -> f64 {
        cost.comm
            .predict_allreduce(parts, bytes)
            .unwrap_or_else(|| {
                let n = parts.len();
                if n < 2 {
                    return 0.0;
                }
                let chunk = bytes.div_ceil(n as u64);
                let slowest = (0..n)
                    .map(|i| topo.transfer_time_routed(parts[i], parts[(i + 1) % n], chunk))
                    .fold(0.0f64, f64::max);
                2.0 * (n as f64 - 1.0) * slowest
            })
    };

    // Whether `p`'s output is already resident on `d` because `p` is a
    // collective whose ring included `d` (all-reduce leaves the reduced
    // tensor on every participant).
    let collective_local = |p: OpId, d: DeviceId, placement: &Placement| -> bool {
        graph.op_ref(p).collective.is_some()
            && graph.in_edges(p).any(|e| placement.device_of(e.src) == d)
    };

    // Earliest start of `o` on `d` given already-placed predecessors.
    let ready_time = |o: OpId,
                      d: DeviceId,
                      ft: &[f64],
                      placement: &Placement,
                      chan: &std::collections::HashMap<(u32, u32), DeviceTimeline>,
                      xfer_done: &std::collections::HashMap<(OpId, DeviceId), f64>|
     -> f64 {
        if graph.op_ref(o).collective.is_some() {
            // The node starts once every producer has finished and the ring
            // has run — its in-edges are a collective, not P2P transfers.
            let mut last = 0.0f64;
            let mut parts: Vec<DeviceId> = Vec::new();
            let mut bytes = 0u64;
            for e in graph.in_edges(o) {
                debug_assert!(!ft[e.src.index()].is_nan(), "preds placed first");
                last = last.max(ft[e.src.index()]);
                bytes = bytes.max(e.bytes);
                let dp = placement.device_of(e.src);
                if !parts.contains(&dp) {
                    parts.push(dp);
                }
            }
            parts.sort_unstable();
            return last + collective_dur(&parts, bytes);
        }
        let mut ready = 0.0f64;
        for e in graph.in_edges(o) {
            let p = e.src;
            debug_assert!(!ft[p.index()].is_nan(), "preds placed first");
            let dp = placement.device_of(p);
            let arrive = if dp == d || collective_local(p, d, placement) {
                ft[p.index()]
            } else if let Some(&t) = xfer_done.get(&(p, d)) {
                t
            } else {
                let mut cursor = ft[p.index()];
                for &(a, b) in &topo.route(dp, d) {
                    let dur = hop_dur(a, b, e.bytes);
                    let start = chan
                        .get(&topo.channel_key(a, b))
                        .map(|t| t.earliest_slot(cursor, dur))
                        .unwrap_or(cursor);
                    cursor = start + dur;
                }
                cursor
            };
            ready = ready.max(arrive);
        }
        ready
    };

    // Commits the transfers implied by placing `o` on `d`: every hop of
    // every route reserves its channel. Collective in-edges reserve nothing
    // (the ring's cost is in the node's ready time; modelling its channel
    // occupancy is not worth the estimate's complexity).
    let commit_transfers =
        |o: OpId,
         d: DeviceId,
         ft: &[f64],
         placement: &Placement,
         chan: &mut std::collections::HashMap<(u32, u32), DeviceTimeline>,
         xfer_done: &mut std::collections::HashMap<(OpId, DeviceId), f64>| {
            if graph.op_ref(o).collective.is_some() {
                return;
            }
            for e in graph.in_edges(o) {
                let p = e.src;
                let dp = placement.device_of(p);
                if dp == d || collective_local(p, d, placement) || xfer_done.contains_key(&(p, d)) {
                    continue;
                }
                let mut cursor = ft[p.index()];
                for &(a, b) in &topo.route(dp, d) {
                    let dur = hop_dur(a, b, e.bytes);
                    let tl = chan.entry(topo.channel_key(a, b)).or_default();
                    let start = tl.earliest_slot(cursor, dur);
                    tl.reserve(start, dur);
                    cursor = start + dur;
                }
                xfer_done.insert((p, d), cursor);
            }
        };

    while let Some(std::cmp::Reverse((_, o))) = ready.pop() {
        let name = &graph.op_ref(o).name;
        let need = hw.planning_bytes(graph.op_ref(o));

        // Candidate devices.
        let candidates: Vec<DeviceId> = if let Some(p) = fixed {
            vec![p.device_of(o)]
        } else if let Some(d) = forced[o.index()] {
            vec![d]
        } else if flags.cp_grouping && on_cp[o.index()] {
            // refresh the CP device if this op no longer fits on it
            let cap = topo.device(cp_device).mem_bytes;
            if mem_used[cp_device.index()] + need > cap {
                cp_remaining.retain(|&x| !placed[x.index()]);
                cp_device = select_cp_device(graph, topo, cost, hw, &cp_remaining, &mem_used);
            }
            vec![cp_device]
        } else {
            let fitting: Vec<DeviceId> = topo
                .gpu_ids()
                .filter(|d| mem_used[d.index()] + need <= topo.device(*d).mem_bytes)
                .collect();
            if fitting.is_empty() {
                // no device fits: fall back to the one with the most free
                // memory rather than failing the whole schedule
                vec![topo
                    .gpu_ids()
                    .max_by_key(|d| {
                        topo.device(*d)
                            .mem_bytes
                            .saturating_sub(mem_used[d.index()])
                    })
                    .expect("non-empty topology")]
            } else {
                fitting
            }
        };

        // Min-EFT selection with idle-slot insertion. The phase covers the
        // whole candidate scan, including each device's idle-gap search
        // (`earliest_slot`) and predecessor-transfer timing (`ready_time`).
        let _scan_phase = col.map(|c| c.phase("eft_scan"));
        let mut best_d = candidates[0];
        let mut best_est = f64::INFINITY;
        let mut best_eft = f64::INFINITY;
        let mut considered: Vec<Value> = Vec::new();
        for &d in &candidates {
            let w = cost.comp.get(name, d).unwrap_or(0.0);
            let ready = ready_time(o, d, &ft, &placement, &chan, &xfer_done);
            let est = if flags.insertion {
                timelines[d.index()].earliest_slot(ready, w)
            } else {
                ready.max(timelines[d.index()].horizon())
            };
            let eft = est + w;
            if col.is_some() {
                considered.push(jobj! { "device" => d.0 as u64, "eft" => eft });
            }
            if eft < best_eft {
                best_eft = eft;
                best_est = est;
                best_d = d;
            }
        }
        drop(_scan_phase);
        if let Some(col) = col {
            col.metrics().inc("dpos.ops_placed");
            col.emit(
                "dpos.place",
                jobj! {
                    "op" => name.as_str(),
                    "device" => best_d.0 as u64,
                    "eft" => best_eft,
                    "on_cp" => on_cp[o.index()],
                    "considered" => Value::Arr(considered),
                },
            );
        }

        let _commit_phase = col.map(|c| c.phase("commit"));
        commit_transfers(o, best_d, &ft, &placement, &mut chan, &mut xfer_done);
        let w = cost.comp.get(name, best_d).unwrap_or(0.0);
        timelines[best_d.index()].reserve(best_est, w);
        st[o.index()] = best_est;
        ft[o.index()] = best_eft;
        placement.set(o, best_d);
        placed[o.index()] = true;
        mem_used[best_d.index()] += need;

        // Propagate the colocation constraint to unplaced group members.
        if let Some(grp) = graph.colocation_group(o) {
            for &m in grp {
                if !placed[m.index()] {
                    forced[m.index()] = Some(best_d);
                }
            }
        }

        // Release successors whose predecessors are now all placed.
        for s in graph.succs(o) {
            unplaced_preds[s.index()] -= 1;
            if unplaced_preds[s.index()] == 0 {
                ready.push(std::cmp::Reverse((prio[s.index()], s)));
            }
        }
    }
    debug_assert!(placed.iter().all(|&b| b), "all ops placed");

    // Execution order: ascending start time, rank-descending tiebreak.
    let mut order: Vec<OpId> = graph.op_ids().collect();
    order.sort_by(|a, b| {
        st[a.index()]
            .total_cmp(&st[b.index()])
            .then(ranks[b.index()].total_cmp(&ranks[a.index()]))
            .then(a.cmp(b))
    });

    let est_finish = ft.iter().copied().fold(0.0f64, f64::max);

    Schedule {
        placement,
        order,
        est_finish,
        start_times: st,
        finish_times: ft,
        critical_path: cp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::DeviceId;
    use fastt_graph::{OpKind, Operation};

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    /// Two independent heavy chains feeding one sink; costs profiled on both
    /// devices; communication is cheap, so DPOS should parallelize across
    /// the two devices.
    fn two_chain_graph(cost: &mut CostModels) -> Graph {
        let mut g = Graph::new();
        let src = g.add_op(Operation::new("src", OpKind::Input, [1])).unwrap();
        let mut lasts = Vec::new();
        for c in 0..2 {
            let mut prev = src;
            for i in 0..3 {
                let o = g
                    .add_op(Operation::new(format!("c{c}_{i}"), OpKind::MatMul, [1]))
                    .unwrap();
                g.connect(prev, o).unwrap();
                prev = o;
                for d in [D0, D1] {
                    cost.comp.observe(&format!("c{c}_{i}"), d, 1.0);
                }
            }
            lasts.push(prev);
        }
        let sink = g.add_op(Operation::new("sink", OpKind::Loss, [1])).unwrap();
        for l in lasts {
            g.connect(l, sink).unwrap();
        }
        for d in [D0, D1] {
            cost.comp.observe("src", d, 0.001);
            cost.comp.observe("sink", d, 0.001);
        }
        // fast profiled links both ways
        cost.comm.observe(D0, D1, 4, 0.01);
        cost.comm.observe(D1, D0, 4, 0.01);
        cost.comm.refit();
        g
    }

    #[test]
    fn parallelizes_independent_chains() {
        let mut cost = CostModels::new();
        let g = two_chain_graph(&mut cost);
        let topo = Topology::single_server(2);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        // both devices must be used
        assert_eq!(s.placement.devices_used().len(), 2);
        // the estimate must beat serial execution (6s) clearly
        assert!(s.est_finish < 4.5, "est_finish = {}", s.est_finish);
    }

    #[test]
    fn single_device_schedule_is_serial_sum() {
        let mut cost = CostModels::new();
        let g = two_chain_graph(&mut cost);
        let topo = Topology::single_server(1);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        assert!(
            (s.est_finish - 6.002).abs() < 1e-9,
            "est = {}",
            s.est_finish
        );
    }

    #[test]
    fn order_is_consistent_with_start_times() {
        let mut cost = CostModels::new();
        let g = two_chain_graph(&mut cost);
        let topo = Topology::single_server(2);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        for w in s.order.windows(2) {
            assert!(s.start_times[w[0].index()] <= s.start_times[w[1].index()] + 1e-12);
        }
    }

    #[test]
    fn colocation_respected() {
        let mut cost = CostModels::new();
        let mut g = Graph::new();
        let v = g
            .add_op(Operation::new("v", OpKind::Variable, [1]).with_param_bytes(4))
            .unwrap();
        let a = g.add_op(Operation::new("a", OpKind::MatMul, [1])).unwrap();
        let u = g
            .add_op(Operation::new("u", OpKind::ApplyGradient, [1]))
            .unwrap();
        g.connect(v, a).unwrap();
        g.connect(a, u).unwrap();
        g.connect(v, u).unwrap();
        g.colocate(&[v, u]);
        for d in [D0, D1] {
            for n in ["v", "a", "u"] {
                cost.comp.observe(n, d, 0.5);
            }
        }
        let topo = Topology::single_server(2);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        assert_eq!(s.placement.device_of(v), s.placement.device_of(u));
        s.placement.validate(&g, &topo).unwrap();
    }

    #[test]
    fn memory_pressure_spreads_ops() {
        // two huge variables cannot share one small device
        let mut cost = CostModels::new();
        let mut g = Graph::new();
        for i in 0..2 {
            g.add_op(
                Operation::new(format!("v{i}"), OpKind::Variable, [1]).with_param_bytes(10 << 30),
            )
            .unwrap();
            cost.comp.observe(&format!("v{i}"), D0, 0.001);
            cost.comp.observe(&format!("v{i}"), D1, 0.001);
        }
        let topo = Topology::single_server(2); // 15 GB per device; 40 GB needed per var pair
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        assert_ne!(
            s.placement.device_of(OpId(0)),
            s.placement.device_of(OpId(1)),
            "variables should spread under memory pressure"
        );
    }

    #[test]
    fn estimate_matches_simulation_closely() {
        // with perfect cost models, the DPOS estimate should be close to the
        // simulated makespan (modulo transfer-channel queueing)
        use fastt_sim::{simulate, ExecPolicy, SimConfig};
        let mut cost = CostModels::new();
        let g = two_chain_graph(&mut cost);
        let topo = Topology::single_server(2);
        let hw = HardwarePerf::new();
        let s = dpos(&g, &topo, &cost, &hw);
        // build a cost-model-faithful hardware? Here we check the *sim* runs
        // the schedule without deadlock and in bounded time instead.
        let cfg = SimConfig {
            iteration_overhead: 0.0,
            ..SimConfig::default()
        };
        let tr = simulate(
            &g,
            &topo,
            &s.placement,
            &hw,
            ExecPolicy::Priority(&s.order),
            &cfg,
        )
        .unwrap();
        assert!(tr.makespan > 0.0);
    }

    #[test]
    fn empty_cost_model_still_produces_valid_placement() {
        let cost = CostModels::new();
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        g.connect(a, b).unwrap();
        let topo = Topology::single_server(4);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        s.placement.validate(&g, &topo).unwrap();
        assert_eq!(s.est_finish, 0.0);
    }

    /// An unprofiled cross-server link must not beat a profiled local one.
    /// Before the pessimistic fallback, a missing communication fit counted
    /// as a free transfer, so min-EFT happily shipped a 100 MB tensor to the
    /// other server "for free" instead of paying a profiled 2 ms NVLink hop.
    #[test]
    fn unprofiled_cross_server_edge_does_not_win_eft() {
        let topo = Topology::multi_server(2, 2); // GPUs 0..4, hosts 4 and 5
        let mut cost = CostModels::new(); // deliberately unbound: no priors
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        g.connect_bytes(a, b, 100_000_000).unwrap();
        // pin `a` to device 0 by making it expensive elsewhere
        cost.comp.observe("a", D0, 1e-6);
        for d in [D1, DeviceId(2), DeviceId(3)] {
            cost.comp.observe("a", d, 5.0);
        }
        // `b` is slow at home, fast everywhere else
        cost.comp.observe("b", D0, 10.0);
        for d in [D1, DeviceId(2), DeviceId(3)] {
            cost.comp.observe("b", d, 1.0);
        }
        // only the intra-server NVLink pair is profiled: 2 ms for 100 MB
        cost.comm.observe(D0, D1, 100_000_000, 2e-3);
        cost.comm.refit();
        // plain min-EFT (no CP grouping, which would colocate the chain)
        let flags = DposFlags {
            insertion: true,
            cp_grouping: false,
        };
        let s = dpos_with(&g, &topo, &cost, &HardwarePerf::new(), flags);
        // the profiled 2 ms hop to device 1 beats the analytic ~26 ms
        // staged route (PCIe + RDMA + PCIe) to either cross-server device
        assert_eq!(s.placement.device_of(a), D0);
        assert_eq!(s.placement.device_of(b), D1);
    }
}
