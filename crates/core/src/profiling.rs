//! Standalone cost-model bootstrapping, outside a training session.
//!
//! The [`TrainingSession`](crate::TrainingSession) bootstraps its cost models
//! by profiling its start strategy. Tools that need cost models for an
//! arbitrary graph without running the full workflow (the GDP comparator,
//! benches, analysis scripts) use [`bootstrap_cost_models`]: one profiled
//! run per GPU (covering every op on every device) plus one round-robin run
//! (covering the communication channels).

use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// Profiles `graph` on `topo` and returns freshly fitted cost models.
///
/// Runs `gpu_count + 1` simulated iterations: one with everything on each
/// GPU in turn, then one round-robin placement so every channel carries
/// traffic for the communication regression. Placements that do not fit in
/// memory are skipped (their devices stay unprofiled, which the algorithms
/// treat as zero-cost exploration targets, Sec. 4 of the paper).
pub fn bootstrap_cost_models(graph: &Graph, topo: &Topology, hw: &HardwarePerf) -> CostModels {
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(graph.op_count(), d);
        if let Ok(tr) = simulate(graph, topo, &p, hw, ExecPolicy::Fifo, &SimConfig::default()) {
            cost.update_from_trace(graph, &tr);
        }
    }
    // Round-robin over colocation units (a unit = a colocation group or a
    // single op) so the probe placement never violates constraints.
    let n = topo.gpu_count();
    let mut p = Placement::uniform(graph.op_count(), DeviceId(0));
    let mut unit = 0usize;
    let mut assigned = vec![false; graph.op_count()];
    for op in graph.op_ids() {
        if assigned[op.index()] {
            continue;
        }
        let d = DeviceId((unit % n) as u16);
        unit += 1;
        match graph.colocation_group(op) {
            Some(grp) => {
                for &m in grp {
                    p.set(m, d);
                    assigned[m.index()] = true;
                }
            }
            None => {
                p.set(op, d);
                assigned[op.index()] = true;
            }
        }
    }
    if let Ok(tr) = simulate(graph, topo, &p, hw, ExecPolicy::Fifo, &SimConfig::default()) {
        cost.update_from_trace(graph, &tr);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_models::Model;

    #[test]
    fn covers_every_op_on_every_gpu() {
        let g = Model::LeNet.training_graph(8);
        let topo = Topology::single_server(3);
        let cost = bootstrap_cost_models(&g, &topo, &HardwarePerf::new());
        for (_, op) in g.iter_ops() {
            for d in topo.gpu_ids() {
                assert!(
                    cost.comp.get(&op.name, d).is_some(),
                    "`{}` unprofiled on {d}",
                    op.name
                );
            }
        }
    }

    #[test]
    fn fits_at_least_one_comm_pair() {
        let g = Model::LeNet.training_graph(8);
        let topo = Topology::single_server(2);
        let cost = bootstrap_cost_models(&g, &topo, &HardwarePerf::new());
        assert!(cost.comm.pair_count() >= 1);
    }

    #[test]
    fn oversized_graphs_do_not_panic() {
        // A graph too big for a single GPU: single-device profiling runs
        // OOM and are skipped, but the function still returns.
        let g = Model::BertLarge.training_graph(48);
        let topo = Topology::single_server(2);
        let cost = bootstrap_cost_models(&g, &topo, &HardwarePerf::new());
        // round-robin may or may not fit; either way we get a model back
        let _ = cost.comm.pair_count();
    }
}
