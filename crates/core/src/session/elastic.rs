//! The capacity lifecycle: spot revocations and drains, quarantine-gated
//! re-admission, hot-adds, link restores, the promotion ladder — and the
//! fleet manager's explicit grant/preempt entry points, which reuse the
//! same ladders over the session's allocation.

use super::{replicas_of, LadderRung, RecoveryEvent, TrainingSession};
use crate::error::FastTError;
use crate::planner::PlannerKind;
use fastt_cluster::{DeviceHealth, DeviceId};
use fastt_sim::{FaultSchedule, LifecycleKind};
use fastt_telemetry::jobj;

impl TrainingSession {
    /// Applies every scripted lifecycle event that has come due — spot
    /// revocations (drained proactively when the notice window allows),
    /// device and host arrivals, link restores — then finishes any
    /// quarantines whose probation expired, then attempts a promotion when
    /// capacity grew. Called at the top of every iteration; a session
    /// without a fault schedule is untouched (bit-identical to pre-elastic
    /// builds).
    pub(super) fn process_lifecycle(&mut self) -> Result<(), FastTError> {
        let Some(faults) = self.config.faults.clone() else {
            return Ok(());
        };
        let iteration = self.iteration;
        let events = faults.lifecycle();
        if self.lifecycle_processed.len() < events.len() {
            self.lifecycle_processed.resize(events.len(), false);
        }
        let mut due: Vec<usize> = (0..events.len())
            .filter(|&i| !self.lifecycle_processed[i] && events[i].at_iter <= iteration)
            .collect();
        due.sort_by_key(|&i| (events[i].at_iter, i));
        for i in due {
            self.lifecycle_processed[i] = true;
            match events[i].kind {
                LifecycleKind::SpotRevocation { device, .. } => {
                    self.handle_revocation(device, events[i].deadline())?;
                }
                LifecycleKind::DeviceArrival { device }
                | LifecycleKind::DeviceRestore { device } => {
                    self.handle_arrival(device);
                }
                LifecycleKind::HostArrival { gpus } => {
                    self.handle_host_arrival(gpus);
                }
                LifecycleKind::LinkRestore { src, dst } => {
                    self.handle_link_restore(src, dst);
                }
            }
        }
        let mut ready: Vec<(u64, DeviceId)> = Vec::new();
        self.pending_restores.retain(|&(at, d)| {
            if at <= iteration {
                ready.push((at, d));
                false
            } else {
                true
            }
        });
        ready.sort();
        for (_, d) in ready {
            if self.finish_quarantine(d, &faults) {
                self.pending_promotion = true;
            }
        }
        if self.pending_promotion {
            self.try_promote()?;
        }
        Ok(())
    }

    /// A spot-revocation notice: log it, and when the notice window leaves
    /// room, drain the device *now* — blacklist it and re-plan over the
    /// survivors so the deadline passes without a crash (and without a
    /// single retry for that device). Zero-notice revocations take the
    /// ordinary crash-recovery path instead.
    fn handle_revocation(&mut self, device: DeviceId, deadline: u64) -> Result<(), FastTError> {
        let iteration = self.iteration;
        self.recovery_log.push(RecoveryEvent::RevocationNotice {
            device,
            iteration,
            deadline,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.revocation_notices");
        }
        self.emit(
            "session.revocation_notice",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "deadline" => deadline,
            },
        );
        if deadline <= iteration || self.alloc.topo().is_failed(device) {
            return Ok(());
        }
        self.alloc.topo_mut().fail_device(device);
        self.alloc.health_mut().mark_failed(device);
        self.cost.bind_topology(self.alloc.topo());
        self.recovery_log
            .push(RecoveryEvent::Drained { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.drains");
        }
        self.emit(
            "session.drained",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "deadline" => deadline,
            },
        );
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "revocation_drain")
    }

    /// A device (re-)announced itself. Re-admission is explicit: the
    /// device enters quarantine (`Failed` → `Quarantined` in the
    /// [`fastt_cluster::HealthMap`]) and only rejoins the plannable
    /// capacity after `quarantine_iters` iterations of probation. Arrivals
    /// for devices outside the session's allocation are ignored — under a
    /// fleet manager they belong to some other job.
    fn handle_arrival(&mut self, device: DeviceId) {
        let iteration = self.iteration;
        if device.index() >= self.alloc.topo().device_count()
            || !self.alloc.contains(device)
            || !self.alloc.topo().is_failed(device)
        {
            return; // unknown id, not ours, or already live: nothing to do
        }
        self.alloc.health_mut().readmit(device);
        self.recovery_log
            .push(RecoveryEvent::Readmitted { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.quarantines");
        }
        self.emit(
            "session.quarantine",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "until" => iteration + self.config.quarantine_iters,
            },
        );
        self.pending_restores
            .push((iteration + self.config.quarantine_iters, device));
    }

    /// Ends a device's quarantine. Unless it died again or its server is
    /// partitioned mid-probation (in which case the re-admission is
    /// dropped and a fresh arrival must restart the path), the device
    /// rejoins the topology on probation (`Degraded`); the ordinary
    /// health sweep promotes it to `Healthy` once measurements normalize.
    /// Returns whether capacity actually grew.
    fn finish_quarantine(&mut self, device: DeviceId, faults: &FaultSchedule) -> bool {
        let iteration = self.iteration;
        if !matches!(
            self.alloc.health().health(device),
            DeviceHealth::Quarantined
        ) || faults.crashed(device, iteration)
            || faults.is_partitioned(self.alloc.topo().server_of(device), iteration)
        {
            return false;
        }
        self.alloc.topo_mut().restore_device(device);
        self.alloc.health_mut().mark_degraded(device, 1.0);
        self.cost.bind_topology(self.alloc.topo());
        self.recovery_log
            .push(RecoveryEvent::Restored { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.scale_ups");
        }
        self.emit(
            "session.scaled_up",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "gpus" => self.alloc.topo().gpu_count() as u64,
            },
        );
        true
    }

    /// A whole new server hot-added: fresh GPUs and a host join under
    /// stable new ids, healthy from the start — they have no failure
    /// history to quarantine. The new GPUs become allocation members.
    fn handle_host_arrival(&mut self, gpus: u16) {
        let iteration = self.iteration;
        let new_ids = self.alloc.topo_mut().add_server(gpus);
        let grown = self.alloc.topo().device_count();
        self.alloc.health_mut().grow(grown);
        self.cost.bind_topology(self.alloc.topo());
        if let Some(col) = &self.collector {
            col.metrics().inc("session.scale_ups");
        }
        for d in new_ids {
            if !self.alloc.topo().is_host(d) {
                self.alloc.grant(d);
            }
            self.recovery_log.push(RecoveryEvent::Restored {
                device: d,
                iteration,
            });
            self.emit(
                "session.scaled_up",
                jobj! {
                    "device" => d.0 as u64,
                    "iteration" => iteration,
                    "gpus" => self.alloc.topo().gpu_count() as u64,
                },
            );
        }
        self.pending_promotion = true;
    }

    /// A physical link came back: clear both directions of the blacklist,
    /// re-admit the hop in the health map, and re-trust its cost prior so
    /// planners route over it again.
    fn handle_link_restore(&mut self, src: DeviceId, dst: DeviceId) {
        let iteration = self.iteration;
        for (a, b) in [(src, dst), (dst, src)] {
            self.alloc.topo_mut().restore_link(a, b);
            self.alloc.health_mut().readmit_link(a, b);
            self.cost.trust_link(a, b);
        }
        self.cost.bind_topology(self.alloc.topo());
        self.emit(
            "session.link_restored",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        self.pending_promotion = true;
    }

    /// The promotion ladder (the growth mirror of
    /// [`Self::replan_and_degrade`]): re-plan over the enlarged survivor
    /// set and adopt the winner only when its probed **per-replica** time
    /// beats the incumbent's by the hysteresis margin. Per replica,
    /// because the session replicates the training graph once per live
    /// GPU — a plan over more GPUs does proportionally more work per
    /// iteration, so raw makespans are not comparable across replica
    /// counts. Hysteresis (a cooldown between attempts plus a minimum
    /// improvement) keeps spot churn from thrashing plans. Promotion is
    /// opportunistic: a planning dead end holds the incumbent instead of
    /// failing the iteration.
    pub(super) fn try_promote(&mut self) -> Result<(), FastTError> {
        let iteration = self.iteration;
        if let Some(last) = self.last_promotion_attempt {
            if iteration < last + self.config.promote_cooldown_iters {
                return Ok(()); // still cooling down; the attempt stays pending
            }
        }
        self.pending_promotion = false;
        self.last_promotion_attempt = Some(iteration);
        let probe = self.probe_config();
        let incumbent_raw = self
            .current
            .simulate(self.alloc.topo(), &self.hw, &probe)
            .map(|t| t.makespan)
            .unwrap_or(f64::INFINITY);
        let incumbent = incumbent_raw / replicas_of(&self.current) as f64;
        let survivors = self.alloc.topo().gpu_count();
        let (mut merged, _) = self.plan_candidates_over_survivors(probe);
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, c) in merged.iter().enumerate() {
            let (Some(m), Some(p)) = (c.simulated, c.plan.as_ref()) else {
                continue;
            };
            let score = m / replicas_of(p) as f64;
            if best.is_none_or(|(_, s, _)| score < s) {
                best = Some((i, score, m));
            }
        }
        let adopt =
            best.filter(|&(_, score, _)| score < incumbent * (1.0 - self.config.promote_margin));
        let Some((i, score, raw)) = adopt else {
            if let Some(col) = &self.collector {
                col.metrics().inc("session.promotions_held");
            }
            self.emit(
                "session.promotion_held",
                jobj! {
                    "iteration" => iteration,
                    "survivors" => survivors as u64,
                    "incumbent" => incumbent,
                    "candidate" => best.map(|(_, s, _)| s).unwrap_or(f64::INFINITY),
                    "margin" => self.config.promote_margin,
                },
            );
            return Ok(());
        };
        let c = &mut merged[i];
        let kind = match c.kind {
            PlannerKind::StartStrategy => c.planner,
            _ => "replan",
        };
        self.rung = LadderRung::of_kind(kind);
        self.current = c.plan.take().expect("probed plan");
        self.measured = raw;
        self.recovery_log.push(RecoveryEvent::Promoted {
            survivors,
            kind,
            iteration,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.promotions");
        }
        self.emit(
            "session.promoted",
            jobj! {
                "iteration" => iteration,
                "kind" => kind,
                "rung" => self.rung.label(),
                "survivors" => survivors as u64,
                "incumbent" => incumbent,
                "candidate" => score,
            },
        );
        Ok(())
    }

    /// Fleet preemption: revokes `devices` from the session's allocation —
    /// each is drained exactly like a spot revocation with notice
    /// ([`RecoveryEvent::Drained`]) — then re-plans over the survivors
    /// through the degradation ladder, so the job keeps a valid (if
    /// slower) plan and never strands a device it no longer owns.
    ///
    /// Devices that are not members are skipped; when nothing was revoked
    /// the session is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::ClusterExhausted`] when the revocation leaves
    /// no plannable GPU (the fleet manager must not revoke a job below one
    /// GPU), or a planning error if no ladder rung fits the survivors.
    pub fn release_devices(&mut self, devices: &[DeviceId]) -> Result<(), FastTError> {
        let iteration = self.iteration;
        let mut changed = false;
        for &d in devices {
            if !self.alloc.contains(d) {
                continue;
            }
            self.alloc.revoke(d);
            self.recovery_log.push(RecoveryEvent::Drained {
                device: d,
                iteration,
            });
            if let Some(col) = &self.collector {
                col.metrics().inc("session.drains");
            }
            self.emit(
                "session.drained",
                jobj! {
                    "device" => d.0 as u64,
                    "iteration" => iteration,
                    "deadline" => iteration,
                },
            );
            changed = true;
        }
        if !changed {
            return Ok(());
        }
        self.cost.bind_topology(self.alloc.topo());
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "preempted")
    }

    /// Fleet growth: grants `devices` to the session's allocation. This is
    /// an administrative reassignment, not a recovery — the devices are
    /// healthy, so they skip quarantine (the health map is walked through
    /// its ladder mechanically) — and the promotion attempt runs
    /// immediately, bypassing the spot-churn cooldown: an explicit grant
    /// is a deliberate scheduler decision, not churn.
    ///
    /// Devices already live in the allocation are skipped; when nothing
    /// was granted the session is untouched.
    ///
    /// # Errors
    ///
    /// Propagates planning failures from the promotion attempt (a held
    /// promotion is not an error — the incumbent plan stays active).
    pub fn grant_devices(&mut self, devices: &[DeviceId]) -> Result<(), FastTError> {
        let iteration = self.iteration;
        let mut changed = false;
        for &d in devices {
            if self.alloc.contains(d) && !self.alloc.topo().is_failed(d) {
                continue;
            }
            self.alloc.grant(d);
            // The health map only exits Failed through readmit; walk the
            // ladder to Healthy mechanically — reassignment, not recovery.
            if self.alloc.health().is_failed(d) {
                self.alloc.health_mut().readmit(d);
                self.alloc.health_mut().mark_degraded(d, 1.0);
                self.alloc.health_mut().mark_healthy(d);
            }
            self.recovery_log.push(RecoveryEvent::Restored {
                device: d,
                iteration,
            });
            if let Some(col) = &self.collector {
                col.metrics().inc("session.scale_ups");
            }
            self.emit(
                "session.scaled_up",
                jobj! {
                    "device" => d.0 as u64,
                    "iteration" => iteration,
                    "gpus" => self.alloc.topo().gpu_count() as u64,
                },
            );
            changed = true;
        }
        if !changed {
            return Ok(());
        }
        self.cost.bind_topology(self.alloc.topo());
        self.pending_promotion = true;
        self.last_promotion_attempt = None;
        self.try_promote()
    }
}
