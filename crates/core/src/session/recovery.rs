//! The failure-recovery ladder: blacklisting, stranded-capacity drops,
//! and graceful degradation (re-plan → ring all-reduce → PS funnel →
//! model parallelism), all scoped to the session's allocation view.

use super::{LadderRung, RecoveryEvent, TrainingSession};
use crate::error::FastTError;
use crate::planner::{
    CandidateOutcome, DataParallelPlanner, HierarchicalPlanner, ModelParallelPlanner, PlannerKind,
    Portfolio,
};
use crate::strategy::Plan;
use fastt_cluster::DeviceId;
use fastt_sim::{SimConfig, SimError};
use fastt_telemetry::{jobj, Value};

impl TrainingSession {
    /// Restores `previous` as the active plan after a measured regression —
    /// unless a device failed while the candidate was being measured, in
    /// which case `previous` may reference blacklisted devices and the
    /// recovery plan installed by [`Self::replan_and_degrade`] stays active.
    pub(super) fn roll_back_to(&mut self, previous: Plan) {
        let stale = previous
            .placement
            .devices_used()
            .iter()
            .any(|d| self.alloc.topo().is_failed(*d));
        if !stale {
            self.current = previous;
        }
    }

    /// Re-planning (tentpole (b)): blacklists `device`, then rebuilds the
    /// plan over the surviving topology.
    pub(super) fn recover_from_failure(
        &mut self,
        device: DeviceId,
        iteration: u64,
    ) -> Result<(), FastTError> {
        self.alloc.topo_mut().fail_device(device);
        // Routes change when a device (especially a host) dies: rebind so
        // route-composed predictions stop staging through the corpse.
        self.cost.bind_topology(self.alloc.topo());
        self.alloc.health_mut().mark_failed(device);
        self.recovery_log
            .push(RecoveryEvent::DeviceFailed { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.device_failures");
        }
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "device_failed")
    }

    /// Re-planning for link death: a hop that flapped past the simulator's
    /// retry budget is blacklisted in both directions (the session treats a
    /// persistent flap exactly like a crashed device), GPUs the surviving
    /// wiring can no longer reach are dropped, and the plan is rebuilt —
    /// [`fastt_cluster::Topology::try_route`] steers the new plan's
    /// transfers around the corpse.
    pub(super) fn recover_from_link_failure(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        iteration: u64,
    ) -> Result<(), FastTError> {
        self.alloc.topo_mut().fail_link(src, dst);
        self.alloc.topo_mut().fail_link(dst, src);
        self.alloc.health_mut().mark_link_failed(src, dst);
        self.alloc.health_mut().mark_link_failed(dst, src);
        // Routes change when a link dies: rebind so route-composed
        // predictions price the detour, not the dead hop.
        self.cost.bind_topology(self.alloc.topo());
        self.recovery_log.push(RecoveryEvent::LinkFailed {
            src,
            dst,
            iteration,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.link_failures");
        }
        self.emit(
            "health.link_failed",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        self.drop_stranded_gpus(iteration);
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "link_failed")
    }

    /// Re-planning for a host partition: from the survivors' point of view
    /// a partitioned server is indistinguishable from a crashed rack, so
    /// every device it hosts is blacklisted and the plan is rebuilt over
    /// the remaining servers.
    pub(super) fn recover_from_partition(
        &mut self,
        server: u16,
        iteration: u64,
    ) -> Result<(), FastTError> {
        self.recovery_log
            .push(RecoveryEvent::Partitioned { server, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.partitions");
        }
        self.emit(
            "session.partition",
            jobj! {
                "server" => server as u64,
                "iteration" => iteration,
            },
        );
        let victims: Vec<DeviceId> = self
            .alloc
            .topo()
            .device_ids()
            .filter(|&d| {
                self.alloc.topo().server_of(d) == server && !self.alloc.topo().is_failed(d)
            })
            .collect();
        for d in victims {
            self.alloc.topo_mut().fail_device(d);
            self.alloc.health_mut().mark_failed(d);
            self.recovery_log.push(RecoveryEvent::DeviceFailed {
                device: d,
                iteration,
            });
        }
        self.cost.bind_topology(self.alloc.topo());
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "partition")
    }

    /// Re-planning when no live route exists between two placed devices:
    /// drops whatever the surviving wiring stranded (keeping the largest
    /// mutually-reachable GPU component) and re-plans; surfaces
    /// [`FastTError::ClusterExhausted`] when nothing plannable remains.
    pub(super) fn recover_from_unreachable(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
    ) -> Result<(), FastTError> {
        let iteration = self.iteration;
        self.emit(
            "session.unreachable",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        let dropped = self.drop_stranded_gpus(iteration);
        if dropped.is_empty() {
            // The unroutable endpoint is not a stranded GPU (e.g. a host
            // the plan still stages variables through): blacklist the
            // destination so the next plan routes around it.
            let victim = if self.alloc.topo().is_failed(dst) {
                src
            } else {
                dst
            };
            if self.alloc.topo().is_failed(victim) {
                return Err(FastTError::ClusterExhausted);
            }
            self.alloc.topo_mut().fail_device(victim);
            self.alloc.health_mut().mark_failed(victim);
            self.recovery_log.push(RecoveryEvent::DeviceFailed {
                device: victim,
                iteration,
            });
            self.cost.bind_topology(self.alloc.topo());
        }
        if self.alloc.topo().gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "unreachable")
    }

    /// Blacklists every live GPU outside the largest mutually-reachable
    /// component (ties go to the component holding the lowest device id) —
    /// after link failures or partitions, stranded GPUs cannot participate
    /// in any plan. Returns the devices dropped, in id order.
    pub(super) fn drop_stranded_gpus(&mut self, iteration: u64) -> Vec<DeviceId> {
        let gpus: Vec<DeviceId> = self.alloc.topo().gpu_ids().collect();
        let n = gpus.len();
        let mut comp = vec![usize::MAX; n];
        let mut comps = 0usize;
        for i in 0..n {
            if comp[i] != usize::MAX {
                continue;
            }
            comp[i] = comps;
            let mut stack = vec![i];
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if comp[v] == usize::MAX
                        && self.alloc.topo().try_route(gpus[u], gpus[v]).is_some()
                        && self.alloc.topo().try_route(gpus[v], gpus[u]).is_some()
                    {
                        comp[v] = comps;
                        stack.push(v);
                    }
                }
            }
            comps += 1;
        }
        if comps <= 1 {
            return Vec::new();
        }
        let mut sizes = vec![0usize; comps];
        for &c in &comp {
            sizes[c] += 1;
        }
        // Largest component wins; ties go to the earliest component, which
        // holds the lowest GPU id since `gpus` is id-ordered.
        let keep = (0..comps)
            .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
            .unwrap_or(0);
        let mut dropped = Vec::new();
        for (i, d) in gpus.iter().enumerate() {
            if comp[i] != keep {
                self.alloc.topo_mut().fail_device(*d);
                self.alloc.health_mut().mark_failed(*d);
                self.recovery_log.push(RecoveryEvent::DeviceFailed {
                    device: *d,
                    iteration,
                });
                dropped.push(*d);
            }
        }
        if !dropped.is_empty() {
            self.cost.bind_topology(self.alloc.topo());
            self.emit(
                "session.stranded",
                jobj! {
                    "iteration" => iteration,
                    "dropped" => Value::arr(
                        dropped.iter().map(|d| d.0 as u64).collect::<Vec<_>>()
                    ),
                },
            );
        }
        dropped
    }

    /// Graceful degradation (tentpole (d)): recomputes a planner candidate
    /// over the current (possibly shrunken) topology, probes it against the
    /// start-strategy fallbacks — data parallelism when it still fits, else
    /// model parallelism (a single-device plan in the 1-GPU limit) — and
    /// adopts whichever *measures* fastest; choosing a fallback over the
    /// candidate is the rollback the tentpole requires. Arbitration over
    /// the merged set keeps the ladder's preference order — re-plan, then
    /// ring all-reduce over the survivors, then the PS funnel, then model
    /// parallelism — by strict lowest-probed-time with ties to the earlier
    /// candidate.
    pub(super) fn replan_and_degrade(
        &mut self,
        iteration: u64,
        reason: &'static str,
    ) -> Result<(), FastTError> {
        let survivors = self.alloc.topo().gpu_count();
        self.emit(
            "session.replan",
            jobj! {
                "iteration" => iteration,
                "reason" => reason,
                "survivors" => survivors as u64,
                "failed" => Value::arr(
                    self.alloc
                        .topo()
                        .failed_devices()
                        .iter()
                        .map(|d| d.0 as u64)
                        .collect::<Vec<_>>()
                ),
            },
        );
        if let Some(col) = &self.collector {
            col.metrics().inc("session.replans");
        }

        let probe = self.probe_config();
        let (mut merged, last_err) = self.plan_candidates_over_survivors(probe);
        let mut best: Option<usize> = None;
        for (i, c) in merged.iter().enumerate() {
            if let Some(m) = c.simulated {
                let better = match best {
                    Some(b) => m < merged[b].simulated.unwrap_or(f64::INFINITY),
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let (plan, kind, probe_measured) = match best {
            Some(i) => {
                let c = &mut merged[i];
                let kind = match c.kind {
                    PlannerKind::StartStrategy => c.planner,
                    _ => "replan",
                };
                (
                    c.plan.take().expect("probed plan"),
                    kind,
                    c.simulated.expect("probed time"),
                )
            }
            None => {
                // A plan that cannot be routed at all is not a planning
                // failure to retry — the cluster is out of usable wiring.
                return Err(match last_err {
                    Some(FastTError::Sim(SimError::Unreachable { .. })) => {
                        FastTError::ClusterExhausted
                    }
                    Some(e) => e,
                    None => FastTError::ClusterExhausted,
                });
            }
        };
        if kind != "replan" {
            if let Some(col) = &self.collector {
                col.metrics().inc("session.fallbacks");
                col.metrics().inc("session.degraded_mode");
            }
            self.emit(
                "session.fallback",
                jobj! {
                    "iteration" => iteration,
                    "kind" => kind,
                    "reason" => reason,
                    "measured" => probe_measured,
                },
            );
            // The ladder stepped below a fresh DPOS/OS-DPOS plan: the
            // session is in a degraded operating mode (shrunk ring, PS
            // funnel, or single-server fallback).
            self.emit(
                "session.degraded_mode",
                jobj! {
                    "iteration" => iteration,
                    "mode" => kind,
                    "reason" => reason,
                    "survivors" => survivors as u64,
                },
            );
            self.recovery_log.push(RecoveryEvent::Fallback { kind });
        }
        self.recovery_log
            .push(RecoveryEvent::Replanned { survivors, kind });
        self.rung = LadderRung::of_kind(kind);
        self.current = plan;
        self.measured = probe_measured;
        if let Some(col) = &self.collector {
            col.metrics().inc("session.recoveries");
        }
        self.emit(
            "session.recovered",
            jobj! {
                "iteration" => iteration,
                "kind" => kind,
                "survivors" => survivors as u64,
                "measured" => probe_measured,
            },
        );
        self.recovery_log
            .push(RecoveryEvent::Recovered { iteration });
        Ok(())
    }

    /// Plans the full candidate ladder over the current survivor set.
    /// Stage 1 probes both data-parallel modes — the ring all-reduce over
    /// whoever is live and the PS funnel — whose feasibility picks the
    /// base graph exactly as session construction does (Sec. 5.2's rule).
    /// Stage 2 adds the fresh DPOS/OS-DPOS candidate, plus model
    /// parallelism as the last resort when DP no longer fits. Returns the
    /// merged candidates in ladder-preference order (re-plan, ring, PS,
    /// MP) along with the last non-DP planning error.
    pub(super) fn plan_candidates_over_survivors(
        &mut self,
        probe: SimConfig,
    ) -> (Vec<CandidateOutcome>, Option<FastTError>) {
        let dp_portfolio = Portfolio::new()
            .with(Box::new(DataParallelPlanner::all_reduce()))
            .with(Box::new(DataParallelPlanner::default()));
        let mut dp_outcome = self.run_portfolio(&dp_portfolio, Some(probe.clone()));
        let ps_out = dp_outcome.candidates.pop().expect("portfolio of two");
        let ar_out = dp_outcome.candidates.pop().expect("portfolio of two");
        let dp_ok = ar_out.simulated.is_some() || ps_out.simulated.is_some();
        self.base_graph = [&ar_out, &ps_out]
            .iter()
            .find(|c| c.simulated.is_some())
            .and_then(|c| c.plan.as_ref())
            .map(|p| p.graph.clone())
            .unwrap_or_else(|| self.training_graph.clone());

        let mut portfolio = Portfolio::new().with(self.main_planner());
        // The hierarchical planner re-plans over survivors too: its region
        // tree is structure-keyed, so after a failure it reuses the
        // decomposition (and any cached region sub-plans) and only re-runs
        // the cheap quotient pass over the shrunken topology.
        portfolio.push(Box::new(HierarchicalPlanner::default()));
        if !dp_ok {
            portfolio.push(Box::new(ModelParallelPlanner));
        }
        let mut outcome = self.run_portfolio(&portfolio, Some(probe));
        self.adopt_candidate_cost(&mut outcome);
        let mut merged: Vec<CandidateOutcome> = Vec::with_capacity(4);
        let mut rest = outcome.candidates.drain(..);
        merged.push(rest.next().expect("main candidate"));
        merged.push(ar_out);
        merged.push(ps_out);
        merged.extend(rest);

        let mut last_err: Option<FastTError> = None;
        for c in merged.iter_mut() {
            // dp probe failures are expected (that is what mp is for) and
            // were never reported by the pre-portfolio recovery loop
            if !c.planner.starts_with("data_parallel") {
                if let Some(e) = c.error.take() {
                    last_err = Some(e);
                }
            }
        }
        (merged, last_err)
    }
}
