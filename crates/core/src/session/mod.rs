//! The training-session workflow (Sec. 4 of the paper).
//!
//! FastT bootstraps by running the model under a start strategy (data
//! parallelism when the model fits on one GPU, model parallelism otherwise),
//! profiling each iteration to update the cost models, recomputing
//! strategies with DPOS / OS-DPOS, activating a new strategy when its
//! estimate beats the current measured time, and **rolling back** when the
//! measured per-iteration time under the new strategy is worse than before.
//! Pre-training ends when the cost models stabilize.
//!
//! A session does not own the cluster: it owns an [`Allocation`] — a
//! scoped view of a (possibly shared) topology — plus an [`Arc`]-shared
//! [`PlanCache`], so a fleet manager can run many sessions over one
//! physical cluster ([`TrainingSession::with_allocation`]) while
//! single-job sessions keep the classic whole-cluster behaviour
//! ([`TrainingSession::new`]). The workflow is split across submodules:
//! this file holds the profile → recompute → activate/rollback loop,
//! `recovery` the failure ladder, and `elastic` the capacity lifecycle
//! (spot churn, quarantine, promotion, fleet grants and preemptions).

mod elastic;
mod recovery;

use crate::error::FastTError;
use crate::planner::{
    DataParallelPlanner, DposPlanner, HierarchicalPlanner, ModelParallelPlanner, OrderOnlyPlanner,
    OsDposPlanner, PlanCache, Planner, PlannerKind, PlanningContext, Portfolio, PortfolioInputs,
    PortfolioOutcome,
};
use crate::strategy::Plan;
use fastt_cluster::{Allocation, DeviceHealth, DeviceId, HealthMap, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::{FaultSchedule, HardwarePerf, RunTrace, SimConfig, SimError};
use fastt_telemetry::{jobj, Collector, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Profiled iterations per bootstrap round.
    pub profile_iters: u32,
    /// Maximum bootstrap rounds before pre-training is forced to end.
    pub max_rounds: u32,
    /// Relative cost-model drift below which the models count as stable.
    pub stability_eps: f64,
    /// Simulated execution-time noise (matches real profiling variance).
    pub jitter_pct: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
    /// Enable OS-DPOS operation splitting (disable for the paper's
    /// "No split" ablation, Table 6).
    pub enable_split: bool,
    /// Enable order enforcement (disable for the paper's Fig. 2 baseline).
    pub enable_order: bool,
    /// Where the data-parallel start strategy keeps shared variables:
    /// `None` follows TF-slim (the CPU host when the topology has one);
    /// `Some(d)` pins the parameter server to device `d` (the convention
    /// for the non-slim NMT baselines is GPU 0).
    pub dp_ps: Option<DeviceId>,
    /// Scripted infrastructure faults injected into every simulated
    /// iteration (see [`FaultSchedule`]); `None` trains on a healthy
    /// cluster with behaviour bit-identical to a fault-free build.
    pub faults: Option<Arc<FaultSchedule>>,
    /// Transient-failure retries per iteration before the failing device is
    /// blacklisted and the session re-plans.
    pub max_transient_retries: u32,
    /// Base of the exponential retry backoff, in seconds: attempt `k`
    /// backs off `retry_backoff_base * 2^k`. Reported through
    /// `session.retry` telemetry (the simulated cluster does not actually
    /// sleep).
    pub retry_backoff_base: f64,
    /// Measured-over-predicted per-device duration ratio above which a
    /// device is flagged as degraded (`health.degraded`).
    pub degraded_slowdown: f64,
    /// Iterations a re-admitted device spends in quarantine before it
    /// rejoins the plannable capacity. Re-admission is explicit: a device
    /// that dies again mid-quarantine is dropped and a fresh arrival must
    /// restart the ladder — flapping devices are never auto-readmitted.
    pub quarantine_iters: u64,
    /// Minimum iterations between promotion attempts after capacity
    /// growth (hysteresis: keeps spot churn from thrashing plans).
    pub promote_cooldown_iters: u64,
    /// Relative per-replica improvement a growth candidate must show over
    /// the incumbent before it is promoted (hysteresis margin).
    pub promote_margin: f64,
    /// Salt folded into plan-cache fingerprints once the session's cost
    /// models have been fitted (generation > 0). Jobs sharing one
    /// [`PlanCache`] must use distinct salts so their independently
    /// fitted models never serve each other stale plans; generation-0
    /// plans (computed from content-identical priors) are shared
    /// salt-free, which is what makes admission an instant cache hit for
    /// a repeat model + allocation shape. 0 for session-local caches.
    pub cache_salt: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            profile_iters: 3,
            max_rounds: 6,
            stability_eps: 0.05,
            jitter_pct: 0.02,
            seed: 7,
            enable_split: true,
            enable_order: true,
            dp_ps: None,
            faults: None,
            max_transient_retries: 4,
            retry_backoff_base: 0.05,
            degraded_slowdown: 1.5,
            quarantine_iters: 2,
            promote_cooldown_iters: 3,
            promote_margin: 0.02,
            cache_salt: 0,
        }
    }
}

/// Where the session currently sits on the degradation/promotion ladder,
/// ordered worst to best: greedy model parallelism at the bottom, then
/// the parameter-server data-parallel funnel, then ring all-reduce data
/// parallelism over the survivors, then a fresh DPOS/OS-DPOS plan at the
/// top. Failure recovery can step the session down the ladder; the
/// promotion path climbs back up when revoked capacity returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Greedy model parallelism — the last-resort fallback.
    Mp,
    /// Parameter-server data parallelism (the funnel).
    PsDp,
    /// Ring all-reduce data parallelism over the survivors.
    RingDp,
    /// A fresh DPOS/OS-DPOS plan — the top rung.
    Replanned,
}

impl LadderRung {
    /// The rung a replan/fallback kind string lands on.
    fn of_kind(kind: &str) -> LadderRung {
        match kind {
            "data_parallel_allreduce" => LadderRung::RingDp,
            "data_parallel" => LadderRung::PsDp,
            "model_parallel" => LadderRung::Mp,
            _ => LadderRung::Replanned,
        }
    }

    /// Stable label used in telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Mp => "model_parallel",
            LadderRung::PsDp => "ps_data_parallel",
            LadderRung::RingDp => "ring_data_parallel",
            LadderRung::Replanned => "replanned",
        }
    }
}

/// One entry in the session's recovery log: a pure record of every
/// resilience decision, in the order taken. Deterministic — two sessions
/// with the same seed, config, and fault schedule produce identical logs.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A transient failure was retried (with exponential backoff).
    Retry {
        /// The hiccupping device.
        device: DeviceId,
        /// The iteration being attempted.
        iteration: u64,
        /// The failed attempt number (0-based).
        attempt: u32,
    },
    /// A device was blacklisted (crash, or transient failures past the
    /// retry budget).
    DeviceFailed {
        /// The blacklisted device.
        device: DeviceId,
        /// The iteration at which it was observed dead.
        iteration: u64,
    },
    /// A device was flagged as running slower than the cost models predict.
    Degraded {
        /// The straggling device.
        device: DeviceId,
        /// Measured-over-predicted duration ratio.
        slowdown: f64,
    },
    /// A link was flagged as running slower than the communication model
    /// predicts; its cost prior was re-seeded pessimistically.
    LinkDegraded {
        /// Source endpoint of the straggling directed hop.
        src: DeviceId,
        /// Destination endpoint of the straggling directed hop.
        dst: DeviceId,
        /// Measured-over-predicted transfer-time ratio.
        slowdown: f64,
    },
    /// A physical link was blacklisted (flaps past the simulator's retry
    /// budget, reported as [`fastt_sim::SimError::LinkDown`]).
    LinkFailed {
        /// Source endpoint of the dead hop.
        src: DeviceId,
        /// Destination endpoint of the dead hop.
        dst: DeviceId,
        /// The iteration at which it was observed down.
        iteration: u64,
    },
    /// A server partition was detected; every device it hosts was
    /// blacklisted (each with its own [`RecoveryEvent::DeviceFailed`]).
    Partitioned {
        /// The unreachable server.
        server: u16,
        /// The iteration at which the partition timed out.
        iteration: u64,
    },
    /// A recovery fell back to a start strategy (`"data_parallel"`,
    /// `"data_parallel_allreduce"`, or `"model_parallel"`) because the
    /// planner candidate was infeasible or slower.
    Fallback {
        /// Which fallback won.
        kind: &'static str,
    },
    /// The session adopted a new plan over the surviving topology.
    Replanned {
        /// Live GPUs at re-planning time.
        survivors: usize,
        /// `"replan"` (fresh DPOS/OS-DPOS candidate) or the fallback kind.
        kind: &'static str,
    },
    /// Recovery completed; training continues.
    Recovered {
        /// The iteration at which training resumed.
        iteration: u64,
    },
    /// A spot-revocation notice was received: the device dies at
    /// `deadline` unless it is drained first.
    RevocationNotice {
        /// The device being revoked.
        device: DeviceId,
        /// The iteration the notice was observed.
        iteration: u64,
        /// The iteration the device dies.
        deadline: u64,
    },
    /// A device under revocation notice — or preempted by the fleet
    /// manager — was proactively drained: blacklisted and re-planned
    /// around *before* death, so the deadline passes without any crash
    /// recovery (or retries) for it.
    Drained {
        /// The drained device.
        device: DeviceId,
        /// The iteration the drain happened.
        iteration: u64,
    },
    /// A previously failed device re-announced itself and entered
    /// quarantine (explicit re-admission — a flapping device is never
    /// auto-readmitted by a health signal alone).
    Readmitted {
        /// The quarantined device.
        device: DeviceId,
        /// The iteration re-admission was granted.
        iteration: u64,
    },
    /// A device finished quarantine (or arrived with a hot-added server,
    /// or was granted by the fleet manager) and rejoined the plannable
    /// capacity.
    Restored {
        /// The restored device.
        device: DeviceId,
        /// The iteration it rejoined.
        iteration: u64,
    },
    /// Growth re-planning beat the incumbent by the hysteresis margin:
    /// the session adopted the new plan and climbed the ladder.
    Promoted {
        /// Live GPUs at promotion time.
        survivors: usize,
        /// `"replan"` or the winning start-strategy kind.
        kind: &'static str,
        /// The iteration the promotion took effect.
        iteration: u64,
    },
}

/// What happened during pre-training (feeds the paper's Table 4 timing and
/// the speed numbers of Tables 1–2).
#[derive(Debug, Clone)]
pub struct PreTrainReport {
    /// Bootstrap rounds executed.
    pub rounds: u32,
    /// Wall-clock seconds spent inside DPOS / OS-DPOS (strategy
    /// calculation only, excluding profiling).
    pub strategy_calc_secs: f64,
    /// Strategy switches that survived measurement.
    pub activations: u32,
    /// Strategy switches that were rolled back.
    pub rollbacks: u32,
    /// Measured per-iteration time after pre-training.
    pub final_iter_time: f64,
    /// Measured per-iteration time after each round.
    pub history: Vec<f64>,
}

/// A FastT-managed training session over the simulated cluster.
#[derive(Debug)]
pub struct TrainingSession {
    /// The base graph strategies are computed from: the data-parallel
    /// replica graph when DP fits, otherwise the raw training graph
    /// (Sec. 5.2's input-graph rule). Rebuilt over the survivors after a
    /// device failure.
    base_graph: Graph,
    /// The raw (unreplicated) training graph, kept so re-planning after a
    /// failure can rebuild the base graph over a smaller cluster.
    training_graph: Graph,
    /// Whether the start strategy was data parallelism.
    started_dp: bool,
    /// The session's slice of the cluster: a scoped topology view plus the
    /// per-slice health map. A single-job session owns the whole cluster
    /// via [`Allocation::whole`]; fleet jobs get carved slices.
    alloc: Allocation,
    hw: HardwarePerf,
    config: SessionConfig,
    /// The adaptive cost models, learned from profiled iterations.
    pub cost: CostModels,
    current: Plan,
    measured: f64,
    iteration: u64,
    /// Every resilience decision taken, in order (see [`RecoveryEvent`]).
    recovery_log: Vec<RecoveryEvent>,
    collector: Option<Arc<Collector>>,
    /// Fingerprint-keyed memo of computed plans, shared by every portfolio
    /// evaluation the session runs — and, under a fleet manager, shared
    /// *across sessions* ([`PlanCache`] is interior-mutable behind the
    /// [`Arc`]).
    cache: Arc<PlanCache>,
    /// Which scripted lifecycle events have already been applied (indexed
    /// like the fault schedule's lifecycle list).
    lifecycle_processed: Vec<bool>,
    /// Readmitted devices waiting out quarantine: (restore-at, id).
    pending_restores: Vec<(u64, DeviceId)>,
    /// Capacity grew since the last promotion attempt.
    pending_promotion: bool,
    /// Iteration of the last promotion attempt (the cooldown anchor).
    last_promotion_attempt: Option<u64>,
    /// Current rung on the degradation/promotion ladder.
    rung: LadderRung,
}

/// How many data-parallel replicas a plan's graph encodes. DP graphs name
/// replica ops `repN/...`, so per-iteration work scales with the replica
/// count and raw makespans are only comparable *per replica* (see
/// [`TrainingSession::try_promote`]); non-replicated plans count as one.
fn replicas_of(plan: &Plan) -> usize {
    plan.graph
        .op_ids()
        .filter_map(|id| {
            let name = &plan.graph.op_ref(id).name;
            let rest = name.strip_prefix("rep")?;
            rest[..rest.find('/')?].parse::<usize>().ok()
        })
        .max()
        .map(|n| n + 1)
        .unwrap_or(1)
}

/// Whether a profiling error is specific to the plan being measured (so a
/// rollback to the previous plan can recover) rather than a cluster-wide
/// dead end that must propagate.
fn recoverable(e: &FastTError) -> bool {
    matches!(e, FastTError::Sim(_))
}

impl TrainingSession {
    /// Creates a session for a (unreplicated) training graph.
    ///
    /// Chooses the start strategy exactly as the paper does: replicate the
    /// model over all devices and start data-parallel if that fits in
    /// memory; otherwise fall back to greedy model parallelism on the raw
    /// graph (Sec. 4 / Sec. 5.2).
    ///
    /// Equivalent to [`TrainingSession::with_allocation`] over
    /// [`Allocation::whole`] with a private plan cache.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::NoFeasibleStart`] when neither start strategy
    /// fits in device memory.
    pub fn new(
        training_graph: &Graph,
        topo: Topology,
        hw: HardwarePerf,
        config: SessionConfig,
    ) -> Result<Self, FastTError> {
        let alloc = Allocation::whole(&topo);
        Self::with_allocation(
            training_graph,
            alloc,
            hw,
            config,
            Arc::new(PlanCache::default()),
            None,
        )
    }

    /// Creates a session scoped to an [`Allocation`] — the fleet entry
    /// point: the session plans, routes, and recovers strictly inside the
    /// slice, and memoizes plans in `cache`, which a fleet manager shares
    /// across jobs (an admission whose model + allocation shape was
    /// already planned by a sibling is an instant cache hit). A collector
    /// passed here traces the admission portfolio itself (`planner.*`
    /// events and the `planner.latency` series), which a collector
    /// attached after construction cannot.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::NoFeasibleStart`] when neither start strategy
    /// fits in the slice's device memory.
    pub fn with_allocation(
        training_graph: &Graph,
        alloc: Allocation,
        hw: HardwarePerf,
        config: SessionConfig,
        cache: Arc<PlanCache>,
        collector: Option<Arc<Collector>>,
    ) -> Result<Self, FastTError> {
        // Both start strategies are planned and probed as one portfolio
        // (concurrently), but selection is *first-feasible*, not
        // fastest-probe: the paper always starts data-parallel when the
        // replicated model fits, regardless of which probe looks quicker.
        // Bind the communication model to the slice up front: per-link-class
        // fits composed along physical routes, with link-spec priors so that
        // never-profiled links cost something pessimistic instead of zero.
        let mut cost = CostModels::new();
        cost.bind_topology(alloc.topo());
        let portfolio = Portfolio::new()
            .with(Box::new(DataParallelPlanner::default()))
            .with(Box::new(ModelParallelPlanner))
            // Raced alongside the start strategies: populates the shared
            // cache (whole-plan + region sub-plans) at admission and serves
            // as a region-granular packing fallback when both classical
            // start strategies are infeasible.
            .with(Box::new(HierarchicalPlanner::default()));
        let inputs = PortfolioInputs {
            graph: training_graph,
            raw: Some(training_graph),
            current: None,
            topo: alloc.topo(),
            hw: &hw,
            cost: &cost,
            collector: collector.clone(),
            enable_order: config.enable_order,
            dp_ps: config.dp_ps,
            cache_salt: config.cache_salt,
            probe: Some(SimConfig::default()),
        };
        let mut outcome = portfolio.evaluate(&inputs, Some(&cache));
        let mut hier_out = outcome.candidates.pop().expect("portfolio of three");
        let mut mp_out = outcome.candidates.pop().expect("portfolio of three");
        let mut dp_out = outcome.candidates.pop().expect("portfolio of three");
        let (start, started_dp) = if dp_out.simulated.is_some() {
            (dp_out.plan.take().expect("probed plan"), true)
        } else {
            // DP infeasible: only an OOM (the replicated model not fitting
            // in device memory) falls back to model parallelism; any other
            // failure propagates. When MP's probe also failed, a feasible
            // hierarchical plan is the last resort — its region-granular
            // packing can fit models the layer-cut heuristic cannot — and
            // counts as a non-DP start for ladder purposes.
            match dp_out.error.take() {
                Some(FastTError::Sim(dp_err @ SimError::Oom { .. })) => {
                    if mp_out.simulated.is_some() {
                        (mp_out.plan.take().expect("probed plan"), false)
                    } else if hier_out.simulated.is_some() {
                        (hier_out.plan.take().expect("probed plan"), false)
                    } else {
                        return Err(match mp_out.error.take() {
                            Some(FastTError::Sim(mp_err)) => FastTError::NoFeasibleStart {
                                dp: dp_err,
                                mp: mp_err,
                            },
                            Some(other) => other,
                            None => FastTError::ClusterExhausted,
                        });
                    }
                }
                Some(other) => return Err(other),
                None => return Err(FastTError::ClusterExhausted),
            }
        };
        // Sec. 5.2's input-graph rule: strategies are computed from the
        // replica graph when DP fits, else from the raw training graph —
        // both are exactly the winning start plan's graph.
        let base_graph = start.graph.clone();
        let lifecycle_processed = config
            .faults
            .as_ref()
            .map(|f| vec![false; f.lifecycle().len()])
            .unwrap_or_default();
        let rung = if started_dp {
            LadderRung::PsDp
        } else {
            LadderRung::Mp
        };
        let mut session = TrainingSession {
            base_graph,
            training_graph: training_graph.clone(),
            started_dp,
            alloc,
            hw,
            config,
            cost,
            current: start,
            measured: f64::INFINITY,
            iteration: 0,
            recovery_log: Vec::new(),
            collector: None,
            cache,
            lifecycle_processed,
            pending_restores: Vec::new(),
            pending_promotion: false,
            last_promotion_attempt: None,
            rung,
        };
        if let Some(col) = collector {
            session.attach_collector(col);
        }
        Ok(session)
    }

    /// Attaches a telemetry collector to the whole session: lifecycle
    /// events (`session.*`), scheduler decision traces (`dpos.*`),
    /// simulator summaries (`sim.*`), and cost-model accuracy (`cost.*`)
    /// all flow through it. Without a collector the session is untouched.
    pub fn attach_collector(&mut self, collector: Arc<Collector>) {
        self.cost.set_collector(collector.clone());
        collector.emit(
            "session.start",
            jobj! {
                "devices" => self.alloc.topo().device_count() as u64,
                "gpus" => self.alloc.topo().gpu_count() as u64,
                "ops" => self.base_graph.op_count() as u64,
                "started_dp" => self.started_dp,
                "est_finish" => self.current.est_finish,
            },
        );
        self.collector = Some(collector);
    }

    /// The attached telemetry collector, if any.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    fn emit(&self, kind: &str, fields: Value) {
        if let Some(col) = &self.collector {
            col.emit(kind, fields);
        }
    }

    /// The currently active plan.
    pub fn current_plan(&self) -> &Plan {
        &self.current
    }

    /// Whether the session's start strategy was data parallelism (false =
    /// the model was too large and model parallelism was used, Sec. 4).
    pub fn started_data_parallel(&self) -> bool {
        self.started_dp
    }

    /// Last measured average per-iteration time.
    pub fn measured_iter_time(&self) -> f64 {
        self.measured
    }

    /// The (possibly shrunken) topology view the session is training on —
    /// scoped to the session's allocation.
    pub fn topology(&self) -> &Topology {
        self.alloc.topo()
    }

    /// The session's allocation: granted members plus the scoped view.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// Observed per-device health, inferred from profiled traces (scoped
    /// to the session's slice).
    pub fn health(&self) -> &HealthMap {
        self.alloc.health()
    }

    /// Every resilience decision taken so far, in order. Deterministic:
    /// same seed + same fault schedule ⇒ identical log.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// Training iterations executed so far (profiled and unprofiled).
    pub fn iterations_run(&self) -> u64 {
        self.iteration
    }

    /// The session's current rung on the degradation/promotion ladder.
    pub fn ladder_rung(&self) -> LadderRung {
        self.rung
    }

    /// The simulation parameters for the current iteration. `attempt` only
    /// matters under injected profile-failure faults.
    fn sim_config(&self, attempt: u32) -> SimConfig {
        SimConfig {
            jitter_pct: self.config.jitter_pct,
            seed: self.config.seed,
            iteration: self.iteration,
            collector: self.collector.clone(),
            faults: self.config.faults.clone(),
            attempt,
            ..SimConfig::default()
        }
    }

    /// The probe configuration for plan arbitration: the current position
    /// with faults included (so an infeasible-under-current-faults plan
    /// loses the arbitration instead of failing after activation), but with
    /// `attempt = u32::MAX` to exempt probes from transient profile-failure
    /// windows — a probe is a planning query, not a profiling run, and
    /// recovery must not deadlock on them.
    fn probe_config(&self) -> SimConfig {
        self.sim_config(u32::MAX)
    }

    /// Order enforcement is a lever, not a mandate (Fig. 2): before
    /// measuring an order-bearing candidate, probe its enforced order
    /// against plain FIFO execution of the same placement and strip the
    /// order when it does not help. The priority list is derived from
    /// partially-profiled estimates, so a misordered list can serialize
    /// transfers the unordered executor would overlap — and rollback alone
    /// cannot catch that: the activation baseline is the *previous* plan's
    /// measured time, not the same placement without the order.
    fn arbitrate_order(&self, plan: &mut Plan) {
        if plan.order.is_none() {
            return;
        }
        let probe = self.probe_config();
        let ordered = match plan.simulate(self.alloc.topo(), &self.hw, &probe) {
            Ok(t) => t.makespan,
            Err(_) => return, // infeasibility is the activation loop's call
        };
        let order = plan.order.take();
        match plan.simulate(self.alloc.topo(), &self.hw, &probe) {
            Ok(t) if t.makespan < ordered => {
                if let Some(col) = &self.collector {
                    col.metrics().inc("session.orders_dropped");
                }
                self.emit(
                    "session.order_dropped",
                    jobj! {
                        "ordered" => ordered,
                        "fifo" => t.makespan,
                    },
                );
            }
            _ => plan.order = order,
        }
    }

    /// The session's main strategy calculator as a [`Planner`]: OS-DPOS
    /// when splitting is enabled (Alg. 2), plain DPOS otherwise (the
    /// "No split" ablation).
    fn main_planner(&self) -> Box<dyn Planner> {
        if self.config.enable_split {
            Box::new(OsDposPlanner::default())
        } else {
            Box::new(DposPlanner)
        }
    }

    /// Evaluates `portfolio` against the session's state (base graph, raw
    /// graph, current plan, live topology view, cost models, collector)
    /// through the session's shared [`PlanCache`].
    fn run_portfolio(&self, portfolio: &Portfolio, probe: Option<SimConfig>) -> PortfolioOutcome {
        let inputs = PortfolioInputs {
            graph: &self.base_graph,
            raw: Some(&self.training_graph),
            current: Some(&self.current),
            topo: self.alloc.topo(),
            hw: &self.hw,
            cost: &self.cost,
            collector: self.collector.clone(),
            enable_order: self.config.enable_order,
            dp_ps: self.config.dp_ps,
            cache_salt: self.config.cache_salt,
            probe,
        };
        portfolio.evaluate(&inputs, Some(&self.cache))
    }

    /// Adopts the cost-model clone mutated by the portfolio's *main*
    /// candidate (index 0 — always the DPOS/OS-DPOS planner in this
    /// session): OS-DPOS seeds analytic priors for fresh sub-operations,
    /// and those must persist in the session exactly as the old
    /// mutate-in-place API did. Cache-served candidates carry no clone —
    /// their seeds were adopted when the plan was first computed.
    fn adopt_candidate_cost(&mut self, outcome: &mut PortfolioOutcome) {
        if let Some(cost) = outcome.candidates[0].cost.take() {
            self.cost = cost;
        }
    }

    /// The session's plan cache (hit/miss counters included). Under a
    /// fleet manager this is the *shared* cache, so the counters aggregate
    /// across sibling jobs.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Runs one training iteration of the current plan, absorbing faults:
    /// transient failures are retried with exponential backoff, crashes and
    /// exhausted retry budgets blacklist the device and re-plan over the
    /// survivors, and memory-pressure OOM falls back to a cheaper plan.
    /// On success the iteration counter advances and (when `feed_cost`) the
    /// trace is fed to the cost models.
    fn run_iteration(&mut self, feed_cost: bool) -> Result<f64, FastTError> {
        self.process_lifecycle()?;
        let mut pressure_replans = 0u32;
        loop {
            let mut attempt = 0u32;
            let outcome = loop {
                let cfg = self.sim_config(attempt);
                match self.current.simulate(self.alloc.topo(), &self.hw, &cfg) {
                    Err(SimError::Transient {
                        device, iteration, ..
                    }) if attempt < self.config.max_transient_retries => {
                        let backoff =
                            self.config.retry_backoff_base * f64::powi(2.0, attempt as i32);
                        self.recovery_log.push(RecoveryEvent::Retry {
                            device,
                            iteration,
                            attempt,
                        });
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.retries");
                        }
                        self.emit(
                            "session.retry",
                            jobj! {
                                "device" => device.0 as u64,
                                "iteration" => iteration,
                                "attempt" => attempt as u64,
                                "backoff_secs" => backoff,
                            },
                        );
                        attempt += 1;
                    }
                    other => break other,
                }
            };
            match outcome {
                Ok(mut trace) => {
                    if feed_cost {
                        self.check_health(&trace);
                        self.check_link_health(&trace);
                        // Transfers over distrusted links would poison the
                        // healthy same-class fit; the pessimistic override
                        // already prices them.
                        trace
                            .transfers
                            .retain(|t| !self.cost.comm.is_distrusted(t.src_dev, t.dst_dev));
                        self.cost.update_from_trace(&self.current.graph, &trace);
                    }
                    self.iteration += 1;
                    return Ok(trace.makespan);
                }
                Err(SimError::Transient {
                    device,
                    iteration,
                    attempt,
                }) => {
                    // Retry budget spent: the hiccup is persistent enough to
                    // count as a failure — blacklist and re-plan. If that
                    // device was the last one, surface the retry story.
                    self.recover_from_failure(device, iteration)
                        .map_err(|e| match e {
                            FastTError::ClusterExhausted => FastTError::RetriesExhausted {
                                device,
                                attempts: attempt + 1,
                            },
                            other => other,
                        })?;
                }
                Err(SimError::DeviceCrash { device, iteration }) => {
                    self.recover_from_failure(device, iteration)?;
                }
                Err(SimError::LinkDown {
                    src,
                    dst,
                    iteration,
                }) => {
                    self.recover_from_link_failure(src, dst, iteration)?;
                }
                Err(SimError::PartitionTimeout { server, iteration }) => {
                    self.recover_from_partition(server, iteration)?;
                }
                Err(SimError::Unreachable { src, dst }) => {
                    self.recover_from_unreachable(src, dst)?;
                }
                Err(oom @ SimError::Oom { .. }) => {
                    // Under an injected memory-pressure spike, degrade to a
                    // plan that fits the reduced capacity (once per
                    // iteration); a genuine OOM propagates as before.
                    let device = match &oom {
                        SimError::Oom { device, .. } => *device,
                        _ => unreachable!(),
                    };
                    let under_pressure = self
                        .config
                        .faults
                        .as_ref()
                        .map(|f| f.mem_reserved(device, self.iteration) > 0)
                        .unwrap_or(false);
                    if under_pressure && pressure_replans == 0 {
                        pressure_replans += 1;
                        self.replan_and_degrade(self.iteration, "mem_pressure")?;
                    } else {
                        return Err(oom.into());
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Health detection (tentpole (a)): compares each device's measured op
    /// durations in `trace` against the cost models' *pre-update*
    /// predictions; a device running `degraded_slowdown`× slower than
    /// predicted is flagged (`health.degraded`), and unflagged once the
    /// ratio normalizes (the adaptive models absorb persistent slowdowns,
    /// so the flag marks the transition, not the steady state).
    fn check_health(&mut self, trace: &RunTrace) {
        let n = self.alloc.topo().device_count();
        let mut measured = vec![0.0f64; n];
        let mut predicted = vec![0.0f64; n];
        for r in &trace.op_records {
            if r.start < 0.0 || r.device.index() >= n {
                continue;
            }
            let name = &self.current.graph.op_ref(r.op).name;
            if let Some(p) = self.cost.comp.get(name, r.device) {
                measured[r.device.index()] += r.duration();
                predicted[r.device.index()] += p;
            }
        }
        for d in self.alloc.topo().gpu_ids().collect::<Vec<_>>() {
            let (m, p) = (measured[d.index()], predicted[d.index()]);
            if p <= 1e-12 {
                continue;
            }
            let ratio = m / p;
            let was_degraded =
                matches!(self.alloc.health().health(d), DeviceHealth::Degraded { .. });
            if ratio >= self.config.degraded_slowdown {
                if !was_degraded {
                    self.recovery_log.push(RecoveryEvent::Degraded {
                        device: d,
                        slowdown: ratio,
                    });
                    if let Some(col) = &self.collector {
                        col.metrics().inc("health.degraded");
                    }
                    self.emit(
                        "health.degraded",
                        jobj! {
                            "device" => d.0 as u64,
                            "iteration" => self.iteration,
                            "slowdown" => ratio,
                        },
                    );
                }
                self.alloc.health_mut().mark_degraded(d, ratio);
            } else if was_degraded {
                self.alloc.health_mut().mark_healthy(d);
                self.emit(
                    "health.restored",
                    jobj! {
                        "device" => d.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
            }
        }
    }

    /// Link-level health detection: aggregates each directed physical hop's
    /// measured transfer time in `trace` against the communication model's
    /// *pre-update* per-link-class predictions. A hop running
    /// `degraded_slowdown`× slower than predicted is flagged
    /// (`health.link_degraded`), marked degraded in the [`HealthMap`] and
    /// the topology's belief mask, and its cost prior re-seeded
    /// pessimistically ([`CostModels::distrust_link`]) so planners route
    /// around it — without the slow samples poisoning the healthy
    /// same-class fit (they are filtered before ingestion). A distrusted
    /// hop whose measurements drop back under the *inflated* prediction by
    /// the same margin is restored.
    ///
    /// Only engages when a fault schedule is configured: fault-free
    /// sessions stay bit-identical to pre-fault builds, and a healthy
    /// cluster's contention noise never trips the detector.
    fn check_link_health(&mut self, trace: &RunTrace) {
        if self.config.faults.is_none() {
            return;
        }
        let mut agg: BTreeMap<(DeviceId, DeviceId), (f64, f64)> = BTreeMap::new();
        for t in &trace.transfers {
            if t.src_dev == t.dst_dev {
                continue;
            }
            let Some(p) = self.cost.comm.predict(t.src_dev, t.dst_dev, t.bytes) else {
                continue;
            };
            if !p.is_finite() || p <= 1e-12 {
                continue;
            }
            let e = agg.entry((t.src_dev, t.dst_dev)).or_insert((0.0, 0.0));
            e.0 += t.duration();
            e.1 += p;
        }
        for ((src, dst), (m, p)) in agg {
            if self.alloc.health().is_link_failed(src, dst) {
                continue;
            }
            let ratio = m / p;
            let distrusted = self.cost.comm.is_distrusted(src, dst);
            if !distrusted && ratio >= self.config.degraded_slowdown {
                self.recovery_log.push(RecoveryEvent::LinkDegraded {
                    src,
                    dst,
                    slowdown: ratio,
                });
                if let Some(col) = &self.collector {
                    col.metrics().inc("health.link_degraded");
                }
                self.emit(
                    "health.link_degraded",
                    jobj! {
                        "src" => src.0 as u64,
                        "dst" => dst.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
                self.alloc.health_mut().mark_link_degraded(src, dst, ratio);
                self.alloc.topo_mut().degrade_link(src, dst, ratio);
                self.cost.distrust_link(src, dst, ratio);
            } else if distrusted && ratio <= 1.0 / self.config.degraded_slowdown {
                // measured far below the pessimistic line: the hop healed
                self.alloc.health_mut().mark_link_healthy(src, dst);
                self.alloc.topo_mut().restore_link(src, dst);
                self.cost.trust_link(src, dst);
                self.emit(
                    "health.link_restored",
                    jobj! {
                        "src" => src.0 as u64,
                        "dst" => dst.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
            }
        }
    }

    /// Runs `iters` simulated training iterations of the current plan,
    /// feeding every trace into the cost models, and returns the average
    /// iteration time. Faults are absorbed by the resilience loop
    /// (bounded retries, blacklisting, re-planning).
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` (a
    /// zero-iteration "measurement" would propagate NaN into the cost
    /// models); otherwise propagates unrecoverable simulator failures.
    pub fn profile(&mut self, iters: u32) -> Result<f64, FastTError> {
        if iters == 0 {
            return Err(FastTError::InvalidArgument(
                "profile() needs at least one iteration",
            ));
        }
        let mut total = 0.0;
        for _ in 0..iters {
            total += self.run_iteration(true)?;
        }
        Ok(total / iters as f64)
    }

    /// Computes a fresh candidate plan from the base graph with the current
    /// cost models (OS-DPOS when splitting is enabled, DPOS otherwise),
    /// through the session's plan cache.
    pub fn compute_candidate(&mut self) -> Plan {
        let portfolio = Portfolio::new().with(self.main_planner());
        let mut outcome = self.run_portfolio(&portfolio, None);
        self.adopt_candidate_cost(&mut outcome);
        outcome
            .into_winning_plan()
            .expect("DPOS/OS-DPOS planning is total")
    }

    /// Computes a plain-DPOS candidate (no operation splitting) from the
    /// base graph with the current cost models — the "No split" arm of the
    /// paper's Table 6 ablation. Traced through the attached collector
    /// exactly like [`Self::compute_candidate`].
    pub fn compute_candidate_no_split(&mut self) -> Plan {
        let portfolio = Portfolio::new().with(Box::new(DposPlanner));
        let outcome = self.run_portfolio(&portfolio, None);
        outcome.into_winning_plan().expect("DPOS planning is total")
    }

    /// Computes the low-risk candidate: keep the current plan's graph and
    /// placement, only enforce the execution order the strategy calculator
    /// derives for it (the ordering-only lever of the paper's Fig. 2).
    /// Returns `None` when order enforcement is disabled.
    pub fn compute_order_candidate(&self) -> Option<Plan> {
        if !self.config.enable_order {
            return None;
        }
        let mut ctx = PlanningContext::new(
            &self.base_graph,
            self.alloc.topo(),
            &self.hw,
            self.cost.clone(),
        )
        .with_current(&self.current);
        OrderOnlyPlanner.plan(&mut ctx).ok()
    }

    /// Replaces the hardware model mid-session (used by tests and the drift
    /// experiments: real clusters change behaviour — thermal throttling,
    /// congestion — and the paper's periodic re-profiling exists to absorb
    /// exactly that).
    pub fn set_hardware(&mut self, hw: HardwarePerf) {
        self.hw = hw;
    }

    /// The paper's **normal training stage** (Sec. 4): trains for `iters`
    /// iterations, profiling every `reprofile_every`-th iteration; when the
    /// profiled execution times have drifted beyond the stability threshold,
    /// the cost models are refreshed and new strategies are recalculated and
    /// activated (with the same rollback protection as pre-training).
    ///
    /// Returns the average per-iteration time over the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` or
    /// `reprofile_every == 0`; otherwise propagates unrecoverable simulator
    /// failures of the active plan.
    pub fn train_normal(&mut self, iters: u32, reprofile_every: u32) -> Result<f64, FastTError> {
        if iters == 0 || reprofile_every == 0 {
            return Err(FastTError::InvalidArgument(
                "train_normal() needs iters > 0 and reprofile_every > 0",
            ));
        }
        let mut total = 0.0;
        let mut since_profile = 0u32;
        let mut done = 0u32;
        while done < iters {
            let chunk = reprofile_every.min(iters - done);
            // non-profiled iterations: run without feeding the cost models
            for _ in 0..chunk {
                total += self.run_iteration(false)?;
            }
            done += chunk;
            since_profile += chunk;
            if since_profile >= reprofile_every && done < iters {
                since_profile = 0;
                // periodic profiling: one profiled iteration; if times
                // drifted, refresh the models and reconsider the strategy
                self.cost.snapshot();
                let measured = self.profile(1)?;
                total += measured;
                done += 1;
                if !self.cost.is_stable(self.config.stability_eps) {
                    self.emit(
                        "session.drift",
                        jobj! {
                            "iteration" => self.iteration,
                            "drift" => self.cost.comp.max_drift(),
                            "eps" => self.config.stability_eps,
                        },
                    );
                    if let Some(col) = &self.collector {
                        col.metrics().inc("session.drift_detected");
                    }
                    self.measured = self.profile(self.config.profile_iters)?;
                    let candidate = self.compute_candidate();
                    self.emit(
                        "session.candidate",
                        jobj! {
                            "kind" => "redeploy",
                            "stage" => "normal",
                            "est_finish" => candidate.est_finish,
                            "measured" => self.measured,
                        },
                    );
                    if candidate.est_finish < self.measured {
                        let est = candidate.est_finish;
                        let previous = std::mem::replace(&mut self.current, candidate);
                        let prev_measured = self.measured;
                        match self.profile(self.config.profile_iters) {
                            Ok(m) if m <= prev_measured => {
                                self.measured = m;
                                self.rung = LadderRung::Replanned;
                                self.emit(
                                    "session.activation",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Ok(m) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Err(e) if !recoverable(&e) => return Err(e),
                            Err(_) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "failed" => true,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(total / done.max(1) as f64)
    }

    /// Runs the full pre-training workflow: profile → update cost models →
    /// recompute strategy → activate/rollback → repeat until the cost models
    /// stabilize or `max_rounds` is hit.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures of the active plan.
    pub fn pre_train(&mut self) -> Result<PreTrainReport, FastTError> {
        let mut report = PreTrainReport {
            rounds: 0,
            strategy_calc_secs: 0.0,
            activations: 0,
            rollbacks: 0,
            final_iter_time: f64::NAN,
            history: Vec::new(),
        };

        self.measured = self.profile(self.config.profile_iters)?;
        report.history.push(self.measured);

        for _ in 0..self.config.max_rounds {
            report.rounds += 1;
            self.cost.snapshot();
            self.emit(
                "session.round",
                jobj! {
                    "round" => report.rounds as u64,
                    "measured" => self.measured,
                    "drift" => self.cost.comp.max_drift(),
                },
            );

            // Two candidates per round, planned concurrently as one
            // portfolio: the full DPOS/OS-DPOS redeployment and the
            // low-risk "enforce an order on the current placement" (the
            // paper's ordering lever, Fig. 2); tried best-estimate first.
            let t0 = Instant::now();
            let mut portfolio = Portfolio::new().with(self.main_planner());
            // The hierarchical planner races the flat calculator every
            // round: on deep stacked models its quotient-graph pass is far
            // cheaper, and the est-sorted activation loop below keeps
            // whichever estimate wins honest against measurement.
            portfolio.push(Box::new(HierarchicalPlanner::default()));
            if self.config.enable_order {
                portfolio.push(Box::new(OrderOnlyPlanner));
            }
            let mut outcome = self.run_portfolio(&portfolio, None);
            self.adopt_candidate_cost(&mut outcome);
            let mut candidates: Vec<(Plan, &'static str)> = outcome
                .candidates
                .iter_mut()
                .filter_map(|c| {
                    let kind = match c.kind {
                        PlannerKind::OrderOnly => "order",
                        _ => "redeploy",
                    };
                    c.plan.take().map(|p| (p, kind))
                })
                .collect();
            candidates.sort_by(|a, b| a.0.est_finish.total_cmp(&b.0.est_finish));
            report.strategy_calc_secs += t0.elapsed().as_secs_f64();
            for (candidate, kind) in &candidates {
                self.emit(
                    "session.candidate",
                    jobj! {
                        "round" => report.rounds as u64,
                        "kind" => *kind,
                        "stage" => "pre_train",
                        "est_finish" => candidate.est_finish,
                        "measured" => self.measured,
                        "splits" => candidate.splits.len() as u64,
                    },
                );
            }

            // Activate only when the estimate beats the measured time of the
            // current strategy (Sec. 4, "Strategy Calculator"); roll back
            // when the measured time regresses.
            let mut activated = false;
            for (mut candidate, kind) in candidates {
                if candidate.est_finish >= self.measured {
                    continue;
                }
                self.arbitrate_order(&mut candidate);
                if kind == "order" && candidate.order.is_none() {
                    // the order was the candidate's whole content
                    continue;
                }
                let est = candidate.est_finish;
                let previous = std::mem::replace(&mut self.current, candidate);
                let prev_measured = self.measured;
                match self.profile(self.config.profile_iters) {
                    Ok(new_measured) if new_measured <= prev_measured => {
                        self.measured = new_measured;
                        report.activations += 1;
                        activated = true;
                        if kind == "redeploy" {
                            self.rung = LadderRung::Replanned;
                        }
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.activations");
                        }
                        self.emit(
                            "session.activation",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                        break;
                    }
                    Ok(new_measured) => {
                        // measured regression: roll back, recording how far
                        // off the estimate was
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                    }
                    Err(e) if !recoverable(&e) => return Err(e),
                    Err(_) => {
                        // the new plan failed outright (e.g. OOM): roll back
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "failed" => true,
                            },
                        );
                    }
                }
            }
            if !activated {
                // keep profiling the current plan so the models keep filling
                self.measured = self.profile(self.config.profile_iters)?;
            }
            report.history.push(self.measured);

            if self.cost.is_stable(self.config.stability_eps) && report.rounds >= 2 {
                break;
            }
        }

        report.final_iter_time = self.measured;
        self.emit(
            "session.pre_train_done",
            jobj! {
                "rounds" => report.rounds as u64,
                "activations" => report.activations as u64,
                "rollbacks" => report.rollbacks as u64,
                "final_iter_time" => report.final_iter_time,
                "strategy_calc_secs" => report.strategy_calc_secs,
            },
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::AllocationId;
    use fastt_models::Model;

    fn quick_config() -> SessionConfig {
        SessionConfig {
            profile_iters: 2,
            max_rounds: 3,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn starts_data_parallel_when_model_fits() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        // DP base graph has two replicas of every op
        assert!(s.base_graph.op_count() > 2 * g.op_count() - 10);
        assert!(s.base_graph.by_name("rep1/conv1").is_some());
    }

    #[test]
    fn falls_back_to_model_parallel_for_huge_models() {
        // A batch-32 BERT-large replica does not fit on one V100 (Table 3's
        // single-GPU OOM), so DP must be rejected and model parallelism
        // chosen. (NMT baselines keep variables on GPU 0.)
        let g = Model::BertLarge.training_graph(32);
        let topo = Topology::single_server(2);
        let cfg = SessionConfig {
            dp_ps: Some(DeviceId(0)),
            ..quick_config()
        };
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), cfg).unwrap();
        assert!(s.base_graph.by_name("rep0/layer0/attn/q").is_none());
        assert!(s.base_graph.by_name("layer0/attn/q").is_some());
        assert!(s.current_plan().placement.devices_used().len() >= 2);
    }

    #[test]
    fn pre_train_improves_or_matches_start() {
        let g = Model::LeNet.training_graph(64);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let first = s.profile(2).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.rounds >= 1);
        // rollback protection: the final measured time never ends up
        // materially worse than the data-parallel start
        assert!(
            report.final_iter_time <= first * 1.10,
            "final {} vs start {first}",
            report.final_iter_time
        );
    }

    #[test]
    fn profiling_fills_cost_models() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        assert!(!s.cost.covers(&s.current.graph.clone()));
        s.profile(1).unwrap();
        let g_now = s.current.graph.clone();
        assert!(s.cost.covers(&g_now));
    }

    #[test]
    fn normal_training_runs_requested_iterations() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let avg = s.train_normal(20, 5).unwrap();
        assert!(avg.is_finite() && avg > 0.0);
    }

    #[test]
    fn normal_training_adapts_to_hardware_drift() {
        // Slow the "hardware" down mid-training: the periodic profiler must
        // notice the drift and the session must keep producing valid plans
        // at the new speed (times roughly scale with the slowdown).
        let g = Model::AlexNet.training_graph(16);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let fast = s.train_normal(10, 3).unwrap();

        let mut slow_hw = HardwarePerf::new();
        slow_hw.launch_overhead *= 50.0; // dispatch got much slower
        s.set_hardware(slow_hw);
        let slow = s.train_normal(10, 3).unwrap();
        assert!(
            slow > fast,
            "slower hardware must yield slower iterations ({slow} vs {fast})"
        );
        // the session's plan is still valid and executable after adaptation
        let plan = s.current_plan();
        let topo = Topology::single_server(2);
        plan.placement.validate(&plan.graph, &topo).unwrap();
    }

    #[test]
    fn unreachable_between_dead_endpoints_is_cluster_exhausted() {
        // Satellite: when the simulator reports an unroutable pair and both
        // endpoints are already blacklisted, recovery has nothing left to
        // cut — the session must surface the typed dead end, not loop.
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.alloc.topo_mut().fail_device(DeviceId(0));
        s.alloc.topo_mut().fail_device(DeviceId(1));
        let err = s
            .recover_from_unreachable(DeviceId(0), DeviceId(1))
            .unwrap_err();
        assert!(matches!(err, FastTError::ClusterExhausted));
    }

    #[test]
    fn stranded_gpus_outside_the_largest_component_are_dropped() {
        // Sever every directed hop between server 0 and server 1 (hosts
        // included): the four GPUs split 2/2, and the tie must go to the
        // component holding the lowest device id.
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::multi_server(2, 2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let ids: Vec<DeviceId> = s.alloc.topo().device_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a != b && s.alloc.topo().server_of(a) != s.alloc.topo().server_of(b) {
                    s.alloc.topo_mut().fail_link(a, b);
                }
            }
        }
        let dropped = s.drop_stranded_gpus(0);
        assert_eq!(dropped, vec![DeviceId(2), DeviceId(3)]);
        assert!(s.alloc.topo().is_failed(DeviceId(2)) && s.alloc.topo().is_failed(DeviceId(3)));
        assert!(!s.alloc.topo().is_failed(DeviceId(0)) && !s.alloc.topo().is_failed(DeviceId(1)));
        // each drop is logged so same-seed runs replay identically
        assert_eq!(
            s.recovery_log()
                .iter()
                .filter(|e| matches!(e, RecoveryEvent::DeviceFailed { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn strategy_calc_time_is_recorded() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.strategy_calc_secs > 0.0);
        assert_eq!(report.history.len() as u32, report.rounds + 1);
    }

    #[test]
    fn allocation_scoped_session_plans_inside_the_slice() {
        // A session over a carved slice must place every op on a member GPU
        // (or an involved server's host) — never on a sibling job's device.
        let g = Model::LeNet.training_graph(32);
        let shared = Topology::multi_server(2, 2);
        let alloc = Allocation::new(AllocationId(7), &shared, &[DeviceId(2), DeviceId(3)]);
        let mut s = TrainingSession::with_allocation(
            &g,
            alloc,
            HardwarePerf::new(),
            quick_config(),
            Arc::new(PlanCache::default()),
            None,
        )
        .unwrap();
        s.profile(1).unwrap();
        let plan = s.current_plan();
        for d in plan.placement.devices_used() {
            assert!(
                s.allocation().contains(d) || s.topology().is_host(d),
                "placed on non-member {d}"
            );
        }
        plan.placement.validate(&plan.graph, s.topology()).unwrap();
    }

    #[test]
    fn release_and_grant_walk_the_allocation() {
        // Fleet preemption then re-grant: the survivor keeps a valid plan
        // confined to the shrunken slice, and the grant restores capacity.
        let g = Model::LeNet.training_graph(32);
        let shared = Topology::multi_server(2, 2);
        let alloc = Allocation::new(
            AllocationId(1),
            &shared,
            &[DeviceId(0), DeviceId(1), DeviceId(2)],
        );
        let mut s = TrainingSession::with_allocation(
            &g,
            alloc,
            HardwarePerf::new(),
            quick_config(),
            Arc::new(PlanCache::default()),
            None,
        )
        .unwrap();
        s.profile(1).unwrap();
        s.release_devices(&[DeviceId(2)]).unwrap();
        assert_eq!(s.allocation().gpu_count(), 2);
        assert!(!s.allocation().contains(DeviceId(2)));
        let plan = s.current_plan().clone();
        plan.placement.validate(&plan.graph, s.topology()).unwrap();
        assert!(!plan.placement.devices_used().contains(&DeviceId(2)));
        assert!(s
            .recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Drained { device, .. } if *device == DeviceId(2))));
        s.grant_devices(&[DeviceId(2)]).unwrap();
        assert_eq!(s.allocation().gpu_count(), 3);
        assert!(s.allocation().contains(DeviceId(2)));
        s.profile(1).unwrap();
    }
}
