//! The training-session workflow (Sec. 4 of the paper).
//!
//! FastT bootstraps by running the model under a start strategy (data
//! parallelism when the model fits on one GPU, model parallelism otherwise),
//! profiling each iteration to update the cost models, recomputing
//! strategies with DPOS / OS-DPOS, activating a new strategy when its
//! estimate beats the current measured time, and **rolling back** when the
//! measured per-iteration time under the new strategy is worse than before.
//! Pre-training ends when the cost models stabilize.

use crate::error::FastTError;
use crate::planner::{
    CandidateOutcome, DataParallelPlanner, DposPlanner, ModelParallelPlanner, OrderOnlyPlanner,
    OsDposPlanner, PlanCache, Planner, PlannerKind, PlanningContext, Portfolio, PortfolioInputs,
    PortfolioOutcome,
};
use crate::strategy::Plan;
use fastt_cluster::{DeviceHealth, DeviceId, HealthMap, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::{FaultSchedule, HardwarePerf, LifecycleKind, RunTrace, SimConfig, SimError};
use fastt_telemetry::{jobj, Collector, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Profiled iterations per bootstrap round.
    pub profile_iters: u32,
    /// Maximum bootstrap rounds before pre-training is forced to end.
    pub max_rounds: u32,
    /// Relative cost-model drift below which the models count as stable.
    pub stability_eps: f64,
    /// Simulated execution-time noise (matches real profiling variance).
    pub jitter_pct: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
    /// Enable OS-DPOS operation splitting (disable for the paper's
    /// "No split" ablation, Table 6).
    pub enable_split: bool,
    /// Enable order enforcement (disable for the paper's Fig. 2 baseline).
    pub enable_order: bool,
    /// Where the data-parallel start strategy keeps shared variables:
    /// `None` follows TF-slim (the CPU host when the topology has one);
    /// `Some(d)` pins the parameter server to device `d` (the convention
    /// for the non-slim NMT baselines is GPU 0).
    pub dp_ps: Option<DeviceId>,
    /// Scripted infrastructure faults injected into every simulated
    /// iteration (see [`FaultSchedule`]); `None` trains on a healthy
    /// cluster with behaviour bit-identical to a fault-free build.
    pub faults: Option<Arc<FaultSchedule>>,
    /// Transient-failure retries per iteration before the failing device is
    /// blacklisted and the session re-plans.
    pub max_transient_retries: u32,
    /// Base of the exponential retry backoff, in seconds: attempt `k`
    /// backs off `retry_backoff_base * 2^k`. Reported through
    /// `session.retry` telemetry (the simulated cluster does not actually
    /// sleep).
    pub retry_backoff_base: f64,
    /// Measured-over-predicted per-device duration ratio above which a
    /// device is flagged as degraded (`health.degraded`).
    pub degraded_slowdown: f64,
    /// Iterations a re-admitted device spends in quarantine before it
    /// rejoins the plannable capacity. Re-admission is explicit: a device
    /// that dies again mid-quarantine is dropped and a fresh arrival must
    /// restart the ladder — flapping devices are never auto-readmitted.
    pub quarantine_iters: u64,
    /// Minimum iterations between promotion attempts after capacity
    /// growth (hysteresis: keeps spot churn from thrashing plans).
    pub promote_cooldown_iters: u64,
    /// Relative per-replica improvement a growth candidate must show over
    /// the incumbent before it is promoted (hysteresis margin).
    pub promote_margin: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            profile_iters: 3,
            max_rounds: 6,
            stability_eps: 0.05,
            jitter_pct: 0.02,
            seed: 7,
            enable_split: true,
            enable_order: true,
            dp_ps: None,
            faults: None,
            max_transient_retries: 4,
            retry_backoff_base: 0.05,
            degraded_slowdown: 1.5,
            quarantine_iters: 2,
            promote_cooldown_iters: 3,
            promote_margin: 0.02,
        }
    }
}

/// Where the session currently sits on the degradation/promotion ladder,
/// ordered worst to best: greedy model parallelism at the bottom, then
/// the parameter-server data-parallel funnel, then ring all-reduce data
/// parallelism over the survivors, then a fresh DPOS/OS-DPOS plan at the
/// top. Failure recovery can step the session down the ladder; the
/// promotion path climbs back up when revoked capacity returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Greedy model parallelism — the last-resort fallback.
    Mp,
    /// Parameter-server data parallelism (the funnel).
    PsDp,
    /// Ring all-reduce data parallelism over the survivors.
    RingDp,
    /// A fresh DPOS/OS-DPOS plan — the top rung.
    Replanned,
}

impl LadderRung {
    /// The rung a replan/fallback kind string lands on.
    fn of_kind(kind: &str) -> LadderRung {
        match kind {
            "data_parallel_allreduce" => LadderRung::RingDp,
            "data_parallel" => LadderRung::PsDp,
            "model_parallel" => LadderRung::Mp,
            _ => LadderRung::Replanned,
        }
    }

    /// Stable label used in telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Mp => "model_parallel",
            LadderRung::PsDp => "ps_data_parallel",
            LadderRung::RingDp => "ring_data_parallel",
            LadderRung::Replanned => "replanned",
        }
    }
}

/// One entry in the session's recovery log: a pure record of every
/// resilience decision, in the order taken. Deterministic — two sessions
/// with the same seed, config, and fault schedule produce identical logs.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A transient failure was retried (with exponential backoff).
    Retry {
        /// The hiccupping device.
        device: DeviceId,
        /// The iteration being attempted.
        iteration: u64,
        /// The failed attempt number (0-based).
        attempt: u32,
    },
    /// A device was blacklisted (crash, or transient failures past the
    /// retry budget).
    DeviceFailed {
        /// The blacklisted device.
        device: DeviceId,
        /// The iteration at which it was observed dead.
        iteration: u64,
    },
    /// A device was flagged as running slower than the cost models predict.
    Degraded {
        /// The straggling device.
        device: DeviceId,
        /// Measured-over-predicted duration ratio.
        slowdown: f64,
    },
    /// A link was flagged as running slower than the communication model
    /// predicts; its cost prior was re-seeded pessimistically.
    LinkDegraded {
        /// Source endpoint of the straggling directed hop.
        src: DeviceId,
        /// Destination endpoint of the straggling directed hop.
        dst: DeviceId,
        /// Measured-over-predicted transfer-time ratio.
        slowdown: f64,
    },
    /// A physical link was blacklisted (flaps past the simulator's retry
    /// budget, reported as [`fastt_sim::SimError::LinkDown`]).
    LinkFailed {
        /// Source endpoint of the dead hop.
        src: DeviceId,
        /// Destination endpoint of the dead hop.
        dst: DeviceId,
        /// The iteration at which it was observed down.
        iteration: u64,
    },
    /// A server partition was detected; every device it hosts was
    /// blacklisted (each with its own [`RecoveryEvent::DeviceFailed`]).
    Partitioned {
        /// The unreachable server.
        server: u16,
        /// The iteration at which the partition timed out.
        iteration: u64,
    },
    /// A recovery fell back to a start strategy (`"data_parallel"`,
    /// `"data_parallel_allreduce"`, or `"model_parallel"`) because the
    /// planner candidate was infeasible or slower.
    Fallback {
        /// Which fallback won.
        kind: &'static str,
    },
    /// The session adopted a new plan over the surviving topology.
    Replanned {
        /// Live GPUs at re-planning time.
        survivors: usize,
        /// `"replan"` (fresh DPOS/OS-DPOS candidate) or the fallback kind.
        kind: &'static str,
    },
    /// Recovery completed; training continues.
    Recovered {
        /// The iteration at which training resumed.
        iteration: u64,
    },
    /// A spot-revocation notice was received: the device dies at
    /// `deadline` unless it is drained first.
    RevocationNotice {
        /// The device being revoked.
        device: DeviceId,
        /// The iteration the notice was observed.
        iteration: u64,
        /// The iteration the device dies.
        deadline: u64,
    },
    /// A device under revocation notice was proactively drained:
    /// blacklisted and re-planned around *before* death, so the deadline
    /// passes without any crash recovery (or retries) for it.
    Drained {
        /// The drained device.
        device: DeviceId,
        /// The iteration the drain happened.
        iteration: u64,
    },
    /// A previously failed device re-announced itself and entered
    /// quarantine (explicit re-admission — a flapping device is never
    /// auto-readmitted by a health signal alone).
    Readmitted {
        /// The quarantined device.
        device: DeviceId,
        /// The iteration re-admission was granted.
        iteration: u64,
    },
    /// A device finished quarantine (or arrived with a hot-added server)
    /// and rejoined the plannable capacity on probation.
    Restored {
        /// The restored device.
        device: DeviceId,
        /// The iteration it rejoined.
        iteration: u64,
    },
    /// Growth re-planning beat the incumbent by the hysteresis margin:
    /// the session adopted the new plan and climbed the ladder.
    Promoted {
        /// Live GPUs at promotion time.
        survivors: usize,
        /// `"replan"` or the winning start-strategy kind.
        kind: &'static str,
        /// The iteration the promotion took effect.
        iteration: u64,
    },
}

/// What happened during pre-training (feeds the paper's Table 4 timing and
/// the speed numbers of Tables 1–2).
#[derive(Debug, Clone)]
pub struct PreTrainReport {
    /// Bootstrap rounds executed.
    pub rounds: u32,
    /// Wall-clock seconds spent inside DPOS / OS-DPOS (strategy
    /// calculation only, excluding profiling).
    pub strategy_calc_secs: f64,
    /// Strategy switches that survived measurement.
    pub activations: u32,
    /// Strategy switches that were rolled back.
    pub rollbacks: u32,
    /// Measured per-iteration time after pre-training.
    pub final_iter_time: f64,
    /// Measured per-iteration time after each round.
    pub history: Vec<f64>,
}

/// A FastT-managed training session over the simulated cluster.
#[derive(Debug)]
pub struct TrainingSession {
    /// The base graph strategies are computed from: the data-parallel
    /// replica graph when DP fits, otherwise the raw training graph
    /// (Sec. 5.2's input-graph rule). Rebuilt over the survivors after a
    /// device failure.
    base_graph: Graph,
    /// The raw (unreplicated) training graph, kept so re-planning after a
    /// failure can rebuild the base graph over a smaller cluster.
    training_graph: Graph,
    /// Whether the start strategy was data parallelism.
    started_dp: bool,
    topo: Topology,
    hw: HardwarePerf,
    config: SessionConfig,
    /// The adaptive cost models, learned from profiled iterations.
    pub cost: CostModels,
    current: Plan,
    measured: f64,
    iteration: u64,
    /// Observed per-device health, inferred from profiled traces.
    health: HealthMap,
    /// Every resilience decision taken, in order (see [`RecoveryEvent`]).
    recovery_log: Vec<RecoveryEvent>,
    collector: Option<Arc<Collector>>,
    /// Fingerprint-keyed memo of computed plans, shared by every portfolio
    /// evaluation the session runs (see [`PlanCache`]).
    cache: PlanCache,
    /// Which scripted lifecycle events have already been applied (indexed
    /// like the fault schedule's lifecycle list).
    lifecycle_processed: Vec<bool>,
    /// Readmitted devices waiting out quarantine: (restore-at, id).
    pending_restores: Vec<(u64, DeviceId)>,
    /// Capacity grew since the last promotion attempt.
    pending_promotion: bool,
    /// Iteration of the last promotion attempt (the cooldown anchor).
    last_promotion_attempt: Option<u64>,
    /// Current rung on the degradation/promotion ladder.
    rung: LadderRung,
}

/// How many data-parallel replicas a plan's graph encodes. DP graphs name
/// replica ops `repN/...`, so per-iteration work scales with the replica
/// count and raw makespans are only comparable *per replica* (see
/// [`TrainingSession::try_promote`]); non-replicated plans count as one.
fn replicas_of(plan: &Plan) -> usize {
    plan.graph
        .op_ids()
        .filter_map(|id| {
            let name = &plan.graph.op_ref(id).name;
            let rest = name.strip_prefix("rep")?;
            rest[..rest.find('/')?].parse::<usize>().ok()
        })
        .max()
        .map(|n| n + 1)
        .unwrap_or(1)
}

/// Whether a profiling error is specific to the plan being measured (so a
/// rollback to the previous plan can recover) rather than a cluster-wide
/// dead end that must propagate.
fn recoverable(e: &FastTError) -> bool {
    matches!(e, FastTError::Sim(_))
}

impl TrainingSession {
    /// Creates a session for a (unreplicated) training graph.
    ///
    /// Chooses the start strategy exactly as the paper does: replicate the
    /// model over all devices and start data-parallel if that fits in
    /// memory; otherwise fall back to greedy model parallelism on the raw
    /// graph (Sec. 4 / Sec. 5.2).
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::NoFeasibleStart`] when neither start strategy
    /// fits in device memory.
    pub fn new(
        training_graph: &Graph,
        topo: Topology,
        hw: HardwarePerf,
        config: SessionConfig,
    ) -> Result<Self, FastTError> {
        // Both start strategies are planned and probed as one portfolio
        // (concurrently), but selection is *first-feasible*, not
        // fastest-probe: the paper always starts data-parallel when the
        // replicated model fits, regardless of which probe looks quicker.
        // Bind the communication model to the cluster up front: per-link-class
        // fits composed along physical routes, with link-spec priors so that
        // never-profiled links cost something pessimistic instead of zero.
        let mut cost = CostModels::new();
        cost.bind_topology(&topo);
        let portfolio = Portfolio::new()
            .with(Box::new(DataParallelPlanner::default()))
            .with(Box::new(ModelParallelPlanner));
        let inputs = PortfolioInputs {
            graph: training_graph,
            raw: Some(training_graph),
            current: None,
            topo: &topo,
            hw: &hw,
            cost: &cost,
            collector: None,
            enable_order: config.enable_order,
            dp_ps: config.dp_ps,
            probe: Some(SimConfig::default()),
        };
        let mut outcome = portfolio.evaluate(&inputs, None);
        let mut mp_out = outcome.candidates.pop().expect("portfolio of two");
        let mut dp_out = outcome.candidates.pop().expect("portfolio of two");
        let (start, started_dp) = if dp_out.simulated.is_some() {
            (dp_out.plan.take().expect("probed plan"), true)
        } else {
            // DP infeasible: only an OOM (the replicated model not fitting
            // in device memory) falls back to model parallelism; any other
            // failure propagates.
            match dp_out.error.take() {
                Some(FastTError::Sim(dp_err @ SimError::Oom { .. })) => {
                    if mp_out.simulated.is_some() {
                        (mp_out.plan.take().expect("probed plan"), false)
                    } else {
                        return Err(match mp_out.error.take() {
                            Some(FastTError::Sim(mp_err)) => FastTError::NoFeasibleStart {
                                dp: dp_err,
                                mp: mp_err,
                            },
                            Some(other) => other,
                            None => FastTError::ClusterExhausted,
                        });
                    }
                }
                Some(other) => return Err(other),
                None => return Err(FastTError::ClusterExhausted),
            }
        };
        // Sec. 5.2's input-graph rule: strategies are computed from the
        // replica graph when DP fits, else from the raw training graph —
        // both are exactly the winning start plan's graph.
        let base_graph = start.graph.clone();
        let health = HealthMap::new(topo.device_count());
        let lifecycle_processed = config
            .faults
            .as_ref()
            .map(|f| vec![false; f.lifecycle().len()])
            .unwrap_or_default();
        let rung = if started_dp {
            LadderRung::PsDp
        } else {
            LadderRung::Mp
        };
        Ok(TrainingSession {
            base_graph,
            training_graph: training_graph.clone(),
            started_dp,
            topo,
            hw,
            config,
            cost,
            current: start,
            measured: f64::INFINITY,
            iteration: 0,
            health,
            recovery_log: Vec::new(),
            collector: None,
            cache: PlanCache::default(),
            lifecycle_processed,
            pending_restores: Vec::new(),
            pending_promotion: false,
            last_promotion_attempt: None,
            rung,
        })
    }

    /// Attaches a telemetry collector to the whole session: lifecycle
    /// events (`session.*`), scheduler decision traces (`dpos.*`),
    /// simulator summaries (`sim.*`), and cost-model accuracy (`cost.*`)
    /// all flow through it. Without a collector the session is untouched.
    pub fn attach_collector(&mut self, collector: Arc<Collector>) {
        self.cost.set_collector(collector.clone());
        collector.emit(
            "session.start",
            jobj! {
                "devices" => self.topo.device_count() as u64,
                "gpus" => self.topo.gpu_count() as u64,
                "ops" => self.base_graph.op_count() as u64,
                "started_dp" => self.started_dp,
                "est_finish" => self.current.est_finish,
            },
        );
        self.collector = Some(collector);
    }

    /// The attached telemetry collector, if any.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    fn emit(&self, kind: &str, fields: Value) {
        if let Some(col) = &self.collector {
            col.emit(kind, fields);
        }
    }

    /// The currently active plan.
    pub fn current_plan(&self) -> &Plan {
        &self.current
    }

    /// Whether the session's start strategy was data parallelism (false =
    /// the model was too large and model parallelism was used, Sec. 4).
    pub fn started_data_parallel(&self) -> bool {
        self.started_dp
    }

    /// Last measured average per-iteration time.
    pub fn measured_iter_time(&self) -> f64 {
        self.measured
    }

    /// The (possibly shrunken) topology the session is training on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Observed per-device health, inferred from profiled traces.
    pub fn health(&self) -> &HealthMap {
        &self.health
    }

    /// Every resilience decision taken so far, in order. Deterministic:
    /// same seed + same fault schedule ⇒ identical log.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// Training iterations executed so far (profiled and unprofiled).
    pub fn iterations_run(&self) -> u64 {
        self.iteration
    }

    /// The session's current rung on the degradation/promotion ladder.
    pub fn ladder_rung(&self) -> LadderRung {
        self.rung
    }

    /// The simulation parameters for the current iteration. `attempt` only
    /// matters under injected profile-failure faults.
    fn sim_config(&self, attempt: u32) -> SimConfig {
        SimConfig {
            jitter_pct: self.config.jitter_pct,
            seed: self.config.seed,
            iteration: self.iteration,
            collector: self.collector.clone(),
            faults: self.config.faults.clone(),
            attempt,
            ..SimConfig::default()
        }
    }

    /// The probe configuration for plan arbitration: the current position
    /// with faults included (so an infeasible-under-current-faults plan
    /// loses the arbitration instead of failing after activation), but with
    /// `attempt = u32::MAX` to exempt probes from transient profile-failure
    /// windows — a probe is a planning query, not a profiling run, and
    /// recovery must not deadlock on them.
    fn probe_config(&self) -> SimConfig {
        self.sim_config(u32::MAX)
    }

    /// Order enforcement is a lever, not a mandate (Fig. 2): before
    /// measuring an order-bearing candidate, probe its enforced order
    /// against plain FIFO execution of the same placement and strip the
    /// order when it does not help. The priority list is derived from
    /// partially-profiled estimates, so a misordered list can serialize
    /// transfers the unordered executor would overlap — and rollback alone
    /// cannot catch that: the activation baseline is the *previous* plan's
    /// measured time, not the same placement without the order.
    fn arbitrate_order(&self, plan: &mut Plan) {
        if plan.order.is_none() {
            return;
        }
        let probe = self.probe_config();
        let ordered = match plan.simulate(&self.topo, &self.hw, &probe) {
            Ok(t) => t.makespan,
            Err(_) => return, // infeasibility is the activation loop's call
        };
        let order = plan.order.take();
        match plan.simulate(&self.topo, &self.hw, &probe) {
            Ok(t) if t.makespan < ordered => {
                if let Some(col) = &self.collector {
                    col.metrics().inc("session.orders_dropped");
                }
                self.emit(
                    "session.order_dropped",
                    jobj! {
                        "ordered" => ordered,
                        "fifo" => t.makespan,
                    },
                );
            }
            _ => plan.order = order,
        }
    }

    /// The session's main strategy calculator as a [`Planner`]: OS-DPOS
    /// when splitting is enabled (Alg. 2), plain DPOS otherwise (the
    /// "No split" ablation).
    fn main_planner(&self) -> Box<dyn Planner> {
        if self.config.enable_split {
            Box::new(OsDposPlanner::default())
        } else {
            Box::new(DposPlanner)
        }
    }

    /// Evaluates `portfolio` against the session's state (base graph, raw
    /// graph, current plan, live topology, cost models, collector) through
    /// the session's [`PlanCache`].
    fn run_portfolio(
        &mut self,
        portfolio: &Portfolio,
        probe: Option<SimConfig>,
    ) -> PortfolioOutcome {
        let inputs = PortfolioInputs {
            graph: &self.base_graph,
            raw: Some(&self.training_graph),
            current: Some(&self.current),
            topo: &self.topo,
            hw: &self.hw,
            cost: &self.cost,
            collector: self.collector.clone(),
            enable_order: self.config.enable_order,
            dp_ps: self.config.dp_ps,
            probe,
        };
        portfolio.evaluate(&inputs, Some(&mut self.cache))
    }

    /// Adopts the cost-model clone mutated by the portfolio's *main*
    /// candidate (index 0 — always the DPOS/OS-DPOS planner in this
    /// session): OS-DPOS seeds analytic priors for fresh sub-operations,
    /// and those must persist in the session exactly as the old
    /// mutate-in-place API did. Cache-served candidates carry no clone —
    /// their seeds were adopted when the plan was first computed.
    fn adopt_candidate_cost(&mut self, outcome: &mut PortfolioOutcome) {
        if let Some(cost) = outcome.candidates[0].cost.take() {
            self.cost = cost;
        }
    }

    /// The session's plan cache (hit/miss counters included).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Runs one training iteration of the current plan, absorbing faults:
    /// transient failures are retried with exponential backoff, crashes and
    /// exhausted retry budgets blacklist the device and re-plan over the
    /// survivors, and memory-pressure OOM falls back to a cheaper plan.
    /// On success the iteration counter advances and (when `feed_cost`) the
    /// trace is fed to the cost models.
    fn run_iteration(&mut self, feed_cost: bool) -> Result<f64, FastTError> {
        self.process_lifecycle()?;
        let mut pressure_replans = 0u32;
        loop {
            let mut attempt = 0u32;
            let outcome = loop {
                let cfg = self.sim_config(attempt);
                match self.current.simulate(&self.topo, &self.hw, &cfg) {
                    Err(SimError::Transient {
                        device, iteration, ..
                    }) if attempt < self.config.max_transient_retries => {
                        let backoff =
                            self.config.retry_backoff_base * f64::powi(2.0, attempt as i32);
                        self.recovery_log.push(RecoveryEvent::Retry {
                            device,
                            iteration,
                            attempt,
                        });
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.retries");
                        }
                        self.emit(
                            "session.retry",
                            jobj! {
                                "device" => device.0 as u64,
                                "iteration" => iteration,
                                "attempt" => attempt as u64,
                                "backoff_secs" => backoff,
                            },
                        );
                        attempt += 1;
                    }
                    other => break other,
                }
            };
            match outcome {
                Ok(mut trace) => {
                    if feed_cost {
                        self.check_health(&trace);
                        self.check_link_health(&trace);
                        // Transfers over distrusted links would poison the
                        // healthy same-class fit; the pessimistic override
                        // already prices them.
                        trace
                            .transfers
                            .retain(|t| !self.cost.comm.is_distrusted(t.src_dev, t.dst_dev));
                        self.cost.update_from_trace(&self.current.graph, &trace);
                    }
                    self.iteration += 1;
                    return Ok(trace.makespan);
                }
                Err(SimError::Transient {
                    device,
                    iteration,
                    attempt,
                }) => {
                    // Retry budget spent: the hiccup is persistent enough to
                    // count as a failure — blacklist and re-plan. If that
                    // device was the last one, surface the retry story.
                    self.recover_from_failure(device, iteration)
                        .map_err(|e| match e {
                            FastTError::ClusterExhausted => FastTError::RetriesExhausted {
                                device,
                                attempts: attempt + 1,
                            },
                            other => other,
                        })?;
                }
                Err(SimError::DeviceCrash { device, iteration }) => {
                    self.recover_from_failure(device, iteration)?;
                }
                Err(SimError::LinkDown {
                    src,
                    dst,
                    iteration,
                }) => {
                    self.recover_from_link_failure(src, dst, iteration)?;
                }
                Err(SimError::PartitionTimeout { server, iteration }) => {
                    self.recover_from_partition(server, iteration)?;
                }
                Err(SimError::Unreachable { src, dst }) => {
                    self.recover_from_unreachable(src, dst)?;
                }
                Err(oom @ SimError::Oom { .. }) => {
                    // Under an injected memory-pressure spike, degrade to a
                    // plan that fits the reduced capacity (once per
                    // iteration); a genuine OOM propagates as before.
                    let device = match &oom {
                        SimError::Oom { device, .. } => *device,
                        _ => unreachable!(),
                    };
                    let under_pressure = self
                        .config
                        .faults
                        .as_ref()
                        .map(|f| f.mem_reserved(device, self.iteration) > 0)
                        .unwrap_or(false);
                    if under_pressure && pressure_replans == 0 {
                        pressure_replans += 1;
                        self.replan_and_degrade(self.iteration, "mem_pressure")?;
                    } else {
                        return Err(oom.into());
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Health detection (tentpole (a)): compares each device's measured op
    /// durations in `trace` against the cost models' *pre-update*
    /// predictions; a device running `degraded_slowdown`× slower than
    /// predicted is flagged (`health.degraded`), and unflagged once the
    /// ratio normalizes (the adaptive models absorb persistent slowdowns,
    /// so the flag marks the transition, not the steady state).
    fn check_health(&mut self, trace: &RunTrace) {
        let n = self.topo.device_count();
        let mut measured = vec![0.0f64; n];
        let mut predicted = vec![0.0f64; n];
        for r in &trace.op_records {
            if r.start < 0.0 || r.device.index() >= n {
                continue;
            }
            let name = &self.current.graph.op_ref(r.op).name;
            if let Some(p) = self.cost.comp.get(name, r.device) {
                measured[r.device.index()] += r.duration();
                predicted[r.device.index()] += p;
            }
        }
        for d in self.topo.gpu_ids().collect::<Vec<_>>() {
            let (m, p) = (measured[d.index()], predicted[d.index()]);
            if p <= 1e-12 {
                continue;
            }
            let ratio = m / p;
            let was_degraded = matches!(self.health.health(d), DeviceHealth::Degraded { .. });
            if ratio >= self.config.degraded_slowdown {
                if !was_degraded {
                    self.recovery_log.push(RecoveryEvent::Degraded {
                        device: d,
                        slowdown: ratio,
                    });
                    if let Some(col) = &self.collector {
                        col.metrics().inc("health.degraded");
                    }
                    self.emit(
                        "health.degraded",
                        jobj! {
                            "device" => d.0 as u64,
                            "iteration" => self.iteration,
                            "slowdown" => ratio,
                        },
                    );
                }
                self.health.mark_degraded(d, ratio);
            } else if was_degraded {
                self.health.mark_healthy(d);
                self.emit(
                    "health.restored",
                    jobj! {
                        "device" => d.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
            }
        }
    }

    /// Link-level health detection: aggregates each directed physical hop's
    /// measured transfer time in `trace` against the communication model's
    /// *pre-update* per-link-class predictions. A hop running
    /// `degraded_slowdown`× slower than predicted is flagged
    /// (`health.link_degraded`), marked degraded in the [`HealthMap`] and
    /// the topology's belief mask, and its cost prior re-seeded
    /// pessimistically ([`CostModels::distrust_link`]) so planners route
    /// around it — without the slow samples poisoning the healthy
    /// same-class fit (they are filtered before ingestion). A distrusted
    /// hop whose measurements drop back under the *inflated* prediction by
    /// the same margin is restored.
    ///
    /// Only engages when a fault schedule is configured: fault-free
    /// sessions stay bit-identical to pre-fault builds, and a healthy
    /// cluster's contention noise never trips the detector.
    fn check_link_health(&mut self, trace: &RunTrace) {
        if self.config.faults.is_none() {
            return;
        }
        let mut agg: BTreeMap<(DeviceId, DeviceId), (f64, f64)> = BTreeMap::new();
        for t in &trace.transfers {
            if t.src_dev == t.dst_dev {
                continue;
            }
            let Some(p) = self.cost.comm.predict(t.src_dev, t.dst_dev, t.bytes) else {
                continue;
            };
            if !p.is_finite() || p <= 1e-12 {
                continue;
            }
            let e = agg.entry((t.src_dev, t.dst_dev)).or_insert((0.0, 0.0));
            e.0 += t.duration();
            e.1 += p;
        }
        for ((src, dst), (m, p)) in agg {
            if self.health.is_link_failed(src, dst) {
                continue;
            }
            let ratio = m / p;
            let distrusted = self.cost.comm.is_distrusted(src, dst);
            if !distrusted && ratio >= self.config.degraded_slowdown {
                self.recovery_log.push(RecoveryEvent::LinkDegraded {
                    src,
                    dst,
                    slowdown: ratio,
                });
                if let Some(col) = &self.collector {
                    col.metrics().inc("health.link_degraded");
                }
                self.emit(
                    "health.link_degraded",
                    jobj! {
                        "src" => src.0 as u64,
                        "dst" => dst.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
                self.health.mark_link_degraded(src, dst, ratio);
                self.topo.degrade_link(src, dst, ratio);
                self.cost.distrust_link(src, dst, ratio);
            } else if distrusted && ratio <= 1.0 / self.config.degraded_slowdown {
                // measured far below the pessimistic line: the hop healed
                self.health.mark_link_healthy(src, dst);
                self.topo.restore_link(src, dst);
                self.cost.trust_link(src, dst);
                self.emit(
                    "health.link_restored",
                    jobj! {
                        "src" => src.0 as u64,
                        "dst" => dst.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
            }
        }
    }

    /// Restores `previous` as the active plan after a measured regression —
    /// unless a device failed while the candidate was being measured, in
    /// which case `previous` may reference blacklisted devices and the
    /// recovery plan installed by [`Self::replan_and_degrade`] stays active.
    fn roll_back_to(&mut self, previous: Plan) {
        let stale = previous
            .placement
            .devices_used()
            .iter()
            .any(|d| self.topo.is_failed(*d));
        if !stale {
            self.current = previous;
        }
    }

    /// Re-planning (tentpole (b)): blacklists `device`, then rebuilds the
    /// plan over the surviving topology.
    fn recover_from_failure(&mut self, device: DeviceId, iteration: u64) -> Result<(), FastTError> {
        self.topo.fail_device(device);
        // Routes change when a device (especially a host) dies: rebind so
        // route-composed predictions stop staging through the corpse.
        self.cost.bind_topology(&self.topo);
        self.health.mark_failed(device);
        self.recovery_log
            .push(RecoveryEvent::DeviceFailed { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.device_failures");
        }
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "device_failed")
    }

    /// Re-planning for link death: a hop that flapped past the simulator's
    /// retry budget is blacklisted in both directions (the session treats a
    /// persistent flap exactly like a crashed device), GPUs the surviving
    /// wiring can no longer reach are dropped, and the plan is rebuilt —
    /// [`Topology::try_route`] steers the new plan's transfers around the
    /// corpse.
    fn recover_from_link_failure(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        iteration: u64,
    ) -> Result<(), FastTError> {
        self.topo.fail_link(src, dst);
        self.topo.fail_link(dst, src);
        self.health.mark_link_failed(src, dst);
        self.health.mark_link_failed(dst, src);
        // Routes change when a link dies: rebind so route-composed
        // predictions price the detour, not the dead hop.
        self.cost.bind_topology(&self.topo);
        self.recovery_log.push(RecoveryEvent::LinkFailed {
            src,
            dst,
            iteration,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.link_failures");
        }
        self.emit(
            "health.link_failed",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        self.drop_stranded_gpus(iteration);
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "link_failed")
    }

    /// Re-planning for a host partition: from the survivors' point of view
    /// a partitioned server is indistinguishable from a crashed rack, so
    /// every device it hosts is blacklisted and the plan is rebuilt over
    /// the remaining servers.
    fn recover_from_partition(&mut self, server: u16, iteration: u64) -> Result<(), FastTError> {
        self.recovery_log
            .push(RecoveryEvent::Partitioned { server, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.partitions");
        }
        self.emit(
            "session.partition",
            jobj! {
                "server" => server as u64,
                "iteration" => iteration,
            },
        );
        let victims: Vec<DeviceId> = self
            .topo
            .device_ids()
            .filter(|&d| self.topo.server_of(d) == server && !self.topo.is_failed(d))
            .collect();
        for d in victims {
            self.topo.fail_device(d);
            self.health.mark_failed(d);
            self.recovery_log.push(RecoveryEvent::DeviceFailed {
                device: d,
                iteration,
            });
        }
        self.cost.bind_topology(&self.topo);
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "partition")
    }

    /// Re-planning when no live route exists between two placed devices:
    /// drops whatever the surviving wiring stranded (keeping the largest
    /// mutually-reachable GPU component) and re-plans; surfaces
    /// [`FastTError::ClusterExhausted`] when nothing plannable remains.
    fn recover_from_unreachable(&mut self, src: DeviceId, dst: DeviceId) -> Result<(), FastTError> {
        let iteration = self.iteration;
        self.emit(
            "session.unreachable",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        let dropped = self.drop_stranded_gpus(iteration);
        if dropped.is_empty() {
            // The unroutable endpoint is not a stranded GPU (e.g. a host
            // the plan still stages variables through): blacklist the
            // destination so the next plan routes around it.
            let victim = if self.topo.is_failed(dst) { src } else { dst };
            if self.topo.is_failed(victim) {
                return Err(FastTError::ClusterExhausted);
            }
            self.topo.fail_device(victim);
            self.health.mark_failed(victim);
            self.recovery_log.push(RecoveryEvent::DeviceFailed {
                device: victim,
                iteration,
            });
            self.cost.bind_topology(&self.topo);
        }
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "unreachable")
    }

    /// Blacklists every live GPU outside the largest mutually-reachable
    /// component (ties go to the component holding the lowest device id) —
    /// after link failures or partitions, stranded GPUs cannot participate
    /// in any plan. Returns the devices dropped, in id order.
    fn drop_stranded_gpus(&mut self, iteration: u64) -> Vec<DeviceId> {
        let gpus: Vec<DeviceId> = self.topo.gpu_ids().collect();
        let n = gpus.len();
        let mut comp = vec![usize::MAX; n];
        let mut comps = 0usize;
        for i in 0..n {
            if comp[i] != usize::MAX {
                continue;
            }
            comp[i] = comps;
            let mut stack = vec![i];
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if comp[v] == usize::MAX
                        && self.topo.try_route(gpus[u], gpus[v]).is_some()
                        && self.topo.try_route(gpus[v], gpus[u]).is_some()
                    {
                        comp[v] = comps;
                        stack.push(v);
                    }
                }
            }
            comps += 1;
        }
        if comps <= 1 {
            return Vec::new();
        }
        let mut sizes = vec![0usize; comps];
        for &c in &comp {
            sizes[c] += 1;
        }
        // Largest component wins; ties go to the earliest component, which
        // holds the lowest GPU id since `gpus` is id-ordered.
        let keep = (0..comps)
            .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
            .unwrap_or(0);
        let mut dropped = Vec::new();
        for (i, d) in gpus.iter().enumerate() {
            if comp[i] != keep {
                self.topo.fail_device(*d);
                self.health.mark_failed(*d);
                self.recovery_log.push(RecoveryEvent::DeviceFailed {
                    device: *d,
                    iteration,
                });
                dropped.push(*d);
            }
        }
        if !dropped.is_empty() {
            self.cost.bind_topology(&self.topo);
            self.emit(
                "session.stranded",
                jobj! {
                    "iteration" => iteration,
                    "dropped" => Value::arr(
                        dropped.iter().map(|d| d.0 as u64).collect::<Vec<_>>()
                    ),
                },
            );
        }
        dropped
    }

    /// Applies every scripted lifecycle event that has come due — spot
    /// revocations (drained proactively when the notice window allows),
    /// device and host arrivals, link restores — then finishes any
    /// quarantines whose probation expired, then attempts a promotion when
    /// capacity grew. Called at the top of every iteration; a session
    /// without a fault schedule is untouched (bit-identical to pre-elastic
    /// builds).
    fn process_lifecycle(&mut self) -> Result<(), FastTError> {
        let Some(faults) = self.config.faults.clone() else {
            return Ok(());
        };
        let iteration = self.iteration;
        let events = faults.lifecycle();
        if self.lifecycle_processed.len() < events.len() {
            self.lifecycle_processed.resize(events.len(), false);
        }
        let mut due: Vec<usize> = (0..events.len())
            .filter(|&i| !self.lifecycle_processed[i] && events[i].at_iter <= iteration)
            .collect();
        due.sort_by_key(|&i| (events[i].at_iter, i));
        for i in due {
            self.lifecycle_processed[i] = true;
            match events[i].kind {
                LifecycleKind::SpotRevocation { device, .. } => {
                    self.handle_revocation(device, events[i].deadline())?;
                }
                LifecycleKind::DeviceArrival { device }
                | LifecycleKind::DeviceRestore { device } => {
                    self.handle_arrival(device);
                }
                LifecycleKind::HostArrival { gpus } => {
                    self.handle_host_arrival(gpus);
                }
                LifecycleKind::LinkRestore { src, dst } => {
                    self.handle_link_restore(src, dst);
                }
            }
        }
        let mut ready: Vec<(u64, DeviceId)> = Vec::new();
        self.pending_restores.retain(|&(at, d)| {
            if at <= iteration {
                ready.push((at, d));
                false
            } else {
                true
            }
        });
        ready.sort();
        for (_, d) in ready {
            if self.finish_quarantine(d, &faults) {
                self.pending_promotion = true;
            }
        }
        if self.pending_promotion {
            self.try_promote()?;
        }
        Ok(())
    }

    /// A spot-revocation notice: log it, and when the notice window leaves
    /// room, drain the device *now* — blacklist it and re-plan over the
    /// survivors so the deadline passes without a crash (and without a
    /// single retry for that device). Zero-notice revocations take the
    /// ordinary crash-recovery path instead.
    fn handle_revocation(&mut self, device: DeviceId, deadline: u64) -> Result<(), FastTError> {
        let iteration = self.iteration;
        self.recovery_log.push(RecoveryEvent::RevocationNotice {
            device,
            iteration,
            deadline,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.revocation_notices");
        }
        self.emit(
            "session.revocation_notice",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "deadline" => deadline,
            },
        );
        if deadline <= iteration || self.topo.is_failed(device) {
            return Ok(());
        }
        self.topo.fail_device(device);
        self.health.mark_failed(device);
        self.cost.bind_topology(&self.topo);
        self.recovery_log
            .push(RecoveryEvent::Drained { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.drains");
        }
        self.emit(
            "session.drained",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "deadline" => deadline,
            },
        );
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "revocation_drain")
    }

    /// A device (re-)announced itself. Re-admission is explicit: the
    /// device enters quarantine (`Failed` → `Quarantined` in the
    /// [`HealthMap`]) and only rejoins the plannable capacity after
    /// `quarantine_iters` iterations of probation.
    fn handle_arrival(&mut self, device: DeviceId) {
        let iteration = self.iteration;
        if device.index() >= self.topo.device_count() || !self.topo.is_failed(device) {
            return; // unknown id, or already live: nothing to readmit
        }
        self.health.readmit(device);
        self.recovery_log
            .push(RecoveryEvent::Readmitted { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.quarantines");
        }
        self.emit(
            "session.quarantine",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "until" => iteration + self.config.quarantine_iters,
            },
        );
        self.pending_restores
            .push((iteration + self.config.quarantine_iters, device));
    }

    /// Ends a device's quarantine. Unless it died again or its server is
    /// partitioned mid-probation (in which case the re-admission is
    /// dropped and a fresh arrival must restart the path), the device
    /// rejoins the topology on probation (`Degraded`); the ordinary
    /// health sweep promotes it to `Healthy` once measurements normalize.
    /// Returns whether capacity actually grew.
    fn finish_quarantine(&mut self, device: DeviceId, faults: &FaultSchedule) -> bool {
        let iteration = self.iteration;
        if !matches!(self.health.health(device), DeviceHealth::Quarantined)
            || faults.crashed(device, iteration)
            || faults.is_partitioned(self.topo.server_of(device), iteration)
        {
            return false;
        }
        self.topo.restore_device(device);
        self.health.mark_degraded(device, 1.0);
        self.cost.bind_topology(&self.topo);
        self.recovery_log
            .push(RecoveryEvent::Restored { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.scale_ups");
        }
        self.emit(
            "session.scaled_up",
            jobj! {
                "device" => device.0 as u64,
                "iteration" => iteration,
                "gpus" => self.topo.gpu_count() as u64,
            },
        );
        true
    }

    /// A whole new server hot-added: fresh GPUs and a host join under
    /// stable new ids, healthy from the start — they have no failure
    /// history to quarantine.
    fn handle_host_arrival(&mut self, gpus: u16) {
        let iteration = self.iteration;
        let new_ids = self.topo.add_server(gpus);
        self.health.grow(self.topo.device_count());
        self.cost.bind_topology(&self.topo);
        if let Some(col) = &self.collector {
            col.metrics().inc("session.scale_ups");
        }
        for d in new_ids {
            self.recovery_log.push(RecoveryEvent::Restored {
                device: d,
                iteration,
            });
            self.emit(
                "session.scaled_up",
                jobj! {
                    "device" => d.0 as u64,
                    "iteration" => iteration,
                    "gpus" => self.topo.gpu_count() as u64,
                },
            );
        }
        self.pending_promotion = true;
    }

    /// A physical link came back: clear both directions of the blacklist,
    /// re-admit the hop in the health map, and re-trust its cost prior so
    /// planners route over it again.
    fn handle_link_restore(&mut self, src: DeviceId, dst: DeviceId) {
        let iteration = self.iteration;
        for (a, b) in [(src, dst), (dst, src)] {
            self.topo.restore_link(a, b);
            self.health.readmit_link(a, b);
            self.cost.trust_link(a, b);
        }
        self.cost.bind_topology(&self.topo);
        self.emit(
            "session.link_restored",
            jobj! {
                "src" => src.0 as u64,
                "dst" => dst.0 as u64,
                "iteration" => iteration,
            },
        );
        self.pending_promotion = true;
    }

    /// The promotion ladder (the growth mirror of
    /// [`Self::replan_and_degrade`]): re-plan over the enlarged survivor
    /// set and adopt the winner only when its probed **per-replica** time
    /// beats the incumbent's by the hysteresis margin. Per replica,
    /// because the session replicates the training graph once per live
    /// GPU — a plan over more GPUs does proportionally more work per
    /// iteration, so raw makespans are not comparable across replica
    /// counts. Hysteresis (a cooldown between attempts plus a minimum
    /// improvement) keeps spot churn from thrashing plans. Promotion is
    /// opportunistic: a planning dead end holds the incumbent instead of
    /// failing the iteration.
    fn try_promote(&mut self) -> Result<(), FastTError> {
        let iteration = self.iteration;
        if let Some(last) = self.last_promotion_attempt {
            if iteration < last + self.config.promote_cooldown_iters {
                return Ok(()); // still cooling down; the attempt stays pending
            }
        }
        self.pending_promotion = false;
        self.last_promotion_attempt = Some(iteration);
        let probe = self.probe_config();
        let incumbent_raw = self
            .current
            .simulate(&self.topo, &self.hw, &probe)
            .map(|t| t.makespan)
            .unwrap_or(f64::INFINITY);
        let incumbent = incumbent_raw / replicas_of(&self.current) as f64;
        let survivors = self.topo.gpu_count();
        let (mut merged, _) = self.plan_candidates_over_survivors(probe);
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, c) in merged.iter().enumerate() {
            let (Some(m), Some(p)) = (c.simulated, c.plan.as_ref()) else {
                continue;
            };
            let score = m / replicas_of(p) as f64;
            if best.is_none_or(|(_, s, _)| score < s) {
                best = Some((i, score, m));
            }
        }
        let adopt =
            best.filter(|&(_, score, _)| score < incumbent * (1.0 - self.config.promote_margin));
        let Some((i, score, raw)) = adopt else {
            if let Some(col) = &self.collector {
                col.metrics().inc("session.promotions_held");
            }
            self.emit(
                "session.promotion_held",
                jobj! {
                    "iteration" => iteration,
                    "survivors" => survivors as u64,
                    "incumbent" => incumbent,
                    "candidate" => best.map(|(_, s, _)| s).unwrap_or(f64::INFINITY),
                    "margin" => self.config.promote_margin,
                },
            );
            return Ok(());
        };
        let c = &mut merged[i];
        let kind = match c.kind {
            PlannerKind::StartStrategy => c.planner,
            _ => "replan",
        };
        self.rung = LadderRung::of_kind(kind);
        self.current = c.plan.take().expect("probed plan");
        self.measured = raw;
        self.recovery_log.push(RecoveryEvent::Promoted {
            survivors,
            kind,
            iteration,
        });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.promotions");
        }
        self.emit(
            "session.promoted",
            jobj! {
                "iteration" => iteration,
                "kind" => kind,
                "rung" => self.rung.label(),
                "survivors" => survivors as u64,
                "incumbent" => incumbent,
                "candidate" => score,
            },
        );
        Ok(())
    }

    /// Plans the full candidate ladder over the current survivor set.
    /// Stage 1 probes both data-parallel modes — the ring all-reduce over
    /// whoever is live and the PS funnel — whose feasibility picks the
    /// base graph exactly as session construction does (Sec. 5.2's rule).
    /// Stage 2 adds the fresh DPOS/OS-DPOS candidate, plus model
    /// parallelism as the last resort when DP no longer fits. Returns the
    /// merged candidates in ladder-preference order (re-plan, ring, PS,
    /// MP) along with the last non-DP planning error.
    fn plan_candidates_over_survivors(
        &mut self,
        probe: SimConfig,
    ) -> (Vec<CandidateOutcome>, Option<FastTError>) {
        let dp_portfolio = Portfolio::new()
            .with(Box::new(DataParallelPlanner::all_reduce()))
            .with(Box::new(DataParallelPlanner::default()));
        let mut dp_outcome = self.run_portfolio(&dp_portfolio, Some(probe.clone()));
        let ps_out = dp_outcome.candidates.pop().expect("portfolio of two");
        let ar_out = dp_outcome.candidates.pop().expect("portfolio of two");
        let dp_ok = ar_out.simulated.is_some() || ps_out.simulated.is_some();
        self.base_graph = [&ar_out, &ps_out]
            .iter()
            .find(|c| c.simulated.is_some())
            .and_then(|c| c.plan.as_ref())
            .map(|p| p.graph.clone())
            .unwrap_or_else(|| self.training_graph.clone());

        let mut portfolio = Portfolio::new().with(self.main_planner());
        if !dp_ok {
            portfolio.push(Box::new(ModelParallelPlanner));
        }
        let mut outcome = self.run_portfolio(&portfolio, Some(probe));
        self.adopt_candidate_cost(&mut outcome);
        let mut merged: Vec<CandidateOutcome> = Vec::with_capacity(4);
        let mut rest = outcome.candidates.drain(..);
        merged.push(rest.next().expect("main candidate"));
        merged.push(ar_out);
        merged.push(ps_out);
        merged.extend(rest);

        let mut last_err: Option<FastTError> = None;
        for c in merged.iter_mut() {
            // dp probe failures are expected (that is what mp is for) and
            // were never reported by the pre-portfolio recovery loop
            if !c.planner.starts_with("data_parallel") {
                if let Some(e) = c.error.take() {
                    last_err = Some(e);
                }
            }
        }
        (merged, last_err)
    }

    /// Graceful degradation (tentpole (d)): recomputes a planner candidate
    /// over the current (possibly shrunken) topology, probes it against the
    /// start-strategy fallbacks — data parallelism when it still fits, else
    /// model parallelism (a single-device plan in the 1-GPU limit) — and
    /// adopts whichever *measures* fastest; choosing a fallback over the
    /// candidate is the rollback the tentpole requires. Arbitration over
    /// the merged set keeps the ladder's preference order — re-plan, then
    /// ring all-reduce over the survivors, then the PS funnel, then model
    /// parallelism — by strict lowest-probed-time with ties to the earlier
    /// candidate.
    fn replan_and_degrade(
        &mut self,
        iteration: u64,
        reason: &'static str,
    ) -> Result<(), FastTError> {
        let survivors = self.topo.gpu_count();
        self.emit(
            "session.replan",
            jobj! {
                "iteration" => iteration,
                "reason" => reason,
                "survivors" => survivors as u64,
                "failed" => Value::arr(
                    self.topo
                        .failed_devices()
                        .iter()
                        .map(|d| d.0 as u64)
                        .collect::<Vec<_>>()
                ),
            },
        );
        if let Some(col) = &self.collector {
            col.metrics().inc("session.replans");
        }

        let probe = self.probe_config();
        let (mut merged, last_err) = self.plan_candidates_over_survivors(probe);
        let mut best: Option<usize> = None;
        for (i, c) in merged.iter().enumerate() {
            if let Some(m) = c.simulated {
                let better = match best {
                    Some(b) => m < merged[b].simulated.unwrap_or(f64::INFINITY),
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let (plan, kind, probe_measured) = match best {
            Some(i) => {
                let c = &mut merged[i];
                let kind = match c.kind {
                    PlannerKind::StartStrategy => c.planner,
                    _ => "replan",
                };
                (
                    c.plan.take().expect("probed plan"),
                    kind,
                    c.simulated.expect("probed time"),
                )
            }
            None => {
                // A plan that cannot be routed at all is not a planning
                // failure to retry — the cluster is out of usable wiring.
                return Err(match last_err {
                    Some(FastTError::Sim(SimError::Unreachable { .. })) => {
                        FastTError::ClusterExhausted
                    }
                    Some(e) => e,
                    None => FastTError::ClusterExhausted,
                });
            }
        };
        if kind != "replan" {
            if let Some(col) = &self.collector {
                col.metrics().inc("session.fallbacks");
                col.metrics().inc("session.degraded_mode");
            }
            self.emit(
                "session.fallback",
                jobj! {
                    "iteration" => iteration,
                    "kind" => kind,
                    "reason" => reason,
                    "measured" => probe_measured,
                },
            );
            // The ladder stepped below a fresh DPOS/OS-DPOS plan: the
            // session is in a degraded operating mode (shrunk ring, PS
            // funnel, or single-server fallback).
            self.emit(
                "session.degraded_mode",
                jobj! {
                    "iteration" => iteration,
                    "mode" => kind,
                    "reason" => reason,
                    "survivors" => survivors as u64,
                },
            );
            self.recovery_log.push(RecoveryEvent::Fallback { kind });
        }
        self.recovery_log
            .push(RecoveryEvent::Replanned { survivors, kind });
        self.rung = LadderRung::of_kind(kind);
        self.current = plan;
        self.measured = probe_measured;
        if let Some(col) = &self.collector {
            col.metrics().inc("session.recoveries");
        }
        self.emit(
            "session.recovered",
            jobj! {
                "iteration" => iteration,
                "kind" => kind,
                "survivors" => survivors as u64,
                "measured" => probe_measured,
            },
        );
        self.recovery_log
            .push(RecoveryEvent::Recovered { iteration });
        Ok(())
    }

    /// Runs `iters` simulated training iterations of the current plan,
    /// feeding every trace into the cost models, and returns the average
    /// iteration time. Faults are absorbed by the resilience loop
    /// (bounded retries, blacklisting, re-planning).
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` (a
    /// zero-iteration "measurement" would propagate NaN into the cost
    /// models); otherwise propagates unrecoverable simulator failures.
    pub fn profile(&mut self, iters: u32) -> Result<f64, FastTError> {
        if iters == 0 {
            return Err(FastTError::InvalidArgument(
                "profile() needs at least one iteration",
            ));
        }
        let mut total = 0.0;
        for _ in 0..iters {
            total += self.run_iteration(true)?;
        }
        Ok(total / iters as f64)
    }

    /// Computes a fresh candidate plan from the base graph with the current
    /// cost models (OS-DPOS when splitting is enabled, DPOS otherwise),
    /// through the session's plan cache.
    pub fn compute_candidate(&mut self) -> Plan {
        let portfolio = Portfolio::new().with(self.main_planner());
        let mut outcome = self.run_portfolio(&portfolio, None);
        self.adopt_candidate_cost(&mut outcome);
        outcome
            .into_winning_plan()
            .expect("DPOS/OS-DPOS planning is total")
    }

    /// Computes a plain-DPOS candidate (no operation splitting) from the
    /// base graph with the current cost models — the "No split" arm of the
    /// paper's Table 6 ablation. Traced through the attached collector
    /// exactly like [`Self::compute_candidate`].
    pub fn compute_candidate_no_split(&mut self) -> Plan {
        let portfolio = Portfolio::new().with(Box::new(DposPlanner));
        let outcome = self.run_portfolio(&portfolio, None);
        outcome.into_winning_plan().expect("DPOS planning is total")
    }

    /// Computes the low-risk candidate: keep the current plan's graph and
    /// placement, only enforce the execution order the strategy calculator
    /// derives for it (the ordering-only lever of the paper's Fig. 2).
    /// Returns `None` when order enforcement is disabled.
    pub fn compute_order_candidate(&self) -> Option<Plan> {
        if !self.config.enable_order {
            return None;
        }
        let mut ctx =
            PlanningContext::new(&self.base_graph, &self.topo, &self.hw, self.cost.clone())
                .with_current(&self.current);
        OrderOnlyPlanner.plan(&mut ctx).ok()
    }

    /// Replaces the hardware model mid-session (used by tests and the drift
    /// experiments: real clusters change behaviour — thermal throttling,
    /// congestion — and the paper's periodic re-profiling exists to absorb
    /// exactly that).
    pub fn set_hardware(&mut self, hw: HardwarePerf) {
        self.hw = hw;
    }

    /// The paper's **normal training stage** (Sec. 4): trains for `iters`
    /// iterations, profiling every `reprofile_every`-th iteration; when the
    /// profiled execution times have drifted beyond the stability threshold,
    /// the cost models are refreshed and new strategies are recalculated and
    /// activated (with the same rollback protection as pre-training).
    ///
    /// Returns the average per-iteration time over the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` or
    /// `reprofile_every == 0`; otherwise propagates unrecoverable simulator
    /// failures of the active plan.
    pub fn train_normal(&mut self, iters: u32, reprofile_every: u32) -> Result<f64, FastTError> {
        if iters == 0 || reprofile_every == 0 {
            return Err(FastTError::InvalidArgument(
                "train_normal() needs iters > 0 and reprofile_every > 0",
            ));
        }
        let mut total = 0.0;
        let mut since_profile = 0u32;
        let mut done = 0u32;
        while done < iters {
            let chunk = reprofile_every.min(iters - done);
            // non-profiled iterations: run without feeding the cost models
            for _ in 0..chunk {
                total += self.run_iteration(false)?;
            }
            done += chunk;
            since_profile += chunk;
            if since_profile >= reprofile_every && done < iters {
                since_profile = 0;
                // periodic profiling: one profiled iteration; if times
                // drifted, refresh the models and reconsider the strategy
                self.cost.snapshot();
                let measured = self.profile(1)?;
                total += measured;
                done += 1;
                if !self.cost.is_stable(self.config.stability_eps) {
                    self.emit(
                        "session.drift",
                        jobj! {
                            "iteration" => self.iteration,
                            "drift" => self.cost.comp.max_drift(),
                            "eps" => self.config.stability_eps,
                        },
                    );
                    if let Some(col) = &self.collector {
                        col.metrics().inc("session.drift_detected");
                    }
                    self.measured = self.profile(self.config.profile_iters)?;
                    let candidate = self.compute_candidate();
                    self.emit(
                        "session.candidate",
                        jobj! {
                            "kind" => "redeploy",
                            "stage" => "normal",
                            "est_finish" => candidate.est_finish,
                            "measured" => self.measured,
                        },
                    );
                    if candidate.est_finish < self.measured {
                        let est = candidate.est_finish;
                        let previous = std::mem::replace(&mut self.current, candidate);
                        let prev_measured = self.measured;
                        match self.profile(self.config.profile_iters) {
                            Ok(m) if m <= prev_measured => {
                                self.measured = m;
                                self.rung = LadderRung::Replanned;
                                self.emit(
                                    "session.activation",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Ok(m) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Err(e) if !recoverable(&e) => return Err(e),
                            Err(_) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "failed" => true,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(total / done.max(1) as f64)
    }

    /// Runs the full pre-training workflow: profile → update cost models →
    /// recompute strategy → activate/rollback → repeat until the cost models
    /// stabilize or `max_rounds` is hit.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures of the active plan.
    pub fn pre_train(&mut self) -> Result<PreTrainReport, FastTError> {
        let mut report = PreTrainReport {
            rounds: 0,
            strategy_calc_secs: 0.0,
            activations: 0,
            rollbacks: 0,
            final_iter_time: f64::NAN,
            history: Vec::new(),
        };

        self.measured = self.profile(self.config.profile_iters)?;
        report.history.push(self.measured);

        for _ in 0..self.config.max_rounds {
            report.rounds += 1;
            self.cost.snapshot();
            self.emit(
                "session.round",
                jobj! {
                    "round" => report.rounds as u64,
                    "measured" => self.measured,
                    "drift" => self.cost.comp.max_drift(),
                },
            );

            // Two candidates per round, planned concurrently as one
            // portfolio: the full DPOS/OS-DPOS redeployment and the
            // low-risk "enforce an order on the current placement" (the
            // paper's ordering lever, Fig. 2); tried best-estimate first.
            let t0 = Instant::now();
            let mut portfolio = Portfolio::new().with(self.main_planner());
            if self.config.enable_order {
                portfolio.push(Box::new(OrderOnlyPlanner));
            }
            let mut outcome = self.run_portfolio(&portfolio, None);
            self.adopt_candidate_cost(&mut outcome);
            let mut candidates: Vec<(Plan, &'static str)> = outcome
                .candidates
                .iter_mut()
                .filter_map(|c| {
                    let kind = match c.kind {
                        PlannerKind::OrderOnly => "order",
                        _ => "redeploy",
                    };
                    c.plan.take().map(|p| (p, kind))
                })
                .collect();
            candidates.sort_by(|a, b| a.0.est_finish.total_cmp(&b.0.est_finish));
            report.strategy_calc_secs += t0.elapsed().as_secs_f64();
            for (candidate, kind) in &candidates {
                self.emit(
                    "session.candidate",
                    jobj! {
                        "round" => report.rounds as u64,
                        "kind" => *kind,
                        "stage" => "pre_train",
                        "est_finish" => candidate.est_finish,
                        "measured" => self.measured,
                        "splits" => candidate.splits.len() as u64,
                    },
                );
            }

            // Activate only when the estimate beats the measured time of the
            // current strategy (Sec. 4, "Strategy Calculator"); roll back
            // when the measured time regresses.
            let mut activated = false;
            for (mut candidate, kind) in candidates {
                if candidate.est_finish >= self.measured {
                    continue;
                }
                self.arbitrate_order(&mut candidate);
                if kind == "order" && candidate.order.is_none() {
                    // the order was the candidate's whole content
                    continue;
                }
                let est = candidate.est_finish;
                let previous = std::mem::replace(&mut self.current, candidate);
                let prev_measured = self.measured;
                match self.profile(self.config.profile_iters) {
                    Ok(new_measured) if new_measured <= prev_measured => {
                        self.measured = new_measured;
                        report.activations += 1;
                        activated = true;
                        if kind == "redeploy" {
                            self.rung = LadderRung::Replanned;
                        }
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.activations");
                        }
                        self.emit(
                            "session.activation",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                        break;
                    }
                    Ok(new_measured) => {
                        // measured regression: roll back, recording how far
                        // off the estimate was
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                    }
                    Err(e) if !recoverable(&e) => return Err(e),
                    Err(_) => {
                        // the new plan failed outright (e.g. OOM): roll back
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "failed" => true,
                            },
                        );
                    }
                }
            }
            if !activated {
                // keep profiling the current plan so the models keep filling
                self.measured = self.profile(self.config.profile_iters)?;
            }
            report.history.push(self.measured);

            if self.cost.is_stable(self.config.stability_eps) && report.rounds >= 2 {
                break;
            }
        }

        report.final_iter_time = self.measured;
        self.emit(
            "session.pre_train_done",
            jobj! {
                "rounds" => report.rounds as u64,
                "activations" => report.activations as u64,
                "rollbacks" => report.rollbacks as u64,
                "final_iter_time" => report.final_iter_time,
                "strategy_calc_secs" => report.strategy_calc_secs,
            },
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_models::Model;

    fn quick_config() -> SessionConfig {
        SessionConfig {
            profile_iters: 2,
            max_rounds: 3,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn starts_data_parallel_when_model_fits() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        // DP base graph has two replicas of every op
        assert!(s.base_graph.op_count() > 2 * g.op_count() - 10);
        assert!(s.base_graph.by_name("rep1/conv1").is_some());
    }

    #[test]
    fn falls_back_to_model_parallel_for_huge_models() {
        // A batch-32 BERT-large replica does not fit on one V100 (Table 3's
        // single-GPU OOM), so DP must be rejected and model parallelism
        // chosen. (NMT baselines keep variables on GPU 0.)
        let g = Model::BertLarge.training_graph(32);
        let topo = Topology::single_server(2);
        let cfg = SessionConfig {
            dp_ps: Some(DeviceId(0)),
            ..quick_config()
        };
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), cfg).unwrap();
        assert!(s.base_graph.by_name("rep0/layer0/attn/q").is_none());
        assert!(s.base_graph.by_name("layer0/attn/q").is_some());
        assert!(s.current_plan().placement.devices_used().len() >= 2);
    }

    #[test]
    fn pre_train_improves_or_matches_start() {
        let g = Model::LeNet.training_graph(64);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let first = s.profile(2).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.rounds >= 1);
        // rollback protection: the final measured time never ends up
        // materially worse than the data-parallel start
        assert!(
            report.final_iter_time <= first * 1.10,
            "final {} vs start {first}",
            report.final_iter_time
        );
    }

    #[test]
    fn profiling_fills_cost_models() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        assert!(!s.cost.covers(&s.current.graph.clone()));
        s.profile(1).unwrap();
        let g_now = s.current.graph.clone();
        assert!(s.cost.covers(&g_now));
    }

    #[test]
    fn normal_training_runs_requested_iterations() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let avg = s.train_normal(20, 5).unwrap();
        assert!(avg.is_finite() && avg > 0.0);
    }

    #[test]
    fn normal_training_adapts_to_hardware_drift() {
        // Slow the "hardware" down mid-training: the periodic profiler must
        // notice the drift and the session must keep producing valid plans
        // at the new speed (times roughly scale with the slowdown).
        let g = Model::AlexNet.training_graph(16);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let fast = s.train_normal(10, 3).unwrap();

        let mut slow_hw = HardwarePerf::new();
        slow_hw.launch_overhead *= 50.0; // dispatch got much slower
        s.set_hardware(slow_hw);
        let slow = s.train_normal(10, 3).unwrap();
        assert!(
            slow > fast,
            "slower hardware must yield slower iterations ({slow} vs {fast})"
        );
        // the session's plan is still valid and executable after adaptation
        let plan = s.current_plan();
        let topo = Topology::single_server(2);
        plan.placement.validate(&plan.graph, &topo).unwrap();
    }

    #[test]
    fn unreachable_between_dead_endpoints_is_cluster_exhausted() {
        // Satellite: when the simulator reports an unroutable pair and both
        // endpoints are already blacklisted, recovery has nothing left to
        // cut — the session must surface the typed dead end, not loop.
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.topo.fail_device(DeviceId(0));
        s.topo.fail_device(DeviceId(1));
        let err = s
            .recover_from_unreachable(DeviceId(0), DeviceId(1))
            .unwrap_err();
        assert!(matches!(err, FastTError::ClusterExhausted));
    }

    #[test]
    fn stranded_gpus_outside_the_largest_component_are_dropped() {
        // Sever every directed hop between server 0 and server 1 (hosts
        // included): the four GPUs split 2/2, and the tie must go to the
        // component holding the lowest device id.
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::multi_server(2, 2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let ids: Vec<DeviceId> = s.topo.device_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a != b && s.topo.server_of(a) != s.topo.server_of(b) {
                    s.topo.fail_link(a, b);
                }
            }
        }
        let dropped = s.drop_stranded_gpus(0);
        assert_eq!(dropped, vec![DeviceId(2), DeviceId(3)]);
        assert!(s.topo.is_failed(DeviceId(2)) && s.topo.is_failed(DeviceId(3)));
        assert!(!s.topo.is_failed(DeviceId(0)) && !s.topo.is_failed(DeviceId(1)));
        // each drop is logged so same-seed runs replay identically
        assert_eq!(
            s.recovery_log()
                .iter()
                .filter(|e| matches!(e, RecoveryEvent::DeviceFailed { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn strategy_calc_time_is_recorded() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.strategy_calc_secs > 0.0);
        assert_eq!(report.history.len() as u32, report.rounds + 1);
    }
}
