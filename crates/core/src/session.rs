//! The training-session workflow (Sec. 4 of the paper).
//!
//! FastT bootstraps by running the model under a start strategy (data
//! parallelism when the model fits on one GPU, model parallelism otherwise),
//! profiling each iteration to update the cost models, recomputing
//! strategies with DPOS / OS-DPOS, activating a new strategy when its
//! estimate beats the current measured time, and **rolling back** when the
//! measured per-iteration time under the new strategy is worse than before.
//! Pre-training ends when the cost models stabilize.

use crate::error::FastTError;
use crate::os_dpos::{dpos_plan, dpos_plan_traced, os_dpos, os_dpos_traced, OsDposOptions};
use crate::strategy::{data_parallel_plan, data_parallel_plan_on, model_parallel_plan, Plan};
use fastt_cluster::{DeviceHealth, DeviceId, HealthMap, Topology};
use fastt_cost::CostModels;
use fastt_graph::{replicate_grouped, Graph, ReplicationMode};
use fastt_sim::{FaultSchedule, HardwarePerf, RunTrace, SimConfig, SimError};
use fastt_telemetry::{jobj, Collector, Value};
use std::sync::Arc;
use std::time::Instant;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Profiled iterations per bootstrap round.
    pub profile_iters: u32,
    /// Maximum bootstrap rounds before pre-training is forced to end.
    pub max_rounds: u32,
    /// Relative cost-model drift below which the models count as stable.
    pub stability_eps: f64,
    /// Simulated execution-time noise (matches real profiling variance).
    pub jitter_pct: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
    /// Enable OS-DPOS operation splitting (disable for the paper's
    /// "No split" ablation, Table 6).
    pub enable_split: bool,
    /// Enable order enforcement (disable for the paper's Fig. 2 baseline).
    pub enable_order: bool,
    /// Where the data-parallel start strategy keeps shared variables:
    /// `None` follows TF-slim (the CPU host when the topology has one);
    /// `Some(d)` pins the parameter server to device `d` (the convention
    /// for the non-slim NMT baselines is GPU 0).
    pub dp_ps: Option<DeviceId>,
    /// Scripted infrastructure faults injected into every simulated
    /// iteration (see [`FaultSchedule`]); `None` trains on a healthy
    /// cluster with behaviour bit-identical to a fault-free build.
    pub faults: Option<Arc<FaultSchedule>>,
    /// Transient-failure retries per iteration before the failing device is
    /// blacklisted and the session re-plans.
    pub max_transient_retries: u32,
    /// Base of the exponential retry backoff, in seconds: attempt `k`
    /// backs off `retry_backoff_base * 2^k`. Reported through
    /// `session.retry` telemetry (the simulated cluster does not actually
    /// sleep).
    pub retry_backoff_base: f64,
    /// Measured-over-predicted per-device duration ratio above which a
    /// device is flagged as degraded (`health.degraded`).
    pub degraded_slowdown: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            profile_iters: 3,
            max_rounds: 6,
            stability_eps: 0.05,
            jitter_pct: 0.02,
            seed: 7,
            enable_split: true,
            enable_order: true,
            dp_ps: None,
            faults: None,
            max_transient_retries: 4,
            retry_backoff_base: 0.05,
            degraded_slowdown: 1.5,
        }
    }
}

/// One entry in the session's recovery log: a pure record of every
/// resilience decision, in the order taken. Deterministic — two sessions
/// with the same seed, config, and fault schedule produce identical logs.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A transient failure was retried (with exponential backoff).
    Retry {
        /// The hiccupping device.
        device: DeviceId,
        /// The iteration being attempted.
        iteration: u64,
        /// The failed attempt number (0-based).
        attempt: u32,
    },
    /// A device was blacklisted (crash, or transient failures past the
    /// retry budget).
    DeviceFailed {
        /// The blacklisted device.
        device: DeviceId,
        /// The iteration at which it was observed dead.
        iteration: u64,
    },
    /// A device was flagged as running slower than the cost models predict.
    Degraded {
        /// The straggling device.
        device: DeviceId,
        /// Measured-over-predicted duration ratio.
        slowdown: f64,
    },
    /// A recovery fell back to a start strategy (`"data_parallel"` or
    /// `"model_parallel"`) because the planner candidate was infeasible or
    /// slower.
    Fallback {
        /// Which fallback won.
        kind: &'static str,
    },
    /// The session adopted a new plan over the surviving topology.
    Replanned {
        /// Live GPUs at re-planning time.
        survivors: usize,
        /// `"replan"` (fresh DPOS/OS-DPOS candidate) or the fallback kind.
        kind: &'static str,
    },
    /// Recovery completed; training continues.
    Recovered {
        /// The iteration at which training resumed.
        iteration: u64,
    },
}

/// What happened during pre-training (feeds the paper's Table 4 timing and
/// the speed numbers of Tables 1–2).
#[derive(Debug, Clone)]
pub struct PreTrainReport {
    /// Bootstrap rounds executed.
    pub rounds: u32,
    /// Wall-clock seconds spent inside DPOS / OS-DPOS (strategy
    /// calculation only, excluding profiling).
    pub strategy_calc_secs: f64,
    /// Strategy switches that survived measurement.
    pub activations: u32,
    /// Strategy switches that were rolled back.
    pub rollbacks: u32,
    /// Measured per-iteration time after pre-training.
    pub final_iter_time: f64,
    /// Measured per-iteration time after each round.
    pub history: Vec<f64>,
}

/// A FastT-managed training session over the simulated cluster.
#[derive(Debug)]
pub struct TrainingSession {
    /// The base graph strategies are computed from: the data-parallel
    /// replica graph when DP fits, otherwise the raw training graph
    /// (Sec. 5.2's input-graph rule). Rebuilt over the survivors after a
    /// device failure.
    base_graph: Graph,
    /// The raw (unreplicated) training graph, kept so re-planning after a
    /// failure can rebuild the base graph over a smaller cluster.
    training_graph: Graph,
    /// Whether the start strategy was data parallelism.
    started_dp: bool,
    topo: Topology,
    hw: HardwarePerf,
    config: SessionConfig,
    /// The adaptive cost models, learned from profiled iterations.
    pub cost: CostModels,
    current: Plan,
    measured: f64,
    iteration: u64,
    /// Observed per-device health, inferred from profiled traces.
    health: HealthMap,
    /// Every resilience decision taken, in order (see [`RecoveryEvent`]).
    recovery_log: Vec<RecoveryEvent>,
    collector: Option<Arc<Collector>>,
}

/// Whether a profiling error is specific to the plan being measured (so a
/// rollback to the previous plan can recover) rather than a cluster-wide
/// dead end that must propagate.
fn recoverable(e: &FastTError) -> bool {
    matches!(e, FastTError::Sim(_))
}

impl TrainingSession {
    /// Creates a session for a (unreplicated) training graph.
    ///
    /// Chooses the start strategy exactly as the paper does: replicate the
    /// model over all devices and start data-parallel if that fits in
    /// memory; otherwise fall back to greedy model parallelism on the raw
    /// graph (Sec. 4 / Sec. 5.2).
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::NoFeasibleStart`] when neither start strategy
    /// fits in device memory.
    pub fn new(
        training_graph: &Graph,
        topo: Topology,
        hw: HardwarePerf,
        config: SessionConfig,
    ) -> Result<Self, FastTError> {
        let groups: Vec<u16> = topo.gpu_ids().map(|d| topo.server_of(d)).collect();
        let rep = replicate_grouped(training_graph, &groups, ReplicationMode::ParameterServer)?;
        let dp = match config.dp_ps {
            Some(d) => data_parallel_plan_on(&rep, &topo, d),
            None => data_parallel_plan(&rep, &topo),
        };
        let probe = SimConfig::default();
        let (base_graph, start, started_dp) = match dp.simulate(&topo, &hw, &probe) {
            Ok(_) => (rep.graph.clone(), dp, true),
            Err(dp_err @ SimError::Oom { .. }) => {
                let mp = model_parallel_plan(training_graph, &topo, &hw);
                match mp.simulate(&topo, &hw, &probe) {
                    Ok(_) => (training_graph.clone(), mp, false),
                    Err(mp_err) => {
                        return Err(FastTError::NoFeasibleStart {
                            dp: dp_err,
                            mp: mp_err,
                        })
                    }
                }
            }
            Err(e) => return Err(e.into()),
        };
        let health = HealthMap::new(topo.device_count());
        Ok(TrainingSession {
            base_graph,
            training_graph: training_graph.clone(),
            started_dp,
            topo,
            hw,
            config,
            cost: CostModels::new(),
            current: start,
            measured: f64::INFINITY,
            iteration: 0,
            health,
            recovery_log: Vec::new(),
            collector: None,
        })
    }

    /// Attaches a telemetry collector to the whole session: lifecycle
    /// events (`session.*`), scheduler decision traces (`dpos.*`),
    /// simulator summaries (`sim.*`), and cost-model accuracy (`cost.*`)
    /// all flow through it. Without a collector the session is untouched.
    pub fn attach_collector(&mut self, collector: Arc<Collector>) {
        self.cost.set_collector(collector.clone());
        collector.emit(
            "session.start",
            jobj! {
                "devices" => self.topo.device_count() as u64,
                "gpus" => self.topo.gpu_count() as u64,
                "ops" => self.base_graph.op_count() as u64,
                "started_dp" => self.started_dp,
                "est_finish" => self.current.est_finish,
            },
        );
        self.collector = Some(collector);
    }

    /// The attached telemetry collector, if any.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    fn emit(&self, kind: &str, fields: Value) {
        if let Some(col) = &self.collector {
            col.emit(kind, fields);
        }
    }

    /// The currently active plan.
    pub fn current_plan(&self) -> &Plan {
        &self.current
    }

    /// Whether the session's start strategy was data parallelism (false =
    /// the model was too large and model parallelism was used, Sec. 4).
    pub fn started_data_parallel(&self) -> bool {
        self.started_dp
    }

    /// Last measured average per-iteration time.
    pub fn measured_iter_time(&self) -> f64 {
        self.measured
    }

    /// The (possibly shrunken) topology the session is training on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Observed per-device health, inferred from profiled traces.
    pub fn health(&self) -> &HealthMap {
        &self.health
    }

    /// Every resilience decision taken so far, in order. Deterministic:
    /// same seed + same fault schedule ⇒ identical log.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// Training iterations executed so far (profiled and unprofiled).
    pub fn iterations_run(&self) -> u64 {
        self.iteration
    }

    /// The simulation parameters for the current iteration. `attempt` only
    /// matters under injected profile-failure faults.
    fn sim_config(&self, attempt: u32) -> SimConfig {
        SimConfig {
            jitter_pct: self.config.jitter_pct,
            seed: self.config.seed,
            iteration: self.iteration,
            collector: self.collector.clone(),
            faults: self.config.faults.clone(),
            attempt,
            ..SimConfig::default()
        }
    }

    /// Probes a plan with one simulated iteration at the current position
    /// (faults included, so an infeasible-under-current-faults plan fails
    /// here instead of after activation). `attempt = u32::MAX` exempts the
    /// probe from transient profile-failure windows — a probe is a planning
    /// query, not a profiling run, and recovery must not deadlock on them.
    fn probe_plan(&self, plan: &Plan) -> Result<f64, SimError> {
        let cfg = self.sim_config(u32::MAX);
        plan.simulate(&self.topo, &self.hw, &cfg)
            .map(|t| t.makespan)
    }

    /// Runs one training iteration of the current plan, absorbing faults:
    /// transient failures are retried with exponential backoff, crashes and
    /// exhausted retry budgets blacklist the device and re-plan over the
    /// survivors, and memory-pressure OOM falls back to a cheaper plan.
    /// On success the iteration counter advances and (when `feed_cost`) the
    /// trace is fed to the cost models.
    fn run_iteration(&mut self, feed_cost: bool) -> Result<f64, FastTError> {
        let mut pressure_replans = 0u32;
        loop {
            let mut attempt = 0u32;
            let outcome = loop {
                let cfg = self.sim_config(attempt);
                match self.current.simulate(&self.topo, &self.hw, &cfg) {
                    Err(SimError::Transient {
                        device, iteration, ..
                    }) if attempt < self.config.max_transient_retries => {
                        let backoff =
                            self.config.retry_backoff_base * f64::powi(2.0, attempt as i32);
                        self.recovery_log.push(RecoveryEvent::Retry {
                            device,
                            iteration,
                            attempt,
                        });
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.retries");
                        }
                        self.emit(
                            "session.retry",
                            jobj! {
                                "device" => device.0 as u64,
                                "iteration" => iteration,
                                "attempt" => attempt as u64,
                                "backoff_secs" => backoff,
                            },
                        );
                        attempt += 1;
                    }
                    other => break other,
                }
            };
            match outcome {
                Ok(trace) => {
                    if feed_cost {
                        self.check_health(&trace);
                        self.cost.update_from_trace(&self.current.graph, &trace);
                    }
                    self.iteration += 1;
                    return Ok(trace.makespan);
                }
                Err(SimError::Transient {
                    device,
                    iteration,
                    attempt,
                }) => {
                    // Retry budget spent: the hiccup is persistent enough to
                    // count as a failure — blacklist and re-plan. If that
                    // device was the last one, surface the retry story.
                    self.recover_from_failure(device, iteration)
                        .map_err(|e| match e {
                            FastTError::ClusterExhausted => FastTError::RetriesExhausted {
                                device,
                                attempts: attempt + 1,
                            },
                            other => other,
                        })?;
                }
                Err(SimError::DeviceCrash { device, iteration }) => {
                    self.recover_from_failure(device, iteration)?;
                }
                Err(oom @ SimError::Oom { .. }) => {
                    // Under an injected memory-pressure spike, degrade to a
                    // plan that fits the reduced capacity (once per
                    // iteration); a genuine OOM propagates as before.
                    let device = match &oom {
                        SimError::Oom { device, .. } => *device,
                        _ => unreachable!(),
                    };
                    let under_pressure = self
                        .config
                        .faults
                        .as_ref()
                        .map(|f| f.mem_reserved(device, self.iteration) > 0)
                        .unwrap_or(false);
                    if under_pressure && pressure_replans == 0 {
                        pressure_replans += 1;
                        self.replan_and_degrade(self.iteration, "mem_pressure")?;
                    } else {
                        return Err(oom.into());
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Health detection (tentpole (a)): compares each device's measured op
    /// durations in `trace` against the cost models' *pre-update*
    /// predictions; a device running `degraded_slowdown`× slower than
    /// predicted is flagged (`health.degraded`), and unflagged once the
    /// ratio normalizes (the adaptive models absorb persistent slowdowns,
    /// so the flag marks the transition, not the steady state).
    fn check_health(&mut self, trace: &RunTrace) {
        let n = self.topo.device_count();
        let mut measured = vec![0.0f64; n];
        let mut predicted = vec![0.0f64; n];
        for r in &trace.op_records {
            if r.start < 0.0 || r.device.index() >= n {
                continue;
            }
            let name = &self.current.graph.op_ref(r.op).name;
            if let Some(p) = self.cost.comp.get(name, r.device) {
                measured[r.device.index()] += r.duration();
                predicted[r.device.index()] += p;
            }
        }
        for d in self.topo.gpu_ids().collect::<Vec<_>>() {
            let (m, p) = (measured[d.index()], predicted[d.index()]);
            if p <= 1e-12 {
                continue;
            }
            let ratio = m / p;
            let was_degraded = matches!(self.health.health(d), DeviceHealth::Degraded { .. });
            if ratio >= self.config.degraded_slowdown {
                if !was_degraded {
                    self.recovery_log.push(RecoveryEvent::Degraded {
                        device: d,
                        slowdown: ratio,
                    });
                    if let Some(col) = &self.collector {
                        col.metrics().inc("health.degraded");
                    }
                    self.emit(
                        "health.degraded",
                        jobj! {
                            "device" => d.0 as u64,
                            "iteration" => self.iteration,
                            "slowdown" => ratio,
                        },
                    );
                }
                self.health.mark_degraded(d, ratio);
            } else if was_degraded {
                self.health.mark_healthy(d);
                self.emit(
                    "health.restored",
                    jobj! {
                        "device" => d.0 as u64,
                        "iteration" => self.iteration,
                        "slowdown" => ratio,
                    },
                );
            }
        }
    }

    /// Restores `previous` as the active plan after a measured regression —
    /// unless a device failed while the candidate was being measured, in
    /// which case `previous` may reference blacklisted devices and the
    /// recovery plan installed by [`Self::replan_and_degrade`] stays active.
    fn roll_back_to(&mut self, previous: Plan) {
        let stale = previous
            .placement
            .devices_used()
            .iter()
            .any(|d| self.topo.is_failed(*d));
        if !stale {
            self.current = previous;
        }
    }

    /// Re-planning (tentpole (b)): blacklists `device`, then rebuilds the
    /// plan over the surviving topology.
    fn recover_from_failure(&mut self, device: DeviceId, iteration: u64) -> Result<(), FastTError> {
        self.topo.fail_device(device);
        self.health.mark_failed(device);
        self.recovery_log
            .push(RecoveryEvent::DeviceFailed { device, iteration });
        if let Some(col) = &self.collector {
            col.metrics().inc("session.device_failures");
        }
        if self.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        self.replan_and_degrade(iteration, "device_failed")
    }

    /// Graceful degradation (tentpole (d)): recomputes a planner candidate
    /// over the current (possibly shrunken) topology, probes it against the
    /// start-strategy fallbacks — data parallelism when it still fits, else
    /// model parallelism (a single-device plan in the 1-GPU limit) — and
    /// adopts whichever *measures* fastest; choosing a fallback over the
    /// candidate is the rollback the tentpole requires.
    fn replan_and_degrade(
        &mut self,
        iteration: u64,
        reason: &'static str,
    ) -> Result<(), FastTError> {
        let survivors = self.topo.gpu_count();
        self.emit(
            "session.replan",
            jobj! {
                "iteration" => iteration,
                "reason" => reason,
                "survivors" => survivors as u64,
                "failed" => Value::arr(
                    self.topo
                        .failed_devices()
                        .iter()
                        .map(|d| d.0 as u64)
                        .collect::<Vec<_>>()
                ),
            },
        );
        if let Some(col) = &self.collector {
            col.metrics().inc("session.replans");
        }

        // Rebuild the base graph over the survivors, preferring the replica
        // graph exactly as session construction does (Sec. 5.2's rule).
        let groups: Vec<u16> = self
            .topo
            .gpu_ids()
            .map(|d| self.topo.server_of(d))
            .collect();
        let rep = replicate_grouped(
            &self.training_graph,
            &groups,
            ReplicationMode::ParameterServer,
        )?;
        let dp = match self.config.dp_ps {
            Some(d) if !self.topo.is_failed(d) => data_parallel_plan_on(&rep, &self.topo, d),
            _ => data_parallel_plan(&rep, &self.topo),
        };
        let dp_measured = self.probe_plan(&dp).ok();
        self.base_graph = if dp_measured.is_some() {
            rep.graph.clone()
        } else {
            self.training_graph.clone()
        };

        let candidate = self.compute_candidate();
        let mut best: Option<(Plan, &'static str, f64)> = None;
        let mut last_err: Option<FastTError> = None;
        match self.probe_plan(&candidate) {
            Ok(m) => best = Some((candidate, "replan", m)),
            Err(e) => last_err = Some(e.into()),
        }
        if let Some(m) = dp_measured {
            if best.as_ref().map(|(_, _, b)| m < *b).unwrap_or(true) {
                best = Some((dp, "data_parallel", m));
            }
        } else {
            let mp = model_parallel_plan(&self.training_graph, &self.topo, &self.hw);
            match self.probe_plan(&mp) {
                Ok(m) => {
                    if best.as_ref().map(|(_, _, b)| m < *b).unwrap_or(true) {
                        best = Some((mp, "model_parallel", m));
                    }
                }
                Err(e) => last_err = Some(e.into()),
            }
        }
        let (plan, kind, probe_measured) = match best {
            Some(b) => b,
            None => return Err(last_err.unwrap_or(FastTError::ClusterExhausted)),
        };
        if kind != "replan" {
            if let Some(col) = &self.collector {
                col.metrics().inc("session.fallbacks");
            }
            self.emit(
                "session.fallback",
                jobj! {
                    "iteration" => iteration,
                    "kind" => kind,
                    "reason" => reason,
                    "measured" => probe_measured,
                },
            );
            self.recovery_log.push(RecoveryEvent::Fallback { kind });
        }
        self.recovery_log
            .push(RecoveryEvent::Replanned { survivors, kind });
        self.current = plan;
        self.measured = probe_measured;
        if let Some(col) = &self.collector {
            col.metrics().inc("session.recoveries");
        }
        self.emit(
            "session.recovered",
            jobj! {
                "iteration" => iteration,
                "kind" => kind,
                "survivors" => survivors as u64,
                "measured" => probe_measured,
            },
        );
        self.recovery_log
            .push(RecoveryEvent::Recovered { iteration });
        Ok(())
    }

    /// Runs `iters` simulated training iterations of the current plan,
    /// feeding every trace into the cost models, and returns the average
    /// iteration time. Faults are absorbed by the resilience loop
    /// (bounded retries, blacklisting, re-planning).
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` (a
    /// zero-iteration "measurement" would propagate NaN into the cost
    /// models); otherwise propagates unrecoverable simulator failures.
    pub fn profile(&mut self, iters: u32) -> Result<f64, FastTError> {
        if iters == 0 {
            return Err(FastTError::InvalidArgument(
                "profile() needs at least one iteration",
            ));
        }
        let mut total = 0.0;
        for _ in 0..iters {
            total += self.run_iteration(true)?;
        }
        Ok(total / iters as f64)
    }

    /// Computes a fresh candidate plan from the base graph with the current
    /// cost models (OS-DPOS when splitting is enabled, DPOS otherwise).
    pub fn compute_candidate(&mut self) -> Plan {
        let col = self.collector.clone();
        let mut plan = if self.config.enable_split {
            let opts = OsDposOptions::for_topology(&self.topo);
            match &col {
                Some(col) => os_dpos_traced(
                    &self.base_graph,
                    &self.topo,
                    &mut self.cost,
                    &self.hw,
                    &opts,
                    col,
                ),
                None => os_dpos(
                    &self.base_graph,
                    &self.topo,
                    &mut self.cost,
                    &self.hw,
                    &opts,
                ),
            }
        } else {
            match &col {
                Some(col) => {
                    dpos_plan_traced(&self.base_graph, &self.topo, &self.cost, &self.hw, col)
                }
                None => dpos_plan(&self.base_graph, &self.topo, &self.cost, &self.hw),
            }
        };
        if !self.config.enable_order {
            plan.order = None;
        }
        plan
    }

    /// Computes a plain-DPOS candidate (no operation splitting) from the
    /// base graph with the current cost models — the "No split" arm of the
    /// paper's Table 6 ablation.
    pub fn compute_candidate_no_split(&self) -> Plan {
        let mut plan = dpos_plan(&self.base_graph, &self.topo, &self.cost, &self.hw);
        if !self.config.enable_order {
            plan.order = None;
        }
        plan
    }

    /// Computes the low-risk candidate: keep the current plan's graph and
    /// placement, only enforce the execution order the strategy calculator
    /// derives for it (the ordering-only lever of the paper's Fig. 2).
    /// Returns `None` when order enforcement is disabled.
    pub fn compute_order_candidate(&self) -> Option<Plan> {
        if !self.config.enable_order {
            return None;
        }
        let s = crate::dpos::schedule_for_placement(
            &self.current.graph,
            &self.topo,
            &self.cost,
            &self.hw,
            &self.current.placement,
        );
        Some(Plan {
            graph: self.current.graph.clone(),
            splits: self.current.splits.clone(),
            placement: self.current.placement.clone(),
            order: Some(s.order),
            est_finish: s.est_finish,
        })
    }

    /// Replaces the hardware model mid-session (used by tests and the drift
    /// experiments: real clusters change behaviour — thermal throttling,
    /// congestion — and the paper's periodic re-profiling exists to absorb
    /// exactly that).
    pub fn set_hardware(&mut self, hw: HardwarePerf) {
        self.hw = hw;
    }

    /// The paper's **normal training stage** (Sec. 4): trains for `iters`
    /// iterations, profiling every `reprofile_every`-th iteration; when the
    /// profiled execution times have drifted beyond the stability threshold,
    /// the cost models are refreshed and new strategies are recalculated and
    /// activated (with the same rollback protection as pre-training).
    ///
    /// Returns the average per-iteration time over the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`FastTError::InvalidArgument`] when `iters == 0` or
    /// `reprofile_every == 0`; otherwise propagates unrecoverable simulator
    /// failures of the active plan.
    pub fn train_normal(&mut self, iters: u32, reprofile_every: u32) -> Result<f64, FastTError> {
        if iters == 0 || reprofile_every == 0 {
            return Err(FastTError::InvalidArgument(
                "train_normal() needs iters > 0 and reprofile_every > 0",
            ));
        }
        let mut total = 0.0;
        let mut since_profile = 0u32;
        let mut done = 0u32;
        while done < iters {
            let chunk = reprofile_every.min(iters - done);
            // non-profiled iterations: run without feeding the cost models
            for _ in 0..chunk {
                total += self.run_iteration(false)?;
            }
            done += chunk;
            since_profile += chunk;
            if since_profile >= reprofile_every && done < iters {
                since_profile = 0;
                // periodic profiling: one profiled iteration; if times
                // drifted, refresh the models and reconsider the strategy
                self.cost.snapshot();
                let measured = self.profile(1)?;
                total += measured;
                done += 1;
                if !self.cost.is_stable(self.config.stability_eps) {
                    self.emit(
                        "session.drift",
                        jobj! {
                            "iteration" => self.iteration,
                            "drift" => self.cost.comp.max_drift(),
                            "eps" => self.config.stability_eps,
                        },
                    );
                    if let Some(col) = &self.collector {
                        col.metrics().inc("session.drift_detected");
                    }
                    self.measured = self.profile(self.config.profile_iters)?;
                    let candidate = self.compute_candidate();
                    self.emit(
                        "session.candidate",
                        jobj! {
                            "kind" => "redeploy",
                            "stage" => "normal",
                            "est_finish" => candidate.est_finish,
                            "measured" => self.measured,
                        },
                    );
                    if candidate.est_finish < self.measured {
                        let est = candidate.est_finish;
                        let previous = std::mem::replace(&mut self.current, candidate);
                        let prev_measured = self.measured;
                        match self.profile(self.config.profile_iters) {
                            Ok(m) if m <= prev_measured => {
                                self.measured = m;
                                self.emit(
                                    "session.activation",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Ok(m) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "measured_after" => m,
                                        "est_error" => (m - est) / est.max(f64::MIN_POSITIVE),
                                    },
                                );
                            }
                            Err(e) if !recoverable(&e) => return Err(e),
                            Err(_) => {
                                self.roll_back_to(previous);
                                self.emit(
                                    "session.rollback",
                                    jobj! {
                                        "stage" => "normal",
                                        "est" => est,
                                        "measured_before" => prev_measured,
                                        "failed" => true,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(total / done.max(1) as f64)
    }

    /// Runs the full pre-training workflow: profile → update cost models →
    /// recompute strategy → activate/rollback → repeat until the cost models
    /// stabilize or `max_rounds` is hit.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures of the active plan.
    pub fn pre_train(&mut self) -> Result<PreTrainReport, FastTError> {
        let mut report = PreTrainReport {
            rounds: 0,
            strategy_calc_secs: 0.0,
            activations: 0,
            rollbacks: 0,
            final_iter_time: f64::NAN,
            history: Vec::new(),
        };

        self.measured = self.profile(self.config.profile_iters)?;
        report.history.push(self.measured);

        for _ in 0..self.config.max_rounds {
            report.rounds += 1;
            self.cost.snapshot();
            self.emit(
                "session.round",
                jobj! {
                    "round" => report.rounds as u64,
                    "measured" => self.measured,
                    "drift" => self.cost.comp.max_drift(),
                },
            );

            // Two candidates per round: the full DPOS/OS-DPOS redeployment
            // and the low-risk "enforce an order on the current placement"
            // (the paper's ordering lever, Fig. 2); tried best-estimate
            // first.
            let t0 = Instant::now();
            let mut candidates: Vec<(Plan, &'static str)> =
                vec![(self.compute_candidate(), "redeploy")];
            if let Some(oc) = self.compute_order_candidate() {
                candidates.push((oc, "order"));
            }
            candidates.sort_by(|a, b| a.0.est_finish.total_cmp(&b.0.est_finish));
            report.strategy_calc_secs += t0.elapsed().as_secs_f64();
            for (candidate, kind) in &candidates {
                self.emit(
                    "session.candidate",
                    jobj! {
                        "round" => report.rounds as u64,
                        "kind" => *kind,
                        "stage" => "pre_train",
                        "est_finish" => candidate.est_finish,
                        "measured" => self.measured,
                        "splits" => candidate.splits.len() as u64,
                    },
                );
            }

            // Activate only when the estimate beats the measured time of the
            // current strategy (Sec. 4, "Strategy Calculator"); roll back
            // when the measured time regresses.
            let mut activated = false;
            for (candidate, kind) in candidates {
                if candidate.est_finish >= self.measured {
                    continue;
                }
                let est = candidate.est_finish;
                let previous = std::mem::replace(&mut self.current, candidate);
                let prev_measured = self.measured;
                match self.profile(self.config.profile_iters) {
                    Ok(new_measured) if new_measured <= prev_measured => {
                        self.measured = new_measured;
                        report.activations += 1;
                        activated = true;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.activations");
                        }
                        self.emit(
                            "session.activation",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                        break;
                    }
                    Ok(new_measured) => {
                        // measured regression: roll back, recording how far
                        // off the estimate was
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "measured_after" => new_measured,
                                "est_error" => (new_measured - est) / est.max(f64::MIN_POSITIVE),
                            },
                        );
                    }
                    Err(e) if !recoverable(&e) => return Err(e),
                    Err(_) => {
                        // the new plan failed outright (e.g. OOM): roll back
                        self.roll_back_to(previous);
                        report.rollbacks += 1;
                        if let Some(col) = &self.collector {
                            col.metrics().inc("session.rollbacks");
                        }
                        self.emit(
                            "session.rollback",
                            jobj! {
                                "round" => report.rounds as u64,
                                "kind" => kind,
                                "stage" => "pre_train",
                                "est" => est,
                                "measured_before" => prev_measured,
                                "failed" => true,
                            },
                        );
                    }
                }
            }
            if !activated {
                // keep profiling the current plan so the models keep filling
                self.measured = self.profile(self.config.profile_iters)?;
            }
            report.history.push(self.measured);

            if self.cost.is_stable(self.config.stability_eps) && report.rounds >= 2 {
                break;
            }
        }

        report.final_iter_time = self.measured;
        self.emit(
            "session.pre_train_done",
            jobj! {
                "rounds" => report.rounds as u64,
                "activations" => report.activations as u64,
                "rollbacks" => report.rollbacks as u64,
                "final_iter_time" => report.final_iter_time,
                "strategy_calc_secs" => report.strategy_calc_secs,
            },
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_models::Model;

    fn quick_config() -> SessionConfig {
        SessionConfig {
            profile_iters: 2,
            max_rounds: 3,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn starts_data_parallel_when_model_fits() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        // DP base graph has two replicas of every op
        assert!(s.base_graph.op_count() > 2 * g.op_count() - 10);
        assert!(s.base_graph.by_name("rep1/conv1").is_some());
    }

    #[test]
    fn falls_back_to_model_parallel_for_huge_models() {
        // A batch-32 BERT-large replica does not fit on one V100 (Table 3's
        // single-GPU OOM), so DP must be rejected and model parallelism
        // chosen. (NMT baselines keep variables on GPU 0.)
        let g = Model::BertLarge.training_graph(32);
        let topo = Topology::single_server(2);
        let cfg = SessionConfig {
            dp_ps: Some(DeviceId(0)),
            ..quick_config()
        };
        let s = TrainingSession::new(&g, topo, HardwarePerf::new(), cfg).unwrap();
        assert!(s.base_graph.by_name("rep0/layer0/attn/q").is_none());
        assert!(s.base_graph.by_name("layer0/attn/q").is_some());
        assert!(s.current_plan().placement.devices_used().len() >= 2);
    }

    #[test]
    fn pre_train_improves_or_matches_start() {
        let g = Model::LeNet.training_graph(64);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let first = s.profile(2).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.rounds >= 1);
        // rollback protection: the final measured time never ends up
        // materially worse than the data-parallel start
        assert!(
            report.final_iter_time <= first * 1.10,
            "final {} vs start {first}",
            report.final_iter_time
        );
    }

    #[test]
    fn profiling_fills_cost_models() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        assert!(!s.cost.covers(&s.current.graph.clone()));
        s.profile(1).unwrap();
        let g_now = s.current.graph.clone();
        assert!(s.cost.covers(&g_now));
    }

    #[test]
    fn normal_training_runs_requested_iterations() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let avg = s.train_normal(20, 5).unwrap();
        assert!(avg.is_finite() && avg > 0.0);
    }

    #[test]
    fn normal_training_adapts_to_hardware_drift() {
        // Slow the "hardware" down mid-training: the periodic profiler must
        // notice the drift and the session must keep producing valid plans
        // at the new speed (times roughly scale with the slowdown).
        let g = Model::AlexNet.training_graph(16);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        s.pre_train().unwrap();
        let fast = s.train_normal(10, 3).unwrap();

        let mut slow_hw = HardwarePerf::new();
        slow_hw.launch_overhead *= 50.0; // dispatch got much slower
        s.set_hardware(slow_hw);
        let slow = s.train_normal(10, 3).unwrap();
        assert!(
            slow > fast,
            "slower hardware must yield slower iterations ({slow} vs {fast})"
        );
        // the session's plan is still valid and executable after adaptation
        let plan = s.current_plan();
        let topo = Topology::single_server(2);
        plan.placement.validate(&plan.graph, &topo).unwrap();
    }

    #[test]
    fn strategy_calc_time_is_recorded() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
        let report = s.pre_train().unwrap();
        assert!(report.strategy_calc_secs > 0.0);
        assert_eq!(report.history.len() as u32, report.rounds + 1);
    }
}
