//! Multi-tenant training fleet: a [`ClusterManager`] that admits a stream
//! of jobs onto one shared [`Topology`], carves each an [`Allocation`],
//! and elastically grows, shrinks, and preempts them over discrete
//! scheduling ticks.
//!
//! This is the ownership refactor's payoff layer. A [`TrainingSession`]
//! no longer owns the cluster — it owns a slice
//! ([`fastt_cluster::Allocation`]) of a topology the manager owns — so
//! several jobs can train side by side without seeing each other's
//! devices. All jobs share one [`PlanCache`]: a job arriving with a model
//! and allocation shape a sibling already planned starts from the cached
//! plan with zero planner evaluations (the capacity-mask fingerprint of
//! the cache makes twin slices indistinguishable).
//!
//! The scheduler is deliberately simple and fully deterministic:
//!
//! 1. **Arrivals** — submitted jobs whose arrival tick has come join the
//!    queue.
//! 2. **Admission** — queued jobs in (priority desc, arrival asc) order
//!    are granted the lowest-numbered free GPUs when enough are free.
//! 3. **Preemption** — a queued job may shrink strictly-lower-priority
//!    running jobs down to their `min_gpus` (via
//!    [`TrainingSession::release_devices`], which walks the PR 5
//!    degradation ladder) when that covers its demand.
//! 4. **Growth** — leftover free GPUs are granted back to shrunken jobs
//!    (via [`TrainingSession::grant_devices`], which walks the PR 7
//!    promotion ladder).
//! 5. **Advance** — every running job executes one profiled iteration;
//!    finished jobs depart and their devices return to the pool.
//!
//! Every decision is logged as a [`FleetEvent`] whose rendering is
//! byte-stable across same-seed runs (fixed-precision floats, no
//! wall-clock), so fleet logs can be diffed in CI.

use crate::error::FastTError;
use crate::planner::PlanCache;
use crate::session::{SessionConfig, TrainingSession};
use fastt_cluster::{Allocation, AllocationId, DeviceId, Topology};
use fastt_graph::Graph;
use fastt_sim::seed::{domains as seed_domains, SeedStream};
use fastt_sim::HardwarePerf;
use fastt_telemetry::{jobj, Collector, Slo};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A job submitted to the fleet: what to train, when it arrives, how much
/// capacity it wants, and how it ranks against its neighbours.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name; also labels the job's telemetry and salts its slice
    /// of the shared plan cache.
    pub name: String,
    /// The training graph to place and run.
    pub graph: Graph,
    /// Scheduling tick at which the job enters the queue.
    pub arrival: u64,
    /// Iterations the job must run before departing.
    pub iters: u64,
    /// GPUs requested at admission.
    pub gpus: usize,
    /// Floor below which preemption may not shrink this job (clamped to
    /// at least 1).
    pub min_gpus: usize,
    /// Higher wins: admission order, preemption rights, and growth order.
    pub priority: u8,
    /// Absolute tick by which the job should depart; missing it is
    /// reported, not enforced.
    pub deadline: Option<u64>,
}

/// One scheduling decision, rendered deterministically for the fleet log.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A submitted job reached its arrival tick and joined the queue.
    Arrived {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
        /// GPUs the job requests.
        gpus: usize,
    },
    /// A queued job was granted devices and its session was constructed.
    Admitted {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
        /// Devices carved into the job's allocation.
        devices: Vec<DeviceId>,
        /// Ticks spent queued before admission.
        wait: u64,
        /// Whether the admission portfolio was served from the shared
        /// plan cache (a sibling already planned this model + shape).
        cached: bool,
    },
    /// A job could not be admitted and was dropped.
    Rejected {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
        /// Why admission failed.
        reason: String,
    },
    /// A running job was shrunk to make room for a higher-priority job.
    Preempted {
        /// Scheduling tick.
        t: u64,
        /// The job that lost devices.
        victim: String,
        /// Devices revoked from the victim.
        devices: Vec<DeviceId>,
        /// The job the devices were taken for.
        beneficiary: String,
    },
    /// A shrunken job was granted devices back.
    Expanded {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
        /// Devices granted.
        devices: Vec<DeviceId>,
    },
    /// A job finished its iterations and released its allocation.
    Departed {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
        /// Iterations run.
        iters: u64,
        /// Mean profiled iteration time, seconds.
        mean_iter_time: f64,
        /// Whether the job departed by its deadline (true when none).
        deadline_met: bool,
    },
    /// A queued job blew past its deadline before being admitted.
    DeadlineMiss {
        /// Scheduling tick.
        t: u64,
        /// Job name.
        job: String,
    },
    /// Cluster occupancy changed.
    Utilization {
        /// Scheduling tick.
        t: u64,
        /// GPUs owned by running jobs.
        busy: usize,
        /// GPUs in the shared topology.
        total: usize,
    },
}

fn render_devices(devices: &[DeviceId]) -> String {
    let mut s = String::new();
    for (i, d) in devices.iter().enumerate() {
        if i > 0 {
            s.push('+');
        }
        s.push_str(&d.to_string());
    }
    s
}

impl FleetEvent {
    /// One deterministic log line: fixed-precision floats, no wall-clock,
    /// byte-identical across same-seed runs.
    pub fn render(&self) -> String {
        match self {
            FleetEvent::Arrived { t, job, gpus } => {
                format!("t={t:03} arrive  job={job} want={gpus}")
            }
            FleetEvent::Admitted {
                t,
                job,
                devices,
                wait,
                cached,
            } => format!(
                "t={t:03} admit   job={job} gpus={} wait={wait} cached={cached}",
                render_devices(devices)
            ),
            FleetEvent::Rejected { t, job, reason } => {
                format!("t={t:03} reject  job={job} reason={reason}")
            }
            FleetEvent::Preempted {
                t,
                victim,
                devices,
                beneficiary,
            } => format!(
                "t={t:03} preempt job={victim} lost={} for={beneficiary}",
                render_devices(devices)
            ),
            FleetEvent::Expanded { t, job, devices } => {
                format!("t={t:03} grow    job={job} gained={}", render_devices(devices))
            }
            FleetEvent::Departed {
                t,
                job,
                iters,
                mean_iter_time,
                deadline_met,
            } => format!(
                "t={t:03} depart  job={job} iters={iters} mean_iter={mean_iter_time:.6}s deadline_met={deadline_met}"
            ),
            FleetEvent::DeadlineMiss { t, job } => {
                format!("t={t:03} overdue job={job}")
            }
            FleetEvent::Utilization { t, busy, total } => {
                format!("t={t:03} util    busy={busy}/{total}")
            }
        }
    }
}

/// Per-job outcome summary in a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Ticks between arrival and admission.
    pub queue_wait: u64,
    /// Iterations the job ran.
    pub iters_run: u64,
    /// Mean profiled iteration time, seconds.
    pub mean_iter_time: f64,
    /// Per-tick iteration-time timeline (one sample per advance).
    pub iter_times: Vec<f64>,
    /// Whether admission was served from the shared plan cache.
    pub cached_start: bool,
    /// Times this job was shrunk by a preemption.
    pub preemptions: u64,
    /// Whether the job departed by its deadline (true when none set).
    pub deadline_met: bool,
}

/// Everything a fleet run produced: the decision log, per-job stats, and
/// cluster-level aggregates.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Every scheduling decision in emission order.
    pub events: Vec<FleetEvent>,
    /// Per-job summaries in departure order.
    pub jobs: Vec<JobStats>,
    /// Most jobs holding allocations at once.
    pub max_concurrent: usize,
    /// Total preemption shrinks executed.
    pub preemptions: u64,
    /// Scheduling stalls (queued work, no progress possible). A healthy
    /// run reports 0.
    pub deadlocks: u64,
    /// `(tick, busy, total)` occupancy samples, one per tick.
    pub utilization: Vec<(u64, usize, usize)>,
    /// Shared plan-cache hits at the end of the run.
    pub cache_hits: u64,
    /// Shared plan-cache misses at the end of the run.
    pub cache_misses: u64,
    /// Plans resident in the shared cache at the end of the run.
    pub cache_len: usize,
    /// Ticks the run took.
    pub ticks: u64,
}

impl FleetReport {
    /// The rendered event log, one [`FleetEvent::render`] line per event.
    /// Byte-identical across same-seed runs.
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Mean busy fraction over the utilization timeline (0 when empty).
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .utilization
            .iter()
            .map(|(_, busy, total)| *busy as f64 / (*total).max(1) as f64)
            .sum();
        sum / self.utilization.len() as f64
    }
}

/// A job holding an allocation inside the manager.
struct Job {
    spec: JobSpec,
    session: TrainingSession,
    admitted_at: u64,
    done: u64,
    iter_times: Vec<f64>,
    cached_start: bool,
    preemptions: u64,
    index: usize,
}

impl Job {
    fn min_gpus(&self) -> usize {
        self.spec.min_gpus.max(1)
    }

    fn mean_iter_time(&self) -> f64 {
        if self.iter_times.is_empty() {
            0.0
        } else {
            self.iter_times.iter().sum::<f64>() / self.iter_times.len() as f64
        }
    }
}

/// FNV-1a over the job name: a stable nonzero per-job cache salt so jobs
/// sharing one [`PlanCache`] never serve each other plans computed from
/// their independently fitted cost models (generation-0 plans stay
/// shareable; see [`SessionConfig::cache_salt`]).
fn job_cache_salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h | 1
}

/// Admits, schedules, and elastically resizes a fleet of training jobs on
/// one shared [`Topology`].
///
/// The manager owns the cluster; each admitted job owns only an
/// [`Allocation`] carved from it. Device ownership is derived from the
/// live allocations themselves — a GPU is free exactly when no running
/// job's allocation contains it — so grants and revocations can never
/// double-book or strand a device.
///
/// # Examples
///
/// ```
/// use fastt::fleet::{ClusterManager, JobSpec};
/// use fastt_cluster::Topology;
/// use fastt_models::Model;
/// use fastt_sim::HardwarePerf;
///
/// let mut fleet = ClusterManager::new(Topology::multi_server(1, 4), HardwarePerf::new(), 21);
/// fleet.submit(JobSpec {
///     name: "job-a".into(),
///     graph: Model::LeNet.training_graph(16),
///     arrival: 0,
///     iters: 2,
///     gpus: 2,
///     min_gpus: 1,
///     priority: 1,
///     deadline: None,
/// });
/// let report = fleet.run().unwrap();
/// assert_eq!(report.deadlocks, 0);
/// assert_eq!(report.jobs.len(), 1);
/// ```
pub struct ClusterManager {
    shared: Topology,
    hw: HardwarePerf,
    cache: Arc<PlanCache>,
    collector: Option<Arc<Collector>>,
    seed: u64,
    submitted: Vec<(JobSpec, usize)>,
    queue: Vec<(JobSpec, usize)>,
    running: Vec<Job>,
    events: Vec<FleetEvent>,
    jobs_done: Vec<JobStats>,
    utilization: Vec<(u64, usize, usize)>,
    next_alloc: u32,
    next_index: usize,
    preemptions: u64,
    deadlocks: u64,
    max_concurrent: usize,
    overdue: BTreeSet<String>,
}

impl ClusterManager {
    /// A manager over `shared` with an empty queue and a fresh shared
    /// plan cache. `seed` derives each job's deterministic profiling
    /// noise stream, so same-seed runs are bit-identical.
    pub fn new(shared: Topology, hw: HardwarePerf, seed: u64) -> Self {
        ClusterManager {
            shared,
            hw,
            cache: Arc::new(PlanCache::default()),
            collector: None,
            seed,
            submitted: Vec::new(),
            queue: Vec::new(),
            running: Vec::new(),
            events: Vec::new(),
            jobs_done: Vec::new(),
            utilization: Vec::new(),
            next_alloc: 0,
            next_index: 0,
            preemptions: 0,
            deadlocks: 0,
            max_concurrent: 0,
            overdue: BTreeSet::new(),
        }
    }

    /// Attaches a telemetry collector: fleet decisions emit `fleet.*`
    /// events and metrics on it, and every admitted job gets a labeled
    /// view (`job = <name>`) of the same stream, so multi-job telemetry
    /// interleaves into one totally-ordered log.
    pub fn with_collector(mut self, collector: Arc<Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// The plan cache shared by every job the manager admits.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Queues a job for its arrival tick.
    pub fn submit(&mut self, spec: JobSpec) {
        self.submitted.push((spec, self.next_index));
        self.next_index += 1;
    }

    fn emit(&mut self, ev: FleetEvent) {
        if let Some(col) = &self.collector {
            let (kind, fields) = match &ev {
                FleetEvent::Arrived { t, job, gpus } => (
                    "fleet.arrive",
                    jobj! { "t" => *t, "job" => job.as_str(), "want" => *gpus as u64 },
                ),
                FleetEvent::Admitted {
                    t,
                    job,
                    devices,
                    wait,
                    cached,
                } => (
                    "fleet.admit",
                    jobj! {
                        "t" => *t,
                        "job" => job.as_str(),
                        "gpus" => devices.len() as u64,
                        "wait" => *wait,
                        "cached" => *cached,
                    },
                ),
                FleetEvent::Rejected { t, job, reason } => (
                    "fleet.reject",
                    jobj! { "t" => *t, "job" => job.as_str(), "reason" => reason.as_str() },
                ),
                FleetEvent::Preempted {
                    t,
                    victim,
                    devices,
                    beneficiary,
                } => (
                    "fleet.preempt",
                    jobj! {
                        "t" => *t,
                        "job" => victim.as_str(),
                        "lost" => devices.len() as u64,
                        "for" => beneficiary.as_str(),
                    },
                ),
                FleetEvent::Expanded { t, job, devices } => (
                    "fleet.grow",
                    jobj! { "t" => *t, "job" => job.as_str(), "gained" => devices.len() as u64 },
                ),
                FleetEvent::Departed {
                    t,
                    job,
                    iters,
                    mean_iter_time,
                    deadline_met,
                } => (
                    "fleet.depart",
                    jobj! {
                        "t" => *t,
                        "job" => job.as_str(),
                        "iters" => *iters,
                        "mean_iter_time" => *mean_iter_time,
                        "deadline_met" => *deadline_met,
                    },
                ),
                FleetEvent::DeadlineMiss { t, job } => (
                    "fleet.deadline_miss",
                    jobj! { "t" => *t, "job" => job.as_str() },
                ),
                FleetEvent::Utilization { t, busy, total } => (
                    "fleet.utilization",
                    jobj! { "t" => *t, "busy" => *busy as u64, "total" => *total as u64 },
                ),
            };
            col.emit(kind, fields);
        }
        self.events.push(ev);
    }

    fn total_gpus(&self) -> usize {
        self.shared.gpu_ids().count()
    }

    /// GPUs owned by no running job, lowest id first. Ownership is
    /// derived from the allocations, not a side ledger, so it cannot
    /// drift.
    fn free_gpus(&self) -> Vec<DeviceId> {
        let owned: BTreeSet<DeviceId> = self
            .running
            .iter()
            .flat_map(|j| j.session.allocation().members().iter().copied())
            .collect();
        self.shared
            .gpu_ids()
            .filter(|d| !owned.contains(d))
            .collect()
    }

    /// Constructs the session for `spec` on `devices` through the shared
    /// cache. Returns the admitted job, or the rejection reason.
    fn admit(
        &mut self,
        t: u64,
        spec: JobSpec,
        index: usize,
        devices: &[DeviceId],
    ) -> Result<(), String> {
        let alloc = Allocation::new(AllocationId(self.next_alloc), &self.shared, devices);
        let config = SessionConfig {
            profile_iters: 1,
            max_rounds: 2,
            seed: SeedStream::new(self.seed).indexed(index as u64),
            cache_salt: job_cache_salt(&spec.name),
            ..SessionConfig::default()
        };
        let job_collector = self
            .collector
            .as_ref()
            .map(|c| Arc::new(c.labeled("job", spec.name.as_str())));
        let hits_before = self.cache.hits();
        let session = TrainingSession::with_allocation(
            &spec.graph,
            alloc,
            self.hw.clone(),
            config,
            self.cache.clone(),
            job_collector,
        )
        .map_err(|e| e.to_string())?;
        self.next_alloc += 1;
        let cached = self.cache.hits() > hits_before;
        let wait = t.saturating_sub(spec.arrival);
        if let Some(col) = &self.collector {
            col.metrics().observe("fleet.queue_wait", wait as f64);
            col.metrics().inc("fleet.admitted");
            if cached {
                col.metrics().inc("fleet.cached_admissions");
            }
        }
        self.emit(FleetEvent::Admitted {
            t,
            job: spec.name.clone(),
            devices: devices.to_vec(),
            wait,
            cached,
        });
        self.running.push(Job {
            spec,
            session,
            admitted_at: t,
            done: 0,
            iter_times: Vec::new(),
            cached_start: cached,
            preemptions: 0,
            index,
        });
        Ok(())
    }

    /// Admission pass: queued jobs in (priority desc, arrival asc, index
    /// asc) order take the lowest free GPUs while supply lasts.
    fn admission_pass(&mut self, t: u64) -> Result<bool, FastTError> {
        self.queue
            .sort_by_key(|(s, i)| (std::cmp::Reverse(s.priority), s.arrival, *i));
        let mut progressed = false;
        let mut still_queued = Vec::new();
        let mut free = self.free_gpus();
        let total = self.total_gpus();
        for (spec, index) in std::mem::take(&mut self.queue) {
            if spec.gpus == 0 || spec.gpus > total {
                let reason = format!("requests {} GPUs, cluster has {}", spec.gpus, total);
                if let Some(col) = &self.collector {
                    col.metrics().inc("fleet.rejected");
                }
                self.emit(FleetEvent::Rejected {
                    t,
                    job: spec.name,
                    reason,
                });
                progressed = true;
                continue;
            }
            if spec.gpus <= free.len() {
                let devices: Vec<DeviceId> = free[..spec.gpus].to_vec();
                match self.admit(t, spec, index, &devices) {
                    Ok(()) => {
                        free.retain(|d| !devices.contains(d));
                        progressed = true;
                    }
                    Err(reason) => {
                        if let Some(col) = &self.collector {
                            col.metrics().inc("fleet.rejected");
                        }
                        // Infeasible model for the slice (e.g. OOM on every
                        // start strategy): dropping it is the only move that
                        // cannot wedge the queue.
                        progressed = true;
                        self.emit_rejection(t, index, reason);
                    }
                }
            } else {
                still_queued.push((spec, index));
            }
        }
        self.queue = still_queued;
        Ok(progressed)
    }

    fn emit_rejection(&mut self, t: u64, index: usize, reason: String) {
        // The spec was consumed by the failed admission attempt; recover
        // the name from the submission index.
        let job = self
            .submitted
            .iter()
            .find(|(_, i)| *i == index)
            .map(|(s, _)| s.name.clone())
            .unwrap_or_else(|| format!("job#{index}"));
        self.emit(FleetEvent::Rejected { t, job, reason });
    }

    /// Preemption pass: the highest-priority queued job may shrink
    /// strictly-lower-priority running jobs down to their `min_gpus`
    /// floors when the yield (plus already-free GPUs) covers its demand.
    /// Victims shrink through [`TrainingSession::release_devices`], so
    /// each keeps a valid (degraded) plan on its surviving devices.
    fn preemption_pass(&mut self, t: u64) -> Result<bool, FastTError> {
        let mut progressed = false;
        self.queue
            .sort_by_key(|(s, i)| (std::cmp::Reverse(s.priority), s.arrival, *i));
        let Some((spec, _)) = self.queue.first() else {
            return Ok(false);
        };
        let free = self.free_gpus();
        let shortfall = spec.gpus.saturating_sub(free.len());
        if shortfall == 0 {
            return Ok(false);
        }
        let priority = spec.priority;
        let beneficiary = spec.name.clone();
        // Victim order: lowest priority first, then newest admission, then
        // highest submission index — the cheapest work to disturb.
        let mut victims: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].spec.priority < priority)
            .collect();
        victims.sort_by_key(|&i| {
            (
                self.running[i].spec.priority,
                std::cmp::Reverse(self.running[i].admitted_at),
                std::cmp::Reverse(self.running[i].index),
            )
        });
        // Plan the whole preemption before touching any session: partial
        // preemptions that still leave the queue stuck would churn victims
        // for nothing.
        let mut plan: Vec<(usize, Vec<DeviceId>)> = Vec::new();
        let mut covered = 0usize;
        for &vi in &victims {
            if covered >= shortfall {
                break;
            }
            let job = &self.running[vi];
            let yieldable = job.session.allocation().gpu_count() - job.min_gpus();
            if yieldable == 0 {
                continue;
            }
            let take = yieldable.min(shortfall - covered);
            let members = job.session.allocation().members();
            // Revoke from the top: highest-numbered members first, so the
            // survivor keeps its lowest (and typically original) devices.
            let devices: Vec<DeviceId> = members[members.len() - take..].to_vec();
            covered += take;
            plan.push((vi, devices));
        }
        if covered < shortfall {
            return Ok(false);
        }
        for (vi, devices) in plan {
            let victim = self.running[vi].spec.name.clone();
            self.running[vi].session.release_devices(&devices)?;
            self.running[vi].preemptions += 1;
            self.preemptions += 1;
            if let Some(col) = &self.collector {
                col.metrics().inc("fleet.preemptions");
            }
            self.emit(FleetEvent::Preempted {
                t,
                victim,
                devices,
                beneficiary: beneficiary.clone(),
            });
            progressed = true;
        }
        Ok(progressed)
    }

    /// Growth pass: leftover free GPUs flow back to shrunken jobs in
    /// (priority desc, admission asc) order through
    /// [`TrainingSession::grant_devices`] (the promotion ladder decides
    /// whether the grown plan actually replaces the incumbent).
    fn growth_pass(&mut self, t: u64) -> Result<(), FastTError> {
        let mut free = self.free_gpus();
        if free.is_empty() {
            return Ok(());
        }
        let mut order: Vec<usize> = (0..self.running.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.running[i].spec.priority),
                self.running[i].admitted_at,
                self.running[i].index,
            )
        });
        for i in order {
            if free.is_empty() {
                break;
            }
            let job = &self.running[i];
            let deficit = job
                .spec
                .gpus
                .saturating_sub(job.session.allocation().gpu_count());
            if deficit == 0 {
                continue;
            }
            let take = deficit.min(free.len());
            let devices: Vec<DeviceId> = free[..take].to_vec();
            self.running[i].session.grant_devices(&devices)?;
            free.retain(|d| !devices.contains(d));
            if let Some(col) = &self.collector {
                col.metrics().inc("fleet.expansions");
            }
            let job = self.running[i].spec.name.clone();
            self.emit(FleetEvent::Expanded { t, job, devices });
        }
        Ok(())
    }

    /// Advance pass: every running job profiles one iteration; finished
    /// jobs depart and free their allocations.
    fn advance_pass(&mut self, t: u64) -> Result<bool, FastTError> {
        let mut progressed = false;
        let mut departed: Vec<usize> = Vec::new();
        for i in 0..self.running.len() {
            let job = &mut self.running[i];
            let dt = job.session.profile(1)?;
            job.done += 1;
            job.iter_times.push(dt);
            progressed = true;
            if job.done >= job.spec.iters {
                departed.push(i);
            }
        }
        for &i in departed.iter().rev() {
            let job = self.running.remove(i);
            let deadline_met = job.spec.deadline.is_none_or(|d| t <= d);
            let mean = job.mean_iter_time();
            if let Some(col) = &self.collector {
                col.metrics().inc("fleet.departed");
                col.metrics().observe("fleet.job_iter_time", mean);
            }
            self.emit(FleetEvent::Departed {
                t,
                job: job.spec.name.clone(),
                iters: job.done,
                mean_iter_time: mean,
                deadline_met,
            });
            self.jobs_done.push(JobStats {
                name: job.spec.name,
                queue_wait: job.admitted_at.saturating_sub(job.spec.arrival),
                iters_run: job.done,
                mean_iter_time: mean,
                iter_times: job.iter_times,
                cached_start: job.cached_start,
                preemptions: job.preemptions,
                deadline_met,
            });
        }
        Ok(progressed)
    }

    /// Runs the fleet to completion: ticks until every submitted job has
    /// departed (or been rejected), then reports.
    ///
    /// # Errors
    ///
    /// Propagates session failures that the elastic ladders cannot absorb
    /// (e.g. [`FastTError::ClusterExhausted`]).
    pub fn run(&mut self) -> Result<FleetReport, FastTError> {
        self.submitted.sort_by_key(|(s, i)| (s.arrival, *i));
        let mut arrivals: Vec<(JobSpec, usize)> = self.submitted.clone();
        arrivals.reverse(); // pop() takes the earliest
        let total = self.total_gpus();
        let mut t: u64 = 0;
        // Generous stall bound: every tick with running work advances at
        // least one iteration, so a healthy run can never hit this.
        let max_ticks = 10_000u64;
        loop {
            // 1. Arrivals.
            while arrivals
                .last()
                .map(|(s, _)| s.arrival <= t)
                .unwrap_or(false)
            {
                let (spec, index) = arrivals.pop().expect("checked non-empty");
                self.emit(FleetEvent::Arrived {
                    t,
                    job: spec.name.clone(),
                    gpus: spec.gpus,
                });
                self.queue.push((spec, index));
            }
            // 2-3. Admission, then preemption for whatever is still stuck,
            // then a second admission pass over the freed capacity.
            let mut progressed = self.admission_pass(t)?;
            if self.preemption_pass(t)? {
                progressed = true;
                self.admission_pass(t)?;
            }
            // Deadline watch for jobs still stuck in the queue.
            let overdue_now: Vec<String> = self
                .queue
                .iter()
                .filter(|(s, _)| s.deadline.is_some_and(|d| t > d))
                .filter(|(s, _)| !self.overdue.contains(&s.name))
                .map(|(s, _)| s.name.clone())
                .collect();
            for job in overdue_now {
                self.overdue.insert(job.clone());
                if let Some(col) = &self.collector {
                    col.metrics().inc("fleet.deadline_misses");
                }
                self.emit(FleetEvent::DeadlineMiss { t, job });
            }
            // 4. Growth.
            self.growth_pass(t)?;
            // 5. Advance.
            if self.advance_pass(t)? {
                progressed = true;
            }
            // Occupancy snapshot.
            let busy = total - self.free_gpus().len();
            let changed = self
                .utilization
                .last()
                .map(|(_, b, _)| *b != busy)
                .unwrap_or(true);
            self.utilization.push((t, busy, total));
            if let Some(col) = &self.collector {
                col.metrics()
                    .set_gauge("fleet.utilization", busy as f64 / total.max(1) as f64);
                col.metrics().observe(
                    "fleet.idle_fraction",
                    1.0 - busy as f64 / total.max(1) as f64,
                );
            }
            if changed {
                self.emit(FleetEvent::Utilization { t, busy, total });
            }
            self.max_concurrent = self.max_concurrent.max(self.running.len());

            let pending_work =
                !arrivals.is_empty() || !self.queue.is_empty() || !self.running.is_empty();
            if !pending_work {
                break;
            }
            // A tick with queued-but-unadmittable work and nothing running
            // or arriving is a genuine scheduling deadlock; count it and
            // stop instead of spinning.
            if !progressed && self.running.is_empty() && arrivals.is_empty() {
                self.deadlocks += 1;
                if let Some(col) = &self.collector {
                    col.metrics().inc("fleet.deadlocks");
                }
                break;
            }
            t += 1;
            if t >= max_ticks {
                self.deadlocks += 1;
                if let Some(col) = &self.collector {
                    col.metrics().inc("fleet.deadlocks");
                }
                break;
            }
        }
        let mut jobs = std::mem::take(&mut self.jobs_done);
        jobs.sort_by_key(|j| j.name.clone());
        Ok(FleetReport {
            events: std::mem::take(&mut self.events),
            jobs,
            max_concurrent: self.max_concurrent,
            preemptions: self.preemptions,
            deadlocks: self.deadlocks,
            utilization: std::mem::take(&mut self.utilization),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_len: self.cache.len(),
            ticks: t + 1,
        })
    }
}

/// Service-level objectives for the fleet scheduler, graded alongside
/// [`crate::default_slos`] (which covers the `planner.latency` series the
/// admission portfolio feeds).
pub fn fleet_slos() -> Vec<Slo> {
    vec![
        // Queue wait is measured in scheduling ticks; a job should not
        // wait longer than ~one short job's runtime.
        Slo::p95("fleet.queue_wait.p95", "fleet.queue_wait", 8.0),
        // The cluster should be mostly busy over the run; the budget
        // allows for the natural drain-out tail of the arrival workload.
        Slo::mean("fleet.idle.mean", "fleet.idle_fraction", 0.6),
    ]
}

/// A deterministic seeded arrival workload over the given model
/// templates, shaped so every seed exercises the fleet's full decision
/// surface on a cluster of `total_gpus`:
///
/// - jobs 0 and 1 train the **same template with the same GPU count** —
///   job 1's admission must hit the shared plan cache;
/// - jobs 0-2 overlap, so ≥3 jobs hold allocations concurrently;
/// - a later high-priority job demands more than the free capacity,
///   forcing ≥1 preemption, and its departure exercises re-growth;
/// - a final low-priority job exercises queueing behind the burst.
///
/// The seed perturbs iteration counts and template choices (not the
/// structural guarantees), so different seeds produce different —
/// and same seeds byte-identical — fleet logs.
pub fn seeded_workload(
    seed: u64,
    templates: &[(String, Graph)],
    total_gpus: usize,
) -> Vec<JobSpec> {
    assert!(!templates.is_empty(), "need at least one model template");
    assert!(total_gpus >= 4, "fleet workload needs at least 4 GPUs");
    let mut stream = SeedStream::domain(seed, seed_domains::FLEET_WORKLOAD);
    let mut next = move || stream.next();
    let pick = |r: u64| (r % templates.len() as u64) as usize;
    let twin_tpl = pick(next());
    let third_tpl = pick(next());
    let tail_tpl = pick(next());
    let spec = |name: String,
                tpl: usize,
                arrival: u64,
                iters: u64,
                gpus: usize,
                min_gpus: usize,
                priority: u8,
                deadline: Option<u64>| {
        JobSpec {
            name,
            graph: templates[tpl].1.clone(),
            arrival,
            iters,
            gpus,
            min_gpus,
            priority,
            deadline,
        }
    };
    // The twins: identical model + GPU count, so the second admission is
    // a shared-cache hit. Long enough to still be running at the burst.
    let twin_iters = 8 + next() % 4;
    let burst_at = 4;
    // The burst job wants everything the three early jobs cannot yield:
    // free (total - 6) + one yielded GPU from each of the three victims.
    let burst_gpus = total_gpus - 3;
    vec![
        spec(
            format!("{}-a", templates[twin_tpl].0),
            twin_tpl,
            0,
            twin_iters,
            2,
            1,
            1,
            None,
        ),
        spec(
            format!("{}-b", templates[twin_tpl].0),
            twin_tpl,
            1,
            twin_iters + next() % 3,
            2,
            1,
            1,
            None,
        ),
        spec(
            format!("{}-c", templates[third_tpl].0),
            third_tpl,
            2,
            6 + next() % 3,
            2,
            1,
            2,
            Some(24),
        ),
        spec(
            "burst-hi".to_string(),
            pick(next()),
            burst_at,
            3 + next() % 2,
            burst_gpus,
            burst_gpus.min(2),
            9,
            Some(burst_at + 12),
        ),
        spec(
            format!("{}-tail", templates[tail_tpl].0),
            tail_tpl,
            6,
            3 + next() % 3,
            1,
            1,
            0,
            None,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_models::Model;

    fn templates() -> Vec<(String, Graph)> {
        vec![
            ("lenet32".to_string(), Model::LeNet.training_graph(32)),
            ("lenet16".to_string(), Model::LeNet.training_graph(16)),
        ]
    }

    fn run_fleet(seed: u64) -> FleetReport {
        let topo = Topology::multi_server(2, 4);
        let mut fleet = ClusterManager::new(topo, HardwarePerf::new(), seed);
        for spec in seeded_workload(seed, &templates(), 8) {
            fleet.submit(spec);
        }
        fleet.run().unwrap()
    }

    #[test]
    fn seeded_fleet_admits_overlapping_jobs_and_preempts() {
        let report = run_fleet(21);
        assert!(report.max_concurrent >= 3, "max {}", report.max_concurrent);
        assert!(report.preemptions >= 1);
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.jobs.len(), 5, "all jobs depart");
        assert!(!report.utilization.is_empty());
        // The twin job's admission came from the shared cache.
        let twin_b = report.jobs.iter().find(|j| j.name.ends_with("-b")).unwrap();
        assert!(twin_b.cached_start, "twin admission should hit the cache");
        assert!(report.cache_hits >= 1);
    }

    #[test]
    fn same_seed_runs_are_byte_identical_and_seeds_differ() {
        let a = run_fleet(21);
        let b = run_fleet(21);
        assert_eq!(a.event_log(), b.event_log());
        let c = run_fleet(22);
        assert_ne!(
            a.event_log(),
            c.event_log(),
            "different seeds should perturb the schedule"
        );
    }

    #[test]
    fn preempted_survivors_keep_valid_plans_and_devices_stay_disjoint() {
        let topo = Topology::multi_server(2, 4);
        let mut fleet = ClusterManager::new(topo, HardwarePerf::new(), 7);
        for spec in seeded_workload(7, &templates(), 8) {
            fleet.submit(spec);
        }
        // Drive the run manually through its phases far enough to observe
        // the post-preemption state.
        fleet.submitted.sort_by_key(|(s, i)| (s.arrival, *i));
        let mut arrivals = fleet.submitted.clone();
        arrivals.reverse();
        for t in 0..5u64 {
            while arrivals
                .last()
                .map(|(s, _)| s.arrival <= t)
                .unwrap_or(false)
            {
                let (spec, index) = arrivals.pop().unwrap();
                fleet.queue.push((spec, index));
            }
            fleet.admission_pass(t).unwrap();
            if fleet.preemption_pass(t).unwrap() {
                fleet.admission_pass(t).unwrap();
            }
            fleet.growth_pass(t).unwrap();
            fleet.advance_pass(t).unwrap();
        }
        assert!(fleet.preemptions >= 1, "burst should have preempted");
        // Every survivor's plan must be valid on its own slice, and no
        // device may appear in two allocations.
        let mut seen = BTreeSet::new();
        for job in &fleet.running {
            let plan = job.session.current_plan();
            plan.placement
                .validate(&plan.graph, job.session.topology())
                .unwrap();
            for d in job.session.allocation().members() {
                assert!(seen.insert(*d), "device {d} double-booked");
            }
        }
    }

    #[test]
    fn rejects_jobs_larger_than_the_cluster_without_wedging() {
        let topo = Topology::multi_server(1, 4);
        let mut fleet = ClusterManager::new(topo, HardwarePerf::new(), 3);
        let g = Model::LeNet.training_graph(16);
        fleet.submit(JobSpec {
            name: "too-big".into(),
            graph: g.clone(),
            arrival: 0,
            iters: 2,
            gpus: 9,
            min_gpus: 1,
            priority: 5,
            deadline: None,
        });
        fleet.submit(JobSpec {
            name: "fits".into(),
            graph: g,
            arrival: 0,
            iters: 2,
            gpus: 2,
            min_gpus: 1,
            priority: 1,
            deadline: None,
        });
        let report = fleet.run().unwrap();
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.jobs.len(), 1);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, FleetEvent::Rejected { job, .. } if job == "too-big")));
    }

    #[test]
    fn job_cache_salts_are_stable_and_distinct() {
        assert_eq!(job_cache_salt("a"), job_cache_salt("a"));
        assert_ne!(job_cache_salt("a"), job_cache_salt("b"));
        assert_ne!(job_cache_salt(""), 0, "salt must be nonzero");
    }
}
