//! Error type for the FastT core crate.

use fastt_cluster::DeviceId;
use fastt_graph::GraphError;
use fastt_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced by strategy computation or the training session.
#[derive(Debug)]
#[non_exhaustive]
pub enum FastTError {
    /// Graph construction or rewrite failed.
    Graph(GraphError),
    /// Simulated execution failed.
    Sim(SimError),
    /// Neither data parallelism nor model parallelism fits on the given
    /// devices — the model is too large for the cluster.
    NoFeasibleStart {
        /// The error from the data-parallel attempt.
        dp: SimError,
        /// The error from the model-parallel attempt.
        mp: SimError,
    },
    /// A caller passed a degenerate argument (e.g. zero iterations) that
    /// would otherwise poison a measurement with NaN.
    InvalidArgument(&'static str),
    /// A transient failure persisted past the bounded retry budget and the
    /// session could not recover by re-planning either.
    RetriesExhausted {
        /// The device whose failures exhausted the budget.
        device: DeviceId,
        /// Attempts made (including the first).
        attempts: u32,
    },
    /// Every GPU has been blacklisted — there is nothing left to train on.
    ClusterExhausted,
}

impl fmt::Display for FastTError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastTError::Graph(e) => write!(f, "graph error: {e}"),
            FastTError::Sim(e) => write!(f, "simulation error: {e}"),
            FastTError::NoFeasibleStart { dp, mp } => write!(
                f,
                "no feasible start strategy: data-parallel failed ({dp}); model-parallel failed ({mp})"
            ),
            FastTError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            FastTError::RetriesExhausted { device, attempts } => write!(
                f,
                "transient failures on {device} persisted through {attempts} attempts"
            ),
            FastTError::ClusterExhausted => {
                write!(f, "all GPUs are blacklisted; no devices left to train on")
            }
        }
    }
}

impl Error for FastTError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FastTError::Graph(e) => Some(e),
            FastTError::Sim(e) => Some(e),
            FastTError::NoFeasibleStart { dp, .. } => Some(dp),
            FastTError::InvalidArgument(_)
            | FastTError::RetriesExhausted { .. }
            | FastTError::ClusterExhausted => None,
        }
    }
}

impl From<GraphError> for FastTError {
    fn from(e: GraphError) -> Self {
        FastTError::Graph(e)
    }
}

impl From<SimError> for FastTError {
    fn from(e: SimError) -> Self {
        FastTError::Sim(e)
    }
}
