//! The bundle of inputs every planner plans from.

use crate::planner::PlanCache;
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::HardwarePerf;
use fastt_telemetry::Collector;
use std::sync::Arc;

/// Everything a [`Planner`](crate::planner::Planner) may consult: the graph
/// to plan, the (possibly shrunken) topology, the hardware model, an owned
/// clone of the adaptive cost models, and an optional telemetry collector.
///
/// The context *owns* its cost models: a [`Portfolio`] hands each planner
/// thread its own clone, so OS-DPOS can seed sub-operation priors without
/// racing other planners; the session adopts the winner's mutated clone
/// back. Tracing is likewise a property of the context — a planner run with
/// a collector emits the same `dpos.place` / `dpos.split` decision events
/// the old `*_traced` function duplicates used to.
///
/// [`Portfolio`]: crate::planner::Portfolio
#[derive(Debug, Clone)]
pub struct PlanningContext<'a> {
    /// The graph strategies are computed from (the session's base graph:
    /// the replica graph when data parallelism fits, else the raw graph).
    pub graph: &'a Graph,
    /// The raw (unreplicated) training graph, needed by start-strategy
    /// planners that build their own replication over the live topology.
    pub raw: Option<&'a Graph>,
    /// The currently deployed plan, needed by the order-only planner (and
    /// usable as a warm start by searchers).
    pub current: Option<&'a Plan>,
    /// The live topology (failed devices already blacklisted).
    pub topo: &'a Topology,
    /// The hardware performance model.
    pub hw: &'a HardwarePerf,
    /// This planning run's own cost models (cloned from the session's).
    pub cost: CostModels,
    /// Telemetry collector; `None` plans silently.
    pub collector: Option<Arc<Collector>>,
    /// Whether planners may emit an enforced execution order (the paper's
    /// Fig. 2 lever; disabled for the ordering ablation).
    pub enable_order: bool,
    /// Pinned parameter-server device for data-parallel plans (`None`
    /// follows TF-slim's host-PS convention).
    pub dp_ps: Option<DeviceId>,
    /// The plan cache backing region-granular sub-plan reuse, for planners
    /// that report [`Planner::uses_regions`](crate::planner::Planner::uses_regions).
    /// `None` plans without sub-plan memoization.
    pub region_cache: Option<&'a PlanCache>,
    /// Per-session cache salt (see
    /// [`FingerprintContext::cache_salt`](crate::planner::FingerprintContext));
    /// folded into region sub-plan fingerprints once the cost models have
    /// diverged from their shared priors.
    pub cache_salt: u64,
    /// Out-parameter: simulated-iteration evaluations consumed by a
    /// black-box searcher (the cost the paper's Fig. 3 argues about).
    /// White-box planners leave it at 0.
    pub evals_used: u32,
}

impl<'a> PlanningContext<'a> {
    /// Creates a context with the required inputs; optional ones default to
    /// `None` / order enforcement on.
    pub fn new(
        graph: &'a Graph,
        topo: &'a Topology,
        hw: &'a HardwarePerf,
        cost: CostModels,
    ) -> Self {
        PlanningContext {
            graph,
            raw: None,
            current: None,
            topo,
            hw,
            cost,
            collector: None,
            enable_order: true,
            dp_ps: None,
            region_cache: None,
            cache_salt: 0,
            evals_used: 0,
        }
    }

    /// Sets the raw (unreplicated) training graph.
    pub fn with_raw(mut self, raw: &'a Graph) -> Self {
        self.raw = Some(raw);
        self
    }

    /// Sets the currently deployed plan.
    pub fn with_current(mut self, current: &'a Plan) -> Self {
        self.current = Some(current);
        self
    }

    /// Attaches a telemetry collector.
    pub fn with_collector(mut self, collector: Arc<Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Enables or disables order enforcement.
    pub fn with_order(mut self, enable: bool) -> Self {
        self.enable_order = enable;
        self
    }

    /// Pins the data-parallel parameter server.
    pub fn with_dp_ps(mut self, ps: Option<DeviceId>) -> Self {
        self.dp_ps = ps;
        self
    }

    /// Attaches a plan cache for region-granular sub-plan reuse, with the
    /// session's cache salt.
    pub fn with_region_cache(mut self, cache: &'a PlanCache, salt: u64) -> Self {
        self.region_cache = Some(cache);
        self.cache_salt = salt;
        self
    }

    /// The collector as a borrowed tracer, for passing down into the
    /// scheduling internals.
    pub fn tracer(&self) -> Option<&Collector> {
        self.collector.as_deref()
    }
}
