//! Fingerprint-keyed plan memoization, shareable across jobs.
//!
//! A plan only depends on (a) the structure of the graph being planned,
//! (b) the *shape* of the live cluster slice, (c) — for cost-model-driven
//! planners — the state of the adaptive cost models, (d) the planning
//! context (parameter-server pinning, order enforcement), and (e) the
//! planner's own parameters. The [`Fingerprint`] captures exactly those
//! five, so fault recovery, drift re-profiling, *and other jobs* can reuse
//! still-valid candidates: re-planning after a memory-pressure spike on an
//! unchanged cluster is a cache hit, a second job arriving with the same
//! model on a same-shaped allocation is a cache hit, while a blacklisted
//! device or a cost-model refit changes the fingerprint and forces a fresh
//! computation.
//!
//! Shareability rests on two mechanisms. First, the capacity mask is
//! [`Topology::shape_hash`] — position-independent, so an allocation over
//! GPUs `{4, 5}` fingerprints identically to one over `{0, 1}` of the same
//! shape. Second, plans are *stored in canonical coordinates*
//! ([`Topology::canonical_live_devices`]): insertion maps each placement
//! device to its canonical slot, lookup maps slots back to the caller's
//! live devices — so a plan computed by job N on one slice deploys
//! correctly on job N+1's differently-numbered twin.

use super::{Planner, PlannerKind};
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::Placement;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Cache key for one (planner, planning inputs) combination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// [`Graph::structure_hash`] of the planning input: the base graph for
    /// most planners, the raw training graph for start strategies (which
    /// build their own replication).
    pub graph_hash: u64,
    /// [`Topology::shape_hash`] of the live slice: per-device capacity
    /// signatures plus the canonical link matrix with its failure and
    /// degradation marks. Any capacity change — failure, restore, hot-add,
    /// link fault — changes the mask, while two same-shaped allocations
    /// over *different* physical ids share it (that is what makes the
    /// cache shareable across jobs).
    pub capacity_mask: u64,
    /// [`CostModels::generation`] at planning time for planners that
    /// consult the cost models; 0 for those that do not, so their cached
    /// plans survive refits.
    pub cost_generation: u64,
    /// Hash of the planning context ([`FingerprintContext`]): the pinned
    /// parameter server (in canonical coordinates), order enforcement, and
    /// — once the cost models have diverged from their shared priors — the
    /// session's cache salt, so two jobs whose *fitted* models merely
    /// reached the same generation count never collide.
    pub context: u64,
    /// [`Planner::name`] — two planners never share a slot.
    pub planner: &'static str,
    /// [`Planner::fingerprint_extra`]: tuning parameters and RNG seeds.
    pub extra: u64,
    /// For region-aware planners ([`Planner::uses_regions`]): the
    /// decomposition's order-canonical hash
    /// ([`fastt_graph::RegionTree::canonical_hash`]), folded in alongside
    /// the id-sensitive `graph_hash` so models sharing substructure are
    /// observable at the fingerprint layer; 0 for flat planners. Region
    /// *sub-plan* entries reuse this struct with the per-region hash as
    /// both graph and region component (see [`PlanCache::get_region`]).
    pub region_hash: u64,
}

/// Session-side planning context folded into [`Fingerprint::context`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FingerprintContext {
    /// Pinned data-parallel parameter server, if any.
    pub dp_ps: Option<DeviceId>,
    /// Whether planners may emit an enforced execution order.
    pub enable_order: bool,
    /// Per-session salt separating *fitted* cost-model states across jobs
    /// sharing one cache. Only applied for cost-model-driven planners once
    /// `CostModels::generation() > 0`: generation-0 models are pure priors,
    /// content-identical for every fresh session, so their plans may be
    /// shared salt-free — which is exactly the "job N+1 gets an instant
    /// hit" admission path.
    pub cache_salt: u64,
}

impl Fingerprint {
    /// Computes the fingerprint `planner` would be cached under for these
    /// inputs. `raw` is the unreplicated training graph (used as the graph
    /// component for start-strategy planners); pass `None` when absent —
    /// such fingerprints hash the planning graph instead.
    pub fn compute(
        planner: &dyn Planner,
        graph: &Graph,
        raw: Option<&Graph>,
        topo: &Topology,
        cost: &CostModels,
        ctx: &FingerprintContext,
    ) -> Fingerprint {
        let graph_hash = match (planner.kind(), raw) {
            (PlannerKind::StartStrategy, Some(r)) => r.structure_hash(),
            _ => graph.structure_hash(),
        };
        let uses_cost = planner.uses_cost_models();
        let mut context = mix(0xC0DE ^ ctx.enable_order as u64);
        // the PS device in canonical coordinates: slot + 1, 0 when unset
        // or dead (planners ignore a dead PS, so the plan is PS-free)
        let ps_slot = match ctx.dp_ps {
            Some(d) if !topo.is_failed(d) => topo
                .canonical_live_devices()
                .iter()
                .position(|&c| c == d)
                .map_or(0, |i| i as u64 + 1),
            _ => 0,
        };
        context ^= mix(0xD9_0000 ^ ps_slot);
        if uses_cost && cost.generation() > 0 {
            context ^= mix(ctx.cache_salt);
        }
        let region_hash = if planner.uses_regions() {
            super::hierarchical::region_tree_for(graph)
                .0
                .canonical_hash()
        } else {
            0
        };
        Fingerprint {
            graph_hash,
            capacity_mask: topo.shape_hash(),
            cost_generation: if uses_cost { cost.generation() } else { 0 },
            context,
            planner: planner.name(),
            extra: planner.fingerprint_extra(),
            region_hash,
        }
    }
}

/// splitmix64-style mixer for context components.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Fingerprint, Plan>,
    order: VecDeque<Fingerprint>,
    cap: usize,
    hits: u64,
    misses: u64,
    region_hits: u64,
    region_misses: u64,
}

/// A bounded FIFO memo of computed plans, keyed by [`Fingerprint`] and
/// stored in canonical device coordinates.
///
/// Interior-mutable (`&self` lookups and inserts behind a [`Mutex`]), so
/// one `Arc<PlanCache>` can be shared by every session in a fleet;
/// concurrent racers on the same fingerprint stay deterministic — both
/// store byte-identical plans, last write wins harmlessly. Hit/miss
/// counters survive [`PlanCache::clear`] so a session can report
/// cumulative reuse.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(64)
    }
}

impl PlanCache {
    /// Creates a cache holding at most `cap` plans (at least one).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                cap: cap.max(1),
                ..Inner::default()
            }),
        }
    }

    /// Looks up a plan, counting the hit or miss. `topo` is the caller's
    /// live slice: the stored canonical-coordinate placement is remapped
    /// onto its canonical device order, so a plan cached by a job on a
    /// twin slice deploys on this one. A stored slot outside the slice
    /// (possible only across a shape-hash collision) is counted a miss
    /// rather than served broken.
    pub fn get(&self, fp: &Fingerprint, topo: &Topology) -> Option<Plan> {
        self.lookup(fp, topo, false)
    }

    /// Looks up a *region sub-plan* (stored by a region-aware planner's
    /// within-region pass). Same canonical-coordinate remapping as
    /// [`PlanCache::get`], but counted under the separate
    /// [`PlanCache::region_hits`] / [`PlanCache::region_misses`] pair so
    /// whole-plan admission accounting (the pinned fleet-twin invariant)
    /// is unaffected by region traffic.
    pub fn get_region(&self, fp: &Fingerprint, topo: &Topology) -> Option<Plan> {
        self.lookup(fp, topo, true)
    }

    fn lookup(&self, fp: &Fingerprint, topo: &Topology, region: bool) -> Option<Plan> {
        let canon = topo.canonical_live_devices();
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let remapped = inner.map.get(fp).and_then(|p| {
            let devs: Option<Vec<DeviceId>> = p
                .placement
                .iter()
                .map(|(_, slot)| canon.get(slot.index()).copied())
                .collect();
            devs.map(|d| {
                let mut plan = p.clone();
                plan.placement = Placement::new(d);
                plan
            })
        });
        match remapped {
            Some(p) => {
                if region {
                    inner.region_hits += 1;
                } else {
                    inner.hits += 1;
                }
                Some(p)
            }
            None => {
                if region {
                    inner.region_misses += 1;
                } else {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// Stores a plan, evicting the oldest entry when full. The placement
    /// is translated into canonical slot coordinates first; a plan placing
    /// on a device outside `topo`'s live set cannot be canonicalized and
    /// is silently skipped (never cached) rather than stored corrupt.
    pub fn insert(&self, fp: Fingerprint, plan: &Plan, topo: &Topology) {
        self.store(fp, plan, topo);
    }

    /// Stores a region sub-plan (see [`PlanCache::get_region`]); shares
    /// the bounded FIFO store with whole plans.
    pub fn insert_region(&self, fp: Fingerprint, plan: &Plan, topo: &Topology) {
        self.store(fp, plan, topo);
    }

    fn store(&self, fp: Fingerprint, plan: &Plan, topo: &Topology) {
        let canon = topo.canonical_live_devices();
        let mut slot = vec![None; topo.device_count()];
        for (i, d) in canon.iter().enumerate() {
            slot[d.index()] = Some(DeviceId(i as u16));
        }
        let devs: Option<Vec<DeviceId>> = plan
            .placement
            .iter()
            .map(|(_, d)| slot.get(d.index()).copied().flatten())
            .collect();
        let Some(devs) = devs else { return };
        let mut canonical = plan.clone();
        canonical.placement = Placement::new(devs);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if inner.map.insert(fp.clone(), canonical).is_none() {
            inner.order.push_back(fp);
            while inner.order.len() > inner.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("plan cache poisoned").hits
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("plan cache poisoned").misses
    }

    /// Cumulative region sub-plan hits (counted separately from
    /// [`PlanCache::hits`]).
    pub fn region_hits(&self) -> u64 {
        self.inner.lock().expect("plan cache poisoned").region_hits
    }

    /// Cumulative region sub-plan misses (counted separately from
    /// [`PlanCache::misses`]).
    pub fn region_misses(&self) -> u64 {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .region_misses
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint {
            graph_hash: n,
            capacity_mask: 0,
            cost_generation: 0,
            context: 0,
            planner: "test",
            extra: 0,
            region_hash: 0,
        }
    }

    fn plan_on(devs: Vec<DeviceId>) -> Plan {
        Plan {
            graph: Graph::new(),
            splits: Vec::new(),
            placement: Placement::new(devs),
            order: None,
            est_finish: 1.0,
        }
    }

    fn plan() -> Plan {
        plan_on(Vec::new())
    }

    #[test]
    fn fifo_eviction_and_counters() {
        let t = Topology::single_server(2);
        let c = PlanCache::new(2);
        assert!(c.get(&fp(1), &t).is_none());
        c.insert(fp(1), &plan(), &t);
        c.insert(fp(2), &plan(), &t);
        assert!(c.get(&fp(1), &t).is_some());
        c.insert(fp(3), &plan(), &t); // evicts fp(1), the oldest
        assert_eq!(c.len(), 2);
        assert!(c.get(&fp(1), &t).is_none());
        assert!(c.get(&fp(3), &t).is_some());
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 2, "counters survive clear()");
    }

    #[test]
    fn reinsert_does_not_duplicate_eviction_slot() {
        let t = Topology::single_server(2);
        let c = PlanCache::new(2);
        c.insert(fp(1), &plan(), &t);
        c.insert(fp(1), &plan(), &t);
        c.insert(fp(2), &plan(), &t);
        assert_eq!(c.len(), 2);
        assert!(c.get(&fp(1), &t).is_some());
    }

    #[test]
    fn capacity_mask_reflects_blacklist() {
        let mut t = Topology::single_server(4);
        let m0 = t.shape_hash();
        t.fail_device(DeviceId(2));
        let m1 = t.shape_hash();
        assert_ne!(m0, m1);
        t.fail_device(DeviceId(0));
        assert_ne!(m1, t.shape_hash());
    }

    #[test]
    fn capacity_mask_invalidates_symmetrically_on_restore_and_growth() {
        // Regression: a plan cached while the cluster was shrunk must never
        // be served after capacity returns. The mask has to move in BOTH
        // directions — on failure and on restore/hot-add alike.
        let mut t = Topology::multi_server(2, 2);
        let healthy = t.shape_hash();
        t.fail_device(DeviceId(1));
        let shrunk = t.shape_hash();
        assert_ne!(healthy, shrunk);
        // restore: back to exactly the healthy fingerprint (same live shape
        // ⇒ same key ⇒ pre-failure cached plans are reusable again)...
        t.restore_device(DeviceId(1));
        assert_eq!(t.shape_hash(), healthy);
        // ...and never the shrunk one
        assert_ne!(t.shape_hash(), shrunk);
        // hot-adding a server grows the live shape: new fingerprint again
        t.add_server(2);
        let grown = t.shape_hash();
        assert_ne!(grown, healthy);
        assert_ne!(grown, shrunk);
    }

    #[test]
    fn stale_shrunk_cluster_plan_is_not_served_after_scale_up() {
        // End-to-end cache behaviour: cache a plan under the shrunk
        // fingerprint, scale back up, and check the lookup misses.
        let mut t = Topology::single_server(4);
        t.fail_device(DeviceId(3));
        let shrunk_fp = Fingerprint {
            capacity_mask: t.shape_hash(),
            ..fp(7)
        };
        let c = PlanCache::new(8);
        c.insert(shrunk_fp.clone(), &plan(), &t);
        assert!(c.get(&shrunk_fp, &t).is_some());
        t.restore_device(DeviceId(3));
        let grown_fp = Fingerprint {
            capacity_mask: t.shape_hash(),
            ..shrunk_fp
        };
        assert!(
            c.get(&grown_fp, &t).is_none(),
            "the shrunk-cluster plan must not survive scale-up"
        );
    }

    #[test]
    fn plans_remap_across_twin_slices() {
        // Cache a plan from an allocation over GPUs {0,1}; read it back
        // through the twin allocation over {2,3}. The placement must come
        // out on the *caller's* devices.
        use fastt_cluster::{Allocation, AllocationId};
        let shared = Topology::single_server(4);
        let a = Allocation::new(AllocationId(0), &shared, &[DeviceId(0), DeviceId(1)]);
        let b = Allocation::new(AllocationId(1), &shared, &[DeviceId(2), DeviceId(3)]);
        let key = Fingerprint {
            capacity_mask: a.shape_hash(),
            ..fp(9)
        };
        assert_eq!(key.capacity_mask, b.shape_hash(), "twin slices share keys");
        let c = PlanCache::new(8);
        c.insert(
            key.clone(),
            &plan_on(vec![DeviceId(0), DeviceId(1), DeviceId(0)]),
            a.topo(),
        );
        let out = c.get(&key, b.topo()).expect("twin hit");
        let devs: Vec<DeviceId> = out.placement.iter().map(|(_, d)| d).collect();
        assert_eq!(devs, vec![DeviceId(2), DeviceId(3), DeviceId(2)]);
        // and reading through the original slice returns the original ids
        let back = c.get(&key, a.topo()).expect("self hit");
        let devs: Vec<DeviceId> = back.placement.iter().map(|(_, d)| d).collect();
        assert_eq!(devs, vec![DeviceId(0), DeviceId(1), DeviceId(0)]);
    }

    #[test]
    fn unmappable_insert_is_skipped_and_bad_slot_is_a_miss() {
        let t = Topology::single_server(2);
        let c = PlanCache::new(8);
        // a plan placing on a device outside the live set cannot be
        // canonicalized — never cached
        c.insert(fp(1), &plan_on(vec![DeviceId(7)]), &t);
        assert!(c.is_empty());
        // a stored slot beyond the caller's slice (shape-collision guard)
        // reads back as a miss, not a broken plan
        let big = Topology::single_server(4);
        c.insert(fp(2), &plan_on(vec![DeviceId(3)]), &big);
        assert_eq!(c.len(), 1);
        assert!(c.get(&fp(2), &t).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn shared_cache_is_usable_through_arc_from_threads() {
        use std::sync::Arc;
        let t = Topology::single_server(2);
        let c = Arc::new(PlanCache::new(8));
        let key = fp(5);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let key = key.clone();
                let t = &t;
                s.spawn(move || {
                    if c.get(&key, t).is_none() {
                        c.insert(key.clone(), &plan_on(vec![DeviceId(0)]), t);
                    }
                    assert!(c.get(&key, t).is_some());
                });
            }
        });
        assert_eq!(c.len(), 1, "racers converge on one deterministic entry");
    }
}
