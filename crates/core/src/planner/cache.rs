//! Fingerprint-keyed plan memoization.
//!
//! A plan only depends on (a) the structure of the graph being planned,
//! (b) which devices are dead, (c) — for cost-model-driven planners — the
//! state of the adaptive cost models, and (d) the planner's own parameters.
//! The [`Fingerprint`] captures exactly those four, so fault recovery and
//! drift re-profiling can reuse still-valid candidates: re-planning after a
//! memory-pressure spike on an unchanged cluster is a cache hit, while a
//! blacklisted device or a cost-model refit changes the fingerprint and
//! forces a fresh computation.

use super::{Planner, PlannerKind};
use crate::strategy::Plan;
use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::Graph;
use std::collections::{HashMap, VecDeque};

/// Cache key for one (planner, planning inputs) combination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// [`Graph::structure_hash`] of the planning input: the base graph for
    /// most planners, the raw training graph for start strategies (which
    /// build their own replication).
    pub graph_hash: u64,
    /// Capacity-and-blacklist mask (see `failed_mask`): a hash of the
    /// live device set folded with one bit per failed device and a mixed
    /// hash per failed *link*. Any capacity change — failure, restore, or
    /// hot-add — changes the mask: link failures reroute transfers and
    /// restored devices enlarge the plannable set, so a plan computed over
    /// either the healthy or the shrunk wiring is stale on the other.
    pub failed_mask: u64,
    /// [`CostModels::generation`] at planning time for planners that
    /// consult the cost models; 0 for those that do not, so their cached
    /// plans survive refits.
    pub cost_generation: u64,
    /// [`Planner::name`] — two planners never share a slot.
    pub planner: &'static str,
    /// [`Planner::fingerprint_extra`]: tuning parameters and RNG seeds.
    pub extra: u64,
}

impl Fingerprint {
    /// Computes the fingerprint `planner` would be cached under for these
    /// inputs. `raw` is the unreplicated training graph (used as the graph
    /// component for start-strategy planners); pass `None` when absent —
    /// such fingerprints hash the planning graph instead.
    pub fn compute(
        planner: &dyn Planner,
        graph: &Graph,
        raw: Option<&Graph>,
        topo: &Topology,
        cost: &CostModels,
    ) -> Fingerprint {
        let graph_hash = match (planner.kind(), raw) {
            (PlannerKind::StartStrategy, Some(r)) => r.structure_hash(),
            _ => graph.structure_hash(),
        };
        Fingerprint {
            graph_hash,
            failed_mask: failed_mask(topo),
            cost_generation: if planner.uses_cost_models() {
                cost.generation()
            } else {
                0
            },
            planner: planner.name(),
            extra: planner.fingerprint_extra(),
        }
    }
}

/// splitmix64-style mixer for mask components.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// XOR-folded capacity mask: one bit per blacklisted device (bit `d mod
/// 64`), a splitmix64-style hash per blacklisted directed link, and a
/// mixed hash of the *live capacity* — total device count plus the live
/// GPU set. The capacity term makes the mask symmetric: a restored device
/// or a hot-added server changes it just as a failure does, so a plan
/// cached over the shrunk cluster is never served after scale-up (and
/// vice versa), including live-set changes on clusters past 64 devices
/// where the per-device bits alias.
fn failed_mask(topo: &Topology) -> u64 {
    let capacity = topo
        .gpu_ids()
        .fold(mix(0xE1A5_71C0 ^ topo.device_count() as u64), |m, d| {
            m ^ mix(0xD0D0_0000 | d.0 as u64)
        });
    let devices = topo
        .failed_devices()
        .iter()
        .fold(capacity, |m, d| m ^ 1u64.rotate_left(d.0 as u32));
    topo.failed_links().iter().fold(devices, |m, (s, d)| {
        m ^ mix(((s.0 as u64) << 16) | d.0 as u64)
    })
}

/// A bounded FIFO memo of computed plans, keyed by [`Fingerprint`].
///
/// Hit/miss counters survive [`PlanCache::clear`] so a session can report
/// cumulative reuse.
#[derive(Debug)]
pub struct PlanCache {
    map: HashMap<Fingerprint, Plan>,
    order: VecDeque<Fingerprint>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(64)
    }
}

impl PlanCache {
    /// Creates a cache holding at most `cap` plans (at least one).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a plan, counting the hit or miss.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<Plan> {
        match self.map.get(fp) {
            Some(p) => {
                self.hits += 1;
                Some(p.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a plan, evicting the oldest entry when full.
    pub fn insert(&mut self, fp: Fingerprint, plan: Plan) {
        if self.map.insert(fp.clone(), plan).is_none() {
            self.order.push_back(fp);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_sim::Placement;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint {
            graph_hash: n,
            failed_mask: 0,
            cost_generation: 0,
            planner: "test",
            extra: 0,
        }
    }

    fn plan() -> Plan {
        Plan {
            graph: Graph::new(),
            splits: Vec::new(),
            placement: Placement::uniform(0, fastt_cluster::DeviceId(0)),
            order: None,
            est_finish: 1.0,
        }
    }

    #[test]
    fn fifo_eviction_and_counters() {
        let mut c = PlanCache::new(2);
        assert!(c.get(&fp(1)).is_none());
        c.insert(fp(1), plan());
        c.insert(fp(2), plan());
        assert!(c.get(&fp(1)).is_some());
        c.insert(fp(3), plan()); // evicts fp(1), the oldest
        assert_eq!(c.len(), 2);
        assert!(c.get(&fp(1)).is_none());
        assert!(c.get(&fp(3)).is_some());
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 2, "counters survive clear()");
    }

    #[test]
    fn reinsert_does_not_duplicate_eviction_slot() {
        let mut c = PlanCache::new(2);
        c.insert(fp(1), plan());
        c.insert(fp(1), plan());
        c.insert(fp(2), plan());
        assert_eq!(c.len(), 2);
        assert!(c.get(&fp(1)).is_some());
    }

    #[test]
    fn failed_mask_reflects_blacklist() {
        let mut t = Topology::single_server(4);
        let m0 = failed_mask(&t);
        t.fail_device(fastt_cluster::DeviceId(2));
        let m1 = failed_mask(&t);
        assert_ne!(m0, m1);
        t.fail_device(fastt_cluster::DeviceId(0));
        assert_ne!(m1, failed_mask(&t));
    }

    #[test]
    fn failed_mask_invalidates_symmetrically_on_restore_and_growth() {
        // Regression: a plan cached while the cluster was shrunk must never
        // be served after capacity returns. The mask has to move in BOTH
        // directions — on failure and on restore/hot-add alike.
        let mut t = Topology::multi_server(2, 2);
        let healthy = failed_mask(&t);
        t.fail_device(fastt_cluster::DeviceId(1));
        let shrunk = failed_mask(&t);
        assert_ne!(healthy, shrunk);
        // restore: back to exactly the healthy fingerprint (same live set
        // ⇒ same key ⇒ pre-failure cached plans are reusable again)...
        t.restore_device(fastt_cluster::DeviceId(1));
        assert_eq!(failed_mask(&t), healthy);
        // ...and never the shrunk one
        assert_ne!(failed_mask(&t), shrunk);
        // hot-adding a server grows the live set: new fingerprint again
        t.add_server(2);
        let grown = failed_mask(&t);
        assert_ne!(grown, healthy);
        assert_ne!(grown, shrunk);
    }

    #[test]
    fn stale_shrunk_cluster_plan_is_not_served_after_scale_up() {
        // End-to-end cache behaviour: cache a plan under the shrunk
        // fingerprint, scale back up, and check the lookup misses.
        let mut t = Topology::single_server(4);
        t.fail_device(fastt_cluster::DeviceId(3));
        let shrunk_fp = fp(7);
        let shrunk_fp = Fingerprint {
            failed_mask: failed_mask(&t),
            ..shrunk_fp
        };
        let mut c = PlanCache::new(8);
        c.insert(shrunk_fp.clone(), plan());
        assert!(c.get(&shrunk_fp).is_some());
        t.restore_device(fastt_cluster::DeviceId(3));
        let grown_fp = Fingerprint {
            failed_mask: failed_mask(&t),
            ..shrunk_fp
        };
        assert!(
            c.get(&grown_fp).is_none(),
            "the shrunk-cluster plan must not survive scale-up"
        );
    }
}
