//! [`Planner`] implementations for FastT's own algorithms and the classical
//! baselines: DPOS, OS-DPOS, order-only, data parallelism, model
//! parallelism, and pipeline parallelism. The five black-box searchers live
//! next to their algorithms in [`crate::search`].

use super::{hash_params, Planner, PlannerKind, PlanningContext};
use crate::error::FastTError;
use crate::os_dpos::{dpos_plan_opt, os_dpos_opt, OsDposOptions};
use crate::strategy::{data_parallel_plan, data_parallel_plan_on, model_parallel_plan, Plan};
use fastt_graph::{replicate_grouped, ReplicationMode};

/// Alg. 1: min-EFT list scheduling with critical-path device grouping, no
/// operation splitting (the "No split" arm of the Table 6 ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct DposPlanner;

impl Planner for DposPlanner {
    fn name(&self) -> &'static str {
        "dpos"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::WhiteBox
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        let col = ctx.collector.clone();
        let mut plan = dpos_plan_opt(ctx.graph, ctx.topo, &ctx.cost, ctx.hw, col.as_deref());
        if !ctx.enable_order {
            plan.order = None;
        }
        Ok(plan)
    }
}

/// Alg. 2: DPOS plus critical-path operation splitting. Seeds analytic
/// priors for fresh sub-operations into the context's cost models — the
/// winner's mutated clone is what the session adopts back.
#[derive(Debug, Clone, Default)]
pub struct OsDposPlanner {
    /// Split-search options; `None` derives defaults from the context's
    /// topology ([`OsDposOptions::for_topology`]).
    pub opts: Option<OsDposOptions>,
}

impl Planner for OsDposPlanner {
    fn name(&self) -> &'static str {
        "os_dpos"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::WhiteBox
    }

    fn fingerprint_extra(&self) -> u64 {
        match &self.opts {
            None => 0,
            Some(o) => {
                let mut parts: Vec<u64> = o.split_counts.iter().map(|&c| c as u64).collect();
                parts.push(o.max_splits as u64);
                hash_params(&parts)
            }
        }
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        let opts = self
            .opts
            .clone()
            .unwrap_or_else(|| OsDposOptions::for_topology(ctx.topo));
        let col = ctx.collector.clone();
        let mut plan = os_dpos_opt(
            ctx.graph,
            ctx.topo,
            &mut ctx.cost,
            ctx.hw,
            &opts,
            col.as_deref(),
        );
        if !ctx.enable_order {
            plan.order = None;
        }
        Ok(plan)
    }
}

/// The low-risk lever of the paper's Fig. 2: keep the current deployment's
/// graph and placement, only enforce the execution order the strategy
/// calculator derives for it. Not cacheable — its output depends on the
/// current plan, which the fingerprint does not capture.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderOnlyPlanner;

impl Planner for OrderOnlyPlanner {
    fn name(&self) -> &'static str {
        "order_only"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::OrderOnly
    }

    fn cacheable(&self) -> bool {
        false
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        if !ctx.enable_order {
            return Err(FastTError::InvalidArgument(
                "order-only planning needs order enforcement enabled",
            ));
        }
        let cur = ctx.current.ok_or(FastTError::InvalidArgument(
            "order-only planning needs the current plan in the context",
        ))?;
        let s = crate::dpos::schedule_for_placement(
            &cur.graph,
            ctx.topo,
            &ctx.cost,
            ctx.hw,
            &cur.placement,
        );
        Ok(Plan {
            graph: cur.graph.clone(),
            splits: cur.splits.clone(),
            placement: cur.placement.clone(),
            order: Some(s.order),
            est_finish: s.est_finish,
        })
    }
}

/// The data-parallel start strategy (Sec. 4): replicate the raw training
/// graph over the live GPUs (grouped by server), aggregating gradients
/// either through a parameter server (the default, TF-slim's convention) or
/// with a ring all-reduce collective ([`DataParallelPlanner::all_reduce`]).
/// The plan's `est_finish` is NaN — start strategies are arbitrated by
/// probing, not by estimates.
#[derive(Debug, Clone, Copy)]
pub struct DataParallelPlanner {
    /// How gradient aggregation is replicated and communicated.
    pub mode: ReplicationMode,
}

impl Default for DataParallelPlanner {
    fn default() -> Self {
        DataParallelPlanner {
            mode: ReplicationMode::ParameterServer,
        }
    }
}

impl DataParallelPlanner {
    /// Data parallelism with collective (ring all-reduce) gradient
    /// aggregation instead of the parameter-server funnel.
    pub fn all_reduce() -> Self {
        DataParallelPlanner {
            mode: ReplicationMode::AllReduce,
        }
    }
}

impl Planner for DataParallelPlanner {
    fn name(&self) -> &'static str {
        match self.mode {
            ReplicationMode::AllReduce => "data_parallel_allreduce",
            _ => "data_parallel",
        }
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::StartStrategy
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        let raw = ctx.raw.ok_or(FastTError::InvalidArgument(
            "data-parallel planning needs the raw training graph in the context",
        ))?;
        if ctx.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        let groups: Vec<u16> = ctx.topo.gpu_ids().map(|d| ctx.topo.server_of(d)).collect();
        let rep = replicate_grouped(raw, &groups, self.mode)?;
        Ok(match ctx.dp_ps {
            Some(d) if !ctx.topo.is_failed(d) => data_parallel_plan_on(&rep, ctx.topo, d),
            _ => data_parallel_plan(&rep, ctx.topo),
        })
    }
}

/// The model-parallel start strategy (Sec. 4): greedy layer-wise packing of
/// the raw training graph onto consecutive live GPUs. `est_finish` is NaN —
/// arbitrated by probing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelParallelPlanner;

impl Planner for ModelParallelPlanner {
    fn name(&self) -> &'static str {
        "model_parallel"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::StartStrategy
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        let raw = ctx.raw.ok_or(FastTError::InvalidArgument(
            "model-parallel planning needs the raw training graph in the context",
        ))?;
        if ctx.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        Ok(model_parallel_plan(raw, ctx.topo, ctx.hw))
    }
}

/// GPipe-style pipeline parallelism over the context's planning graph
/// (treated as one micro-batch), with a configurable micro-batch count.
#[derive(Debug, Clone, Copy)]
pub struct PipelinePlanner {
    /// Number of micro-batches in flight.
    pub micro_batches: u32,
}

impl Default for PipelinePlanner {
    fn default() -> Self {
        PipelinePlanner { micro_batches: 4 }
    }
}

impl Planner for PipelinePlanner {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::Pipeline
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn fingerprint_extra(&self) -> u64 {
        self.micro_batches as u64
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        if self.micro_batches == 0 {
            return Err(FastTError::InvalidArgument(
                "pipeline planning needs at least one micro-batch",
            ));
        }
        crate::pipeline::pipeline_plan(ctx.graph, self.micro_batches, ctx.topo, ctx.hw)
    }
}
