//! The unified planning layer.
//!
//! Every way FastT can produce a [`Plan`] — the white-box DPOS / OS-DPOS
//! heuristics (Alg. 1 / Alg. 2), the order-only lever (Fig. 2), the
//! data-parallel and model-parallel start strategies (Sec. 4), the GPipe
//! pipeline baseline, and the five Fig.-3 black-box searchers — implements
//! one [`Planner`] trait over one [`PlanningContext`]. On top of that sit:
//!
//! * [`Portfolio`] — evaluates a configurable candidate set concurrently
//!   (one OS thread per planner via [`std::thread::scope`], each with its
//!   own cost-model clone and a shared telemetry collector) and arbitrates
//!   by simulated iteration time;
//! * [`PlanCache`] — memoizes plans under a [`Fingerprint`] of the graph
//!   structure, the live-slice capacity mask (a position-independent shape
//!   hash), the cost-model generation counter, and the planning context,
//!   so drift re-profiling, fault recovery, *and sibling jobs sharing the
//!   cache* reuse still-valid candidates instead of recomputing from
//!   scratch.
//!
//! The [`crate::TrainingSession`] routes *all* candidate generation,
//! recovery fallback probing, and arbitration through this layer; the old
//! `*_traced` duplicate entry points are gone — tracing is a property of
//! the context, not of the function you call.
//!
//! # Examples
//!
//! ```
//! use fastt::planner::{DposPlanner, Planner, PlanningContext};
//! use fastt_cluster::Topology;
//! use fastt_cost::CostModels;
//! use fastt_models::Model;
//! use fastt_sim::HardwarePerf;
//!
//! let graph = Model::LeNet.training_graph(32);
//! let topo = Topology::single_server(2);
//! let hw = HardwarePerf::new();
//! let mut ctx = PlanningContext::new(&graph, &topo, &hw, CostModels::new());
//! let plan = DposPlanner.plan(&mut ctx)?;
//! assert!(plan.est_finish.is_finite());
//! # Ok::<(), fastt::FastTError>(())
//! ```

mod builtin;
mod cache;
mod context;
mod hierarchical;
mod portfolio;

pub use builtin::{
    DataParallelPlanner, DposPlanner, ModelParallelPlanner, OrderOnlyPlanner, OsDposPlanner,
    PipelinePlanner,
};
pub use cache::{Fingerprint, FingerprintContext, PlanCache};
pub use context::PlanningContext;
pub use hierarchical::{region_tree_for, HierarchicalPlanner};
pub use portfolio::{CandidateOutcome, Portfolio, PortfolioInputs, PortfolioOutcome};

use crate::error::FastTError;
use crate::strategy::Plan;
use fastt_telemetry::Slo;

/// Default p95 target for the `planner.latency` SLO, in seconds. Strategy
/// calculation is a serving-path cost (ROADMAP item 1, after Baechi): a
/// re-plan that takes longer than this delays recovery and fleet admission.
pub const PLANNER_LATENCY_P95_TARGET: f64 = 0.25;

/// The declared SLO set the report binary and `perfbench` grade against:
/// aggregate `planner.latency` p95 plus the per-planner series for the two
/// white-box algorithms (warn band 2× per [`Slo::p95`]).
pub fn default_slos() -> Vec<Slo> {
    vec![
        Slo::p95(
            "planner.latency.p95",
            "planner.latency",
            PLANNER_LATENCY_P95_TARGET,
        ),
        Slo::p95(
            "planner.latency.dpos.p95",
            "planner.latency.dpos",
            PLANNER_LATENCY_P95_TARGET,
        ),
        Slo::p95(
            "planner.latency.os_dpos.p95",
            "planner.latency.os_dpos",
            PLANNER_LATENCY_P95_TARGET,
        ),
        Slo::p95(
            "planner.latency.hierarchical.p95",
            "planner.latency.hierarchical",
            PLANNER_LATENCY_P95_TARGET,
        ),
    ]
}

/// What family a planner belongs to — reported in `planner.*` telemetry and
/// used by the cache to pick the fingerprint's graph component (start
/// strategies plan from the raw training graph, everything else from the
/// context's planning graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PlannerKind {
    /// Cost-model-driven heuristics: DPOS, OS-DPOS, GDP.
    WhiteBox,
    /// Black-box placement searchers (REINFORCE, CEM, MCMC, random).
    Search,
    /// The paper's bootstrap strategies: data parallelism, model
    /// parallelism.
    StartStrategy,
    /// Keep the current deployment, only enforce an execution order.
    OrderOnly,
    /// Micro-batched pipeline parallelism (GPipe-style baseline).
    Pipeline,
}

impl PlannerKind {
    /// Stable snake-case label for telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            PlannerKind::WhiteBox => "white_box",
            PlannerKind::Search => "search",
            PlannerKind::StartStrategy => "start_strategy",
            PlannerKind::OrderOnly => "order_only",
            PlannerKind::Pipeline => "pipeline",
        }
    }
}

/// A strategy planner: anything that can turn a [`PlanningContext`] into a
/// [`Plan`].
///
/// Implementations must be [`Send`] + [`Sync`] so a [`Portfolio`] can
/// evaluate several of them on separate threads; mutable planning state
/// (cost-model seeding, RNG streams) lives in the per-thread context or in
/// the planner's own seeded parameters, never in shared globals.
pub trait Planner: Send + Sync {
    /// Stable identifier, e.g. `"os_dpos"` — used as the telemetry label
    /// and as part of the cache fingerprint.
    fn name(&self) -> &'static str;

    /// The planner's family.
    fn kind(&self) -> PlannerKind;

    /// Whether predictions of the adaptive cost models feed the plan. When
    /// `true`, the cache fingerprint includes the cost-model generation
    /// counter, so refits invalidate cached plans; when `false` (pure
    /// topology/hardware planners like the start strategies), cached plans
    /// survive cost-model updates.
    fn uses_cost_models(&self) -> bool {
        true
    }

    /// Whether the result may be memoized by a [`PlanCache`]. Planners
    /// whose output depends on inputs outside the fingerprint (e.g. the
    /// order-only planner, which reads the *current* plan) must opt out.
    fn cacheable(&self) -> bool {
        true
    }

    /// Extra fingerprint material: a hash of any tuning parameters or RNG
    /// seeds that change the output (two differently-seeded searchers must
    /// not share a cache slot).
    fn fingerprint_extra(&self) -> u64 {
        0
    }

    /// Whether the planner plans over a structural decomposition. When
    /// `true`, the cache fingerprint additionally folds in the region
    /// tree's order-canonical hash ([`fastt_graph::RegionTree::canonical_hash`])
    /// and the planner may consult the cache's region-granular sub-plan
    /// store through [`PlanningContext::region_cache`].
    fn uses_regions(&self) -> bool {
        false
    }

    /// Computes a plan for the context.
    ///
    /// # Errors
    ///
    /// Returns a [`FastTError`] when the context lacks a required input
    /// (e.g. a start strategy without the raw training graph) or the
    /// cluster cannot host any plan.
    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError>;
}

/// Hashes planner parameters for [`Planner::fingerprint_extra`]: feeds every
/// `u64` through the std `DefaultHasher` (stable SipHash). Floats should be
/// passed as `f64::to_bits`.
pub fn hash_params(parts: &[u64]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    parts.hash(&mut h);
    h.finish()
}
