//! Concurrent candidate evaluation with cache-aware arbitration.

use super::cache::{Fingerprint, FingerprintContext, PlanCache};
use super::{Planner, PlannerKind, PlanningContext};
use crate::error::FastTError;
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::{HardwarePerf, SimConfig};
use fastt_telemetry::{jobj, Collector, FINE_BUCKETS};
use std::sync::Arc;
use std::time::Instant;

/// Shared inputs for one portfolio evaluation (the borrowed counterpart of
/// [`PlanningContext`]; each planner thread derives its own context — with
/// its own cost-model clone — from these).
#[derive(Debug, Clone)]
pub struct PortfolioInputs<'a> {
    /// The graph strategies are computed from.
    pub graph: &'a Graph,
    /// The raw (unreplicated) training graph, for start-strategy planners.
    pub raw: Option<&'a Graph>,
    /// The currently deployed plan, for the order-only planner.
    pub current: Option<&'a Plan>,
    /// The live topology.
    pub topo: &'a Topology,
    /// The hardware performance model.
    pub hw: &'a HardwarePerf,
    /// The session's cost models (cloned per planner thread).
    pub cost: &'a CostModels,
    /// Telemetry collector shared by every planner thread and the
    /// portfolio's own `planner.*` events.
    pub collector: Option<Arc<Collector>>,
    /// Whether planners may emit an enforced execution order.
    pub enable_order: bool,
    /// Pinned data-parallel parameter server.
    pub dp_ps: Option<DeviceId>,
    /// Per-session salt separating fitted cost-model states in a cache
    /// shared across jobs (see [`FingerprintContext::cache_salt`]); 0 for
    /// session-local caches.
    pub cache_salt: u64,
    /// When `Some`, every candidate plan (fresh or cached) is probed with
    /// one simulated iteration under this configuration and arbitration
    /// uses the *simulated* time; when `None`, arbitration falls back to
    /// the planners' own `est_finish` estimates (plans with NaN estimates —
    /// the start strategies — then never win).
    pub probe: Option<SimConfig>,
}

/// What one planner produced during a portfolio evaluation.
#[derive(Debug)]
pub struct CandidateOutcome {
    /// [`Planner::name`] of the producing planner.
    pub planner: &'static str,
    /// The producing planner's family.
    pub kind: PlannerKind,
    /// The computed (or cache-served) plan; `None` when planning failed.
    pub plan: Option<Plan>,
    /// Probed iteration time, when a probe was requested and succeeded.
    pub simulated: Option<f64>,
    /// Simulated-iteration evaluations the planner consumed (black-box
    /// searchers; 0 for white-box planners and cache hits).
    pub evals_used: u32,
    /// Whether the plan came from the [`PlanCache`].
    pub cached: bool,
    /// Wall-clock seconds spent inside the planner (0 for cache hits).
    pub calc_secs: f64,
    /// The planning or probing failure, if any.
    pub error: Option<FastTError>,
    /// The planner thread's mutated cost-model clone (e.g. OS-DPOS sub-op
    /// seeds); the session adopts the winner's. `None` for cache hits.
    pub cost: Option<CostModels>,
}

impl CandidateOutcome {
    /// The planner's own finish-time estimate (NaN when planning failed or
    /// the planner does not estimate).
    pub fn est_finish(&self) -> f64 {
        self.plan.as_ref().map(|p| p.est_finish).unwrap_or(f64::NAN)
    }
}

/// The result of [`Portfolio::evaluate`]: every candidate outcome (in
/// planner order) and the arbitration winner.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// One outcome per portfolio planner, in portfolio order.
    pub candidates: Vec<CandidateOutcome>,
    /// Index of the winning candidate, if any scored.
    pub winner: Option<usize>,
}

impl PortfolioOutcome {
    /// The winning candidate, if any.
    pub fn winning(&self) -> Option<&CandidateOutcome> {
        self.winner.map(|i| &self.candidates[i])
    }

    /// Consumes the outcome and returns the winning plan.
    pub fn into_winning_plan(mut self) -> Option<Plan> {
        let i = self.winner?;
        self.candidates[i].plan.take()
    }
}

/// An ordered set of [`Planner`]s evaluated concurrently — one OS thread
/// per non-cached planner via [`std::thread::scope`], each with its own
/// cost-model clone, all sharing one telemetry collector.
///
/// Arbitration is deterministic regardless of thread scheduling: results
/// are collected in planner order and the winner is the lowest score with
/// ties broken by portfolio position (so callers encode preference —
/// e.g. *re-plan before fallback* — by ordering the planners).
#[derive(Default)]
pub struct Portfolio {
    planners: Vec<Box<dyn Planner>>,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field(
                "planners",
                &self.planners.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Portfolio {
    /// Creates an empty portfolio.
    pub fn new() -> Self {
        Portfolio::default()
    }

    /// Appends a planner (builder style).
    pub fn with(mut self, planner: Box<dyn Planner>) -> Self {
        self.planners.push(planner);
        self
    }

    /// Appends a planner.
    pub fn push(&mut self, planner: Box<dyn Planner>) {
        self.planners.push(planner);
    }

    /// The planners, in evaluation/preference order.
    pub fn planners(&self) -> &[Box<dyn Planner>] {
        &self.planners
    }

    /// Number of planners.
    pub fn len(&self) -> usize {
        self.planners.len()
    }

    /// Whether the portfolio has no planners.
    pub fn is_empty(&self) -> bool {
        self.planners.is_empty()
    }

    /// Evaluates every planner against `inputs` and arbitrates.
    ///
    /// With a cache, each cacheable planner's [`Fingerprint`] is looked up
    /// first (`planner.cache_hit` / `planner.cache_miss` telemetry); fresh
    /// plans are inserted afterwards. Cache-served plans are still probed —
    /// a memoized plan that no longer fits the cluster loses the
    /// arbitration instead of being deployed blind.
    pub fn evaluate(
        &self,
        inputs: &PortfolioInputs<'_>,
        cache: Option<&PlanCache>,
    ) -> PortfolioOutcome {
        let n = self.planners.len();
        let col = inputs.collector.clone();
        let _portfolio_phase = col.as_deref().map(|c| c.phase("portfolio"));

        // Cache pass (main thread, planner order — deterministic).
        let _cache_phase = col.as_deref().map(|c| c.phase("cache_pass"));
        let mut fingerprints: Vec<Option<Fingerprint>> = Vec::with_capacity(n);
        let mut cached_plans: Vec<Option<Plan>> = Vec::with_capacity(n);
        let fp_ctx = FingerprintContext {
            dp_ps: inputs.dp_ps,
            enable_order: inputs.enable_order,
            cache_salt: inputs.cache_salt,
        };
        for p in &self.planners {
            let (fp, hit) = match cache {
                Some(c) if p.cacheable() => {
                    let lookup_t0 = Instant::now();
                    let fp = Fingerprint::compute(
                        p.as_ref(),
                        inputs.graph,
                        inputs.raw,
                        inputs.topo,
                        inputs.cost,
                        &fp_ctx,
                    );
                    let hit = c.get(&fp, inputs.topo);
                    if let Some(col) = &col {
                        col.metrics().observe_with(
                            "planner.cache_lookup",
                            lookup_t0.elapsed().as_secs_f64(),
                            &FINE_BUCKETS,
                        );
                    }
                    if let Some(col) = &col {
                        let kind = if hit.is_some() {
                            col.metrics().inc("planner.cache_hits");
                            "planner.cache_hit"
                        } else {
                            col.metrics().inc("planner.cache_misses");
                            "planner.cache_miss"
                        };
                        col.emit(
                            kind,
                            jobj! {
                                "planner" => p.name(),
                                "graph_hash" => fp.graph_hash,
                                "capacity_mask" => fp.capacity_mask,
                                "cost_generation" => fp.cost_generation,
                            },
                        );
                    }
                    (Some(fp), hit)
                }
                _ => (None, None),
            };
            fingerprints.push(fp);
            cached_plans.push(hit);
        }
        drop(_cache_phase);

        // Planning pass: uncached planners run concurrently, one scoped
        // thread each (a single job runs inline — no thread overhead).
        // Results land in planner order, so scheduling cannot affect
        // arbitration.
        type PlanRun = (Result<Plan, FastTError>, u32, f64, CostModels);
        let jobs: Vec<usize> = (0..n).filter(|&i| cached_plans[i].is_none()).collect();
        let run = |i: usize| -> PlanRun {
            let mut ctx = PlanningContext {
                graph: inputs.graph,
                raw: inputs.raw,
                current: inputs.current,
                topo: inputs.topo,
                hw: inputs.hw,
                cost: inputs.cost.clone(),
                collector: inputs.collector.clone(),
                enable_order: inputs.enable_order,
                dp_ps: inputs.dp_ps,
                region_cache: cache,
                cache_salt: inputs.cache_salt,
                evals_used: 0,
            };
            let pcol = ctx.collector.clone();
            let _plan_phase = pcol.as_deref().map(|c| c.phase("plan"));
            let _name_phase = pcol.as_deref().map(|c| c.phase(self.planners[i].name()));
            let t0 = Instant::now();
            let res = self.planners[i].plan(&mut ctx);
            (res, ctx.evals_used, t0.elapsed().as_secs_f64(), ctx.cost)
        };
        let mut fresh: Vec<Option<PlanRun>> = (0..n).map(|_| None).collect();
        if jobs.len() == 1 {
            fresh[jobs[0]] = Some(run(jobs[0]));
        } else if !jobs.is_empty() {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|&i| (i, scope.spawn(move || run(i))))
                    .collect();
                for (i, h) in handles {
                    match h.join() {
                        Ok(r) => fresh[i] = Some(r),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        }

        // Assemble outcomes, probe, and fill the cache (main thread).
        let mut candidates: Vec<CandidateOutcome> = Vec::with_capacity(n);
        for (i, p) in self.planners.iter().enumerate() {
            let mut out = match (cached_plans[i].take(), fresh[i].take()) {
                (Some(plan), _) => CandidateOutcome {
                    planner: p.name(),
                    kind: p.kind(),
                    plan: Some(plan),
                    simulated: None,
                    evals_used: 0,
                    cached: true,
                    calc_secs: 0.0,
                    error: None,
                    cost: None,
                },
                (None, Some((res, evals, secs, cost))) => {
                    if let Some(col) = &col {
                        // Aggregate and per-planner latency (ROADMAP item-1
                        // SLO input); fine buckets — small-graph placements
                        // land sub-microsecond.
                        col.metrics()
                            .observe_with("planner.latency", secs, &FINE_BUCKETS);
                        col.metrics().observe_with(
                            &format!("planner.latency.{}", p.name()),
                            secs,
                            &FINE_BUCKETS,
                        );
                    }
                    let (plan, error) = match res {
                        Ok(plan) => (Some(plan), None),
                        Err(e) => (None, Some(e)),
                    };
                    CandidateOutcome {
                        planner: p.name(),
                        kind: p.kind(),
                        plan,
                        simulated: None,
                        evals_used: evals,
                        cached: false,
                        calc_secs: secs,
                        error,
                        cost: Some(cost),
                    }
                }
                (None, None) => unreachable!("every planner is cached or ran"),
            };
            if let (Some(plan), Some(probe)) = (&out.plan, &inputs.probe) {
                let _probe_phase = col.as_deref().map(|c| c.phase("probe"));
                match plan.simulate(inputs.topo, inputs.hw, probe) {
                    Ok(t) => out.simulated = Some(t.makespan),
                    Err(e) => out.error = Some(e.into()),
                }
            }
            if let (Some(c), Some(fp), Some(plan), false) =
                (cache, fingerprints[i].take(), out.plan.as_ref(), out.cached)
            {
                c.insert(fp, plan, inputs.topo);
            }
            candidates.push(out);
        }

        // Arbitration: lowest score wins, ties to the earliest planner.
        let score = |c: &CandidateOutcome| -> Option<f64> {
            let s = if inputs.probe.is_some() {
                c.simulated?
            } else {
                c.est_finish()
            };
            (!s.is_nan()).then_some(s)
        };
        let mut winner: Option<usize> = None;
        for (i, c) in candidates.iter().enumerate() {
            if let Some(s) = score(c) {
                let better = match winner {
                    Some(w) => s < score(&candidates[w]).unwrap_or(f64::INFINITY),
                    None => true,
                };
                if better {
                    winner = Some(i);
                }
            }
        }

        if let Some(col) = &col {
            for (i, c) in candidates.iter().enumerate() {
                col.metrics().inc("planner.candidates");
                col.emit(
                    "planner.candidate",
                    jobj! {
                        "planner" => c.planner,
                        "kind" => c.kind.as_str(),
                        "cached" => c.cached,
                        "ok" => c.error.is_none() && c.plan.is_some(),
                        "est_finish" => c.est_finish(),
                        "simulated" => c.simulated.unwrap_or(f64::NAN),
                        "evals_used" => c.evals_used as u64,
                        "calc_secs" => c.calc_secs,
                        "selected" => winner == Some(i),
                    },
                );
            }
            if let Some(w) = winner {
                let c = &candidates[w];
                col.metrics().inc("planner.selections");
                col.emit(
                    "planner.selected",
                    jobj! {
                        "planner" => c.planner,
                        "kind" => c.kind.as_str(),
                        "cached" => c.cached,
                        "score" => score(c).unwrap_or(f64::NAN),
                        "by" => if inputs.probe.is_some() { "probe" } else { "estimate" },
                        "candidates" => candidates.len() as u64,
                    },
                );
            }
        }

        PortfolioOutcome { candidates, winner }
    }
}
