//! Hierarchical placement over a structural decomposition (ROADMAP item 3,
//! after Tarnawski et al. and Mayer et al.).
//!
//! Flat DPOS scales with *op count*; this planner makes placement scale
//! with *region count* instead:
//!
//! 1. **decompose** the graph into a [`RegionTree`] (memoized per
//!    structure hash — recovery and drift re-planning reuse it);
//! 2. **across**: run DPOS on the collapsed quotient graph (one node per
//!    region, comp costs seeded from the members' fitted means, memory
//!    from the members' planning bytes) to pick a home device per region;
//! 3. **within**: refine each non-trivial region with DPOS over the
//!    induced subgraph on its home *server's* GPUs (small regions keep the
//!    home device — the exact case), consulting the [`PlanCache`]'s
//!    region-granular store first so repeated layers and twin jobs reuse
//!    sub-plans;
//! 4. **expand** back to a per-op [`Placement`], repair memory overruns
//!    and colocation groups, validate against the existing checker, and
//!    take the finish estimate from the quotient schedule (a full-graph
//!    fixed-placement EFT pass would cost as much as flat DPOS — the
//!    probe-and-pick arbitration re-judges the estimate anyway).
//!
//! On a 13k-op stacked Transformer the quotient has ~34 nodes, so the
//! planning hot path runs two orders of magnitude fewer EFT scans than
//! flat DPOS while the probe-and-pick arbitration in the [`Portfolio`]
//! keeps it honest: it only wins when its *simulated* iteration time is
//! strictly better-or-tied-earlier.
//!
//! [`Portfolio`]: super::Portfolio

use super::{hash_params, Planner, PlannerKind, PlanningContext};
use crate::error::FastTError;
use crate::os_dpos::dpos_plan_opt;
use crate::planner::cache::Fingerprint;
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{decompose_with, DecomposeOptions, Graph, OpId, RegionTree};
use fastt_sim::Placement;
use fastt_telemetry::jobj;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Regions at or below this size skip within-region refinement and inherit
/// the quotient's home device verbatim (the "exact" small-region case: a
/// handful of series ops gain nothing from spreading).
const REFINE_THRESHOLD: usize = 4;

/// Decomposition memo: structure hash → (tree, cold decompose seconds).
/// Bounded FIFO; sessions re-plan the same structure many times (recovery
/// probing, drift refits, perfbench repeats), and the decomposition is a
/// pure function of the graph.
type DecompMemoEntry = (u64, Arc<RegionTree>, f64);
static DECOMP_MEMO: OnceLock<Mutex<Vec<DecompMemoEntry>>> = OnceLock::new();
const DECOMP_MEMO_CAP: usize = 8;

/// The memoized region tree for `graph` under default options, plus the
/// *cold* decomposition wall-clock (paid once per structure; hits are
/// free). Shared by the planner, the fingerprint computation, and the
/// bench harness so they all see one decomposition.
pub fn region_tree_for(graph: &Graph) -> (Arc<RegionTree>, f64) {
    let key = graph.structure_hash();
    let memo = DECOMP_MEMO.get_or_init(|| Mutex::new(Vec::new()));
    {
        let m = memo.lock().expect("decompose memo poisoned");
        if let Some((_, t, secs)) = m.iter().find(|(k, _, _)| *k == key) {
            return (Arc::clone(t), *secs);
        }
    }
    let t0 = Instant::now();
    let tree = Arc::new(decompose_with(graph, DecomposeOptions::for_graph(graph)));
    let secs = t0.elapsed().as_secs_f64();
    let mut m = memo.lock().expect("decompose memo poisoned");
    if let Some((_, t, s)) = m.iter().find(|(k, _, _)| *k == key) {
        return (Arc::clone(t), *s); // racer filled it first
    }
    m.push((key, Arc::clone(&tree), secs));
    while m.len() > DECOMP_MEMO_CAP {
        m.remove(0);
    }
    (tree, secs)
}

/// Hierarchical planner: DPOS across the region quotient, DPOS (or the
/// identity, for small regions) within each region, region-granular plan
/// caching, and a repaired, validated per-op expansion.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalPlanner {
    /// Decomposition override; `None` uses [`DecomposeOptions::for_graph`]
    /// (and the shared memo — custom options bypass it).
    pub opts: Option<DecomposeOptions>,
}

impl Planner for HierarchicalPlanner {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::WhiteBox
    }

    fn uses_regions(&self) -> bool {
        true
    }

    fn fingerprint_extra(&self) -> u64 {
        match &self.opts {
            None => 0,
            Some(o) => hash_params(&[
                o.max_region_ops as u64,
                o.max_rounds as u64,
                o.dfs_budget as u64,
            ]),
        }
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        let graph = ctx.graph;
        if ctx.topo.gpu_count() == 0 {
            return Err(FastTError::ClusterExhausted);
        }
        if graph.op_count() == 0 {
            return Err(FastTError::InvalidArgument(
                "hierarchical planning needs a non-empty graph",
            ));
        }

        let col = ctx.collector.clone();
        let _hier_phase = col.as_deref().map(|c| c.phase("hierarchical"));

        // 1. Decompose (memoized for default options).
        let decomp_phase = col.as_deref().map(|c| c.phase("decompose"));
        let (tree, decompose_secs) = match self.opts {
            None => region_tree_for(graph),
            Some(o) => {
                let t0 = Instant::now();
                let t = Arc::new(decompose_with(graph, o));
                (t, t0.elapsed().as_secs_f64())
            }
        };
        drop(decomp_phase);

        // 2. Across: DPOS on the quotient graph.
        let across_phase = col.as_deref().map(|c| c.phase("across"));
        let t_across = Instant::now();
        let (qgraph, qcost) = build_quotient(graph, &tree, ctx)?;
        let qplan = dpos_plan_opt(&qgraph, ctx.topo, &qcost, ctx.hw, col.as_deref());
        let across_secs = t_across.elapsed().as_secs_f64();
        drop(across_phase);

        // 3. Expand + within-region refinement.
        let within_phase = col.as_deref().map(|c| c.phase("within"));
        let t_within = Instant::now();
        let mut devices: Vec<DeviceId> = Vec::with_capacity(graph.op_count());
        devices.resize(graph.op_count(), DeviceId(0));
        for (id, r) in tree.regions() {
            let home = qplan.placement.device_of(fastt_graph::OpId(id.0));
            for &op in &r.ops {
                devices[op.index()] = home;
            }
        }
        let mut narrowed: HashMap<u16, Topology> = HashMap::new();
        let mut region_hits = 0u64;
        for (id, r) in tree.regions() {
            if r.len() <= REFINE_THRESHOLD {
                continue;
            }
            let home = qplan.placement.device_of(fastt_graph::OpId(id.0));
            let server = ctx.topo.server_of(home);
            let narrow = narrowed
                .entry(server)
                .or_insert_with(|| narrow_to_server(ctx.topo, server));
            if narrow.gpu_count() <= 1 {
                continue; // nothing to spread over
            }
            if refine_region(graph, r, narrow, ctx, &mut devices) {
                region_hits += 1;
            }
        }
        let within_secs = t_within.elapsed().as_secs_f64();
        drop(within_phase);

        // 4. Repair: memory overruns first (region placement is only an
        // approximation of per-op bytes), then colocation groups.
        let repair_phase = col.as_deref().map(|c| c.phase("repair"));
        repair_memory(graph, ctx, &mut devices);
        for group in graph.colocation_groups() {
            if let Some(&first) = group.first() {
                let d = devices[first.index()];
                for &op in group {
                    devices[op.index()] = d;
                }
            }
        }
        drop(repair_phase);

        let placement = Placement::new(devices);
        placement
            .validate(graph, ctx.topo)
            .map_err(|e| FastTError::Sim(fastt_sim::SimError::InvalidPlacement(e)))?;

        // 5. Estimate from the *quotient* schedule — the whole point of the
        // hierarchy is that the full-graph fixed-placement EFT pass costs
        // as much as flat DPOS, while the region-level schedule already
        // carries the members' summed comp means and the aggregated
        // boundary traffic. No per-op order is pinned: the sub-plans were
        // placed independently, so the simulator's own list scheduler
        // sequences ops (probe-and-pick arbitration judges the result).
        let est_finish = qplan.est_finish;

        if let Some(col) = ctx.collector.as_deref() {
            let m = col.metrics();
            m.set_gauge("hier.regions", tree.len() as f64);
            m.set_gauge("hier.rounds", tree.rounds() as f64);
            m.set_gauge("hier.residual", tree.residual_regions().len() as f64);
            m.set_gauge("hier.decompose_secs", decompose_secs);
            m.set_gauge("hier.across_secs", across_secs);
            m.set_gauge("hier.within_secs", within_secs);
            col.emit(
                "hier.plan",
                jobj! {
                    "ops" => graph.op_count() as u64,
                    "regions" => tree.len() as u64,
                    "rounds" => tree.rounds() as u64,
                    "decompose_secs" => decompose_secs,
                    "across_secs" => across_secs,
                    "within_secs" => within_secs,
                    "region_cache_hits" => region_hits,
                    "est_finish" => est_finish,
                },
            );
        }

        Ok(Plan {
            graph: graph.clone(),
            splits: Vec::new(),
            placement,
            order: None,
            est_finish,
        })
    }
}

/// Builds the quotient graph (one node per region) and a cost-model clone
/// with per-region comp costs seeded from the members' fitted means.
/// Quotient `param_bytes` carries the members' total *planning* bytes so
/// DPOS's memory accounting approximates region sums.
fn build_quotient(
    graph: &Graph,
    tree: &RegionTree,
    ctx: &PlanningContext<'_>,
) -> Result<(Graph, fastt_cost::CostModels), FastTError> {
    use fastt_graph::{OpKind, Operation};
    let mut q = Graph::new();
    let gpus: Vec<DeviceId> = ctx.topo.gpu_ids().collect();
    let mut qcost = ctx.cost.clone();
    for (id, r) in tree.regions() {
        let flops: u64 = r.ops.iter().map(|&o| graph.op_ref(o).flops).sum();
        let bytes: u64 = r
            .ops
            .iter()
            .map(|&o| ctx.hw.planning_bytes(graph.op_ref(o)))
            .sum();
        let name = format!("region{}", id.0);
        q.add_op(
            Operation::new(&name, OpKind::MatMul, [1, 1])
                .with_flops(flops)
                .with_param_bytes(bytes),
        )
        .map_err(|_| FastTError::InvalidArgument("quotient region name collision"))?;
        for &d in &gpus {
            let secs: f64 = r
                .ops
                .iter()
                .map(|&o| ctx.cost.comp.get(&graph.op_ref(o).name, d).unwrap_or(0.0))
                .sum();
            qcost.comp.seed(&name, &[d], secs);
        }
    }
    for &(s, d, bytes) in tree.quotient_edges() {
        q.connect_bytes(fastt_graph::OpId(s.0), fastt_graph::OpId(d.0), bytes)
            .map_err(|_| FastTError::InvalidArgument("quotient edge rejected"))?;
    }
    Ok((q, qcost))
}

/// A copy of `topo` with every GPU outside `server` blacklisted (hosts stay
/// live so routing keeps working) — the within-region planning universe.
fn narrow_to_server(topo: &Topology, server: u16) -> Topology {
    let mut t = topo.clone();
    let others: Vec<DeviceId> = topo
        .gpu_ids()
        .filter(|&d| topo.server_of(d) != server)
        .collect();
    for d in others {
        t.fail_device(d);
    }
    t
}

/// Refines one region with DPOS over its induced subgraph on the narrowed
/// topology, consulting the cache's region-granular store first. Returns
/// whether the sub-plan came from the cache.
fn refine_region(
    graph: &Graph,
    r: &fastt_graph::Region,
    narrow: &Topology,
    ctx: &mut PlanningContext<'_>,
    devices: &mut [DeviceId],
) -> bool {
    let fp = ctx.region_cache.map(|_| region_fingerprint(r, narrow, ctx));
    if let (Some(cache), Some(fp)) = (ctx.region_cache, &fp) {
        if let Some(plan) = cache.get_region(fp, narrow) {
            if plan.placement.len() == r.len() {
                for (i, &op) in r.ops.iter().enumerate() {
                    devices[op.index()] = plan.placement.device_of(OpId(i as u32));
                }
                return true;
            }
        }
    }

    let sub = induced_subgraph(graph, &r.ops);
    let plan = dpos_plan_opt(&sub, narrow, &ctx.cost, ctx.hw, None);
    for (i, &op) in r.ops.iter().enumerate() {
        devices[op.index()] = plan.placement.device_of(OpId(i as u32));
    }
    if let (Some(cache), Some(fp)) = (ctx.region_cache, fp) {
        cache.insert_region(fp, &plan, narrow);
    }
    false
}

/// The cache key for one region's sub-plan: the order-canonical region hash
/// as the graph component, the narrowed server slice's shape as capacity,
/// and the usual cost-generation / salt split (mirroring
/// [`Fingerprint::compute`]'s salting rule).
fn region_fingerprint(
    r: &fastt_graph::Region,
    narrow: &Topology,
    ctx: &PlanningContext<'_>,
) -> Fingerprint {
    let generation = ctx.cost.generation();
    Fingerprint {
        graph_hash: r.hash,
        region_hash: r.hash,
        capacity_mask: narrow.shape_hash(),
        cost_generation: generation,
        context: if generation > 0 {
            super::cache::mix(ctx.cache_salt)
        } else {
            0
        },
        planner: "hierarchical.region",
        extra: 0,
    }
}

/// The subgraph induced by `ops` (ascending), preserving names, internal
/// edges, and fully-internal colocation groups. Sub op `i` is `ops[i]`.
fn induced_subgraph(graph: &Graph, ops: &[OpId]) -> Graph {
    let mut sub = Graph::new();
    let mut index_of: HashMap<OpId, OpId> = HashMap::with_capacity(ops.len());
    for &op in ops {
        let id = sub
            .add_op(graph.op_ref(op).clone())
            .expect("names unique in parent graph");
        index_of.insert(op, id);
    }
    for &op in ops {
        for e in graph.out_edges(op) {
            if let (Some(&s), Some(&d)) = (index_of.get(&e.src), index_of.get(&e.dst)) {
                sub.connect_bytes(s, d, e.bytes)
                    .expect("edge maps into subgraph");
            }
        }
    }
    for group in graph.colocation_groups() {
        let mapped: Vec<OpId> = group
            .iter()
            .filter_map(|o| index_of.get(o).copied())
            .collect();
        if mapped.len() == group.len() && mapped.len() > 1 {
            sub.colocate(&mapped);
        }
    }
    sub
}

/// Greedy memory repair: while a device holds more planning bytes than its
/// capacity, move the largest offending op (with its colocation group) to
/// the live GPU with the most free memory that fits it. Bounded; mirrors
/// DPOS's own max-free fallback, at the expansion layer.
fn repair_memory(graph: &Graph, ctx: &PlanningContext<'_>, devices: &mut [DeviceId]) {
    let topo = ctx.topo;
    let n = topo.device_count();
    let mut used = vec![0u64; n];
    let need: Vec<u64> = graph
        .iter_ops()
        .map(|(_, op)| ctx.hw.planning_bytes(op))
        .collect();
    for (id, _) in graph.iter_ops() {
        used[devices[id.index()].index()] += need[id.index()];
    }
    let over = |used: &[u64]| -> Option<DeviceId> {
        topo.gpu_ids()
            .filter(|d| used[d.index()] > topo.device(*d).mem_bytes)
            .max_by_key(|d| used[d.index()] - topo.device(*d).mem_bytes)
    };
    let mut moves = 0usize;
    let budget = graph.op_count() * 2;
    while let Some(src) = over(&used) {
        if moves >= budget {
            break;
        }
        // Largest movable unit on the offender: an op plus its colocation
        // group (groups move together or not at all).
        let mut best: Option<(u64, Vec<OpId>)> = None;
        for (id, _) in graph.iter_ops() {
            if devices[id.index()] != src {
                continue;
            }
            let unit: Vec<OpId> = match graph.colocation_group(id) {
                Some(g) => {
                    if g.first() != Some(&id) {
                        continue; // count each group once
                    }
                    g.to_vec()
                }
                None => vec![id],
            };
            let bytes: u64 = unit.iter().map(|o| need[o.index()]).sum();
            if best.as_ref().map(|(b, _)| bytes > *b).unwrap_or(true) {
                best = Some((bytes, unit));
            }
        }
        let Some((bytes, unit)) = best else { break };
        let dst = topo
            .gpu_ids()
            .filter(|&d| d != src)
            .filter(|&d| topo.device(d).mem_bytes.saturating_sub(used[d.index()]) >= bytes)
            .max_by_key(|&d| topo.device(d).mem_bytes - used[d.index()]);
        let Some(dst) = dst else { break }; // nowhere fits: leave as-is
        for o in unit {
            used[src.index()] -= need[o.index()];
            used[dst.index()] += need[o.index()];
            devices[o.index()] = dst;
        }
        moves += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cost::CostModels;
    use fastt_models::Model;
    use fastt_sim::HardwarePerf;

    #[test]
    fn hierarchical_plan_is_valid_and_deterministic() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::multi_server(2, 2);
        let hw = HardwarePerf::new();
        let plan1 = {
            let mut ctx = PlanningContext::new(&g, &topo, &hw, CostModels::new());
            HierarchicalPlanner::default().plan(&mut ctx).unwrap()
        };
        plan1.placement.validate(&g, &topo).unwrap();
        let plan2 = {
            let mut ctx = PlanningContext::new(&g, &topo, &hw, CostModels::new());
            HierarchicalPlanner::default().plan(&mut ctx).unwrap()
        };
        let d1: Vec<DeviceId> = plan1.placement.iter().map(|(_, d)| d).collect();
        let d2: Vec<DeviceId> = plan2.placement.iter().map(|(_, d)| d).collect();
        assert_eq!(d1, d2, "same inputs must yield the same placement");
        assert_eq!(plan1.est_finish.to_bits(), plan2.est_finish.to_bits());
    }

    #[test]
    fn colocation_groups_survive_expansion() {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();
        let mut ctx = PlanningContext::new(&g, &topo, &hw, CostModels::new());
        let plan = HierarchicalPlanner::default().plan(&mut ctx).unwrap();
        for group in g.colocation_groups() {
            let d0 = plan.placement.device_of(group[0]);
            for &op in group {
                assert_eq!(plan.placement.device_of(op), d0);
            }
        }
    }
}
