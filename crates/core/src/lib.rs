//! # fastt
//!
//! Core of the FastT reproduction (*"Fast Training of Deep Learning Models
//! over Multiple GPUs"*, Middleware '20): white-box heuristics that compute,
//! for a DNN training graph on a multi-GPU cluster,
//!
//! 1. a list of operations to **split** into sub-operations (fine-grained
//!    mixed data/model parallelism, Sec. 5.2),
//! 2. a **device placement** for every (sub-)operation (Alg. 1), and
//! 3. an enforced **execution order** (Sec. 6.1),
//!
//! driven by adaptive cost models learned from profiled iterations
//! ([`fastt_cost`]), and validated on a simulated V100 cluster
//! ([`fastt_sim`]).
//!
//! The central entry points are:
//!
//! * [`dpos`] / [`dpos_plan`] — Alg. 1, Device Placement and Operation
//!   Sequencing;
//! * [`os_dpos`] — Alg. 2, critical-path operation splitting on top of DPOS;
//! * [`TrainingSession`] — the paper's full workflow: bootstrap the cost
//!   models with a start strategy, recompute strategies, activate or roll
//!   back, finish when the models stabilize (Sec. 4);
//! * [`search`] — honest re-implementations of the comparison systems
//!   (REINFORCE, GDP, Post, FlexFlow) for the Fig. 3 experiments.
//!
//! # Examples
//!
//! Run the full FastT workflow on a small model over two simulated GPUs:
//!
//! ```
//! use fastt::{SessionConfig, TrainingSession};
//! use fastt_cluster::Topology;
//! use fastt_models::Model;
//! use fastt_sim::HardwarePerf;
//!
//! let graph = Model::LeNet.training_graph(64);
//! let mut session = TrainingSession::new(
//!     &graph,
//!     Topology::single_server(2),
//!     HardwarePerf::new(),
//!     SessionConfig::default(),
//! )?;
//! let report = session.pre_train()?;
//! assert!(report.final_iter_time.is_finite());
//! # Ok::<(), fastt::FastTError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dpos;
mod error;
pub mod fleet;
mod os_dpos;
mod pipeline;
pub mod planner;
mod profiling;
mod rank;
pub mod search;
mod session;
mod strategy;
mod timeline;

pub use dpos::{dpos, dpos_with, schedule_for_placement, DposFlags, Schedule};
pub use error::FastTError;
pub use fleet::{
    fleet_slos, seeded_workload, ClusterManager, FleetEvent, FleetReport, JobSpec, JobStats,
};
pub use os_dpos::{dpos_plan, os_dpos, OsDposOptions};
pub use pipeline::pipeline_plan;
pub use planner::{
    default_slos, region_tree_for, CandidateOutcome, DataParallelPlanner, DposPlanner, Fingerprint,
    FingerprintContext, HierarchicalPlanner, ModelParallelPlanner, OrderOnlyPlanner, OsDposPlanner,
    PipelinePlanner, PlanCache, Planner, PlannerKind, PlanningContext, Portfolio, PortfolioInputs,
    PortfolioOutcome, PLANNER_LATENCY_P95_TARGET,
};
pub use profiling::bootstrap_cost_models;
pub use rank::{critical_path, critical_path_placed, upward_ranks};
pub use session::{LadderRung, PreTrainReport, RecoveryEvent, SessionConfig, TrainingSession};
pub use strategy::{data_parallel_plan, data_parallel_plan_on, model_parallel_plan, Plan};
pub use timeline::DeviceTimeline;
