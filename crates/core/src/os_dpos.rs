//! OS-DPOS — Operation Splitting DPOS (Alg. 2 of the paper).
//!
//! Starting from a DPOS schedule, walk the *placed* critical path in
//! descending order of computation time and try splitting each operation
//! along its parallelizable dimensions; keep a split only if the re-run DPOS
//! estimate of `FT(o_exit)` improves, and stop at the first operation whose
//! best split does not improve it (Sec. 5.2).

use crate::dpos::{dpos, dpos_opt};
use crate::rank::critical_path_placed;
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::{split_operation, Graph, SplitDecision};
use fastt_sim::HardwarePerf;
use fastt_telemetry::{jobj, Collector};

/// Options controlling the split search.
#[derive(Debug, Clone)]
pub struct OsDposOptions {
    /// Split counts to try. The paper's Alg. 2 uses `n = #GPUs`; we also try
    /// the intermediate powers of two (documented in DESIGN.md) because a
    /// 2-way split of a batch-64 op may fit where an 8-way split does not.
    pub split_counts: Vec<u32>,
    /// Safety cap on the number of accepted splits.
    pub max_splits: usize,
}

impl OsDposOptions {
    /// Default options for a topology: powers of two up to the device count.
    pub fn for_topology(topo: &Topology) -> Self {
        let mut counts = Vec::new();
        let mut n = 2u32;
        while (n as usize) <= topo.gpu_count() {
            counts.push(n);
            n *= 2;
        }
        OsDposOptions {
            split_counts: counts,
            max_splits: 64,
        }
    }
}

/// Runs plain DPOS and wraps the result in a [`Plan`] (no splitting).
pub fn dpos_plan(graph: &Graph, topo: &Topology, cost: &CostModels, hw: &HardwarePerf) -> Plan {
    dpos_plan_opt(graph, topo, cost, hw, None)
}

/// [`dpos_plan`] with an optional collector for scheduler decision tracing
/// (`dpos.place` events). The planner layer threads the context's collector
/// through here — there is no separate `*_traced` duplicate.
pub(crate) fn dpos_plan_opt(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
    col: Option<&Collector>,
) -> Plan {
    let s = dpos_opt(graph, topo, cost, hw, col);
    Plan {
        graph: graph.clone(),
        splits: Vec::new(),
        placement: s.placement,
        order: Some(s.order),
        est_finish: s.est_finish,
    }
}

/// Runs OS-DPOS: DPOS plus critical-path operation splitting.
///
/// Freshly created sub-operations are seeded in the computation cost model
/// with the analytic prior `parent_time / n` per device (refined by later
/// profiling); `Split`/`Concat` plumbing starts unprofiled, i.e. at zero
/// cost, exactly like any other unexplored op (Sec. 4).
pub fn os_dpos(
    graph: &Graph,
    topo: &Topology,
    cost: &mut CostModels,
    hw: &HardwarePerf,
    opts: &OsDposOptions,
) -> Plan {
    os_dpos_opt(graph, topo, cost, hw, opts, None)
}

/// [`os_dpos`] with an optional collector: when tracing, the base DPOS run
/// emits `dpos.place` events and every split verdict (accepted,
/// rejected-and-stop) is emitted as a `dpos.split` event with the chosen
/// dimension and degree. The inner DPOS re-runs of the split search stay
/// untraced to bound event volume.
pub(crate) fn os_dpos_opt(
    graph: &Graph,
    topo: &Topology,
    cost: &mut CostModels,
    hw: &HardwarePerf,
    opts: &OsDposOptions,
    col: Option<&Collector>,
) -> Plan {
    let base = dpos_opt(graph, topo, cost, hw, col);
    let mut ft_old = base.est_finish;

    // Critical path under the actual placement, by descending compute time.
    let cp = critical_path_placed(graph, &base.placement, cost, topo);
    let mut cp_named: Vec<(String, f64)> = cp
        .iter()
        .map(|&o| {
            let name = graph.op_ref(o).name.clone();
            let d = base.placement.device_of(o);
            let t = cost.comp.get(&name, d).unwrap_or(0.0);
            (name, t)
        })
        .collect();
    cp_named.sort_by(|a, b| b.1.total_cmp(&a.1));

    let devices: Vec<DeviceId> = topo.gpu_ids().collect();
    let mut cur_graph = graph.clone();
    let mut cur_sched = base;
    let mut splits: Vec<SplitDecision> = Vec::new();

    for (name, _) in cp_named {
        if splits.len() >= opts.max_splits {
            break;
        }
        let Some(op) = cur_graph.by_name(&name) else {
            continue; // removed by an earlier accepted split
        };
        let kind = cur_graph.op_ref(op).kind;
        if kind.split_dims().is_empty() {
            continue; // nothing to try for this op
        }

        // Try every (dimension, count) candidate and keep the best estimate.
        // The phase covers this op's whole enumeration, including the inner
        // DPOS re-runs (which stay untraced and unprofiled individually to
        // bound volume — their time accrues to `split_enum`).
        let _enum_phase = col.map(|c| c.phase("split_enum"));
        let mut best: Option<(Graph, crate::dpos::Schedule, SplitDecision)> = None;
        for &dim in kind.split_dims() {
            for &n in &opts.split_counts {
                let Ok(res) = split_operation(&cur_graph, op, dim, n) else {
                    continue; // not divisible this way
                };
                // analytic prior for the sub-operations
                for d in &devices {
                    if let Some(t) = cost.comp.get(&name, *d) {
                        for &p in &res.parts {
                            cost.comp
                                .seed(&res.graph.op_ref(p).name, &[*d], t / n as f64);
                        }
                    }
                }
                let s = dpos(&res.graph, topo, cost, hw);
                let better = match &best {
                    Some((_, b, _)) => s.est_finish < b.est_finish,
                    None => true,
                };
                if better {
                    best = Some((
                        res.graph,
                        s,
                        SplitDecision {
                            op_name: name.clone(),
                            dim,
                            parts: n,
                        },
                    ));
                }
            }
        }

        match best {
            Some((g, s, dec)) if s.est_finish < ft_old => {
                if let Some(col) = col {
                    col.metrics().inc("dpos.splits_accepted");
                    col.emit(
                        "dpos.split",
                        jobj! {
                            "op" => dec.op_name.as_str(),
                            "dim" => dec.dim as u64,
                            "parts" => dec.parts as u64,
                            "est_before" => ft_old,
                            "est_after" => s.est_finish,
                            "accepted" => true,
                        },
                    );
                }
                ft_old = s.est_finish;
                cur_graph = g;
                cur_sched = s;
                splits.push(dec);
            }
            Some((_, s, dec)) => {
                // best split of this op does not help: stop the walk
                if let Some(col) = col {
                    col.metrics().inc("dpos.splits_rejected");
                    col.emit(
                        "dpos.split",
                        jobj! {
                            "op" => dec.op_name.as_str(),
                            "dim" => dec.dim as u64,
                            "parts" => dec.parts as u64,
                            "est_before" => ft_old,
                            "est_after" => s.est_finish,
                            "accepted" => false,
                        },
                    );
                }
                break;
            }
            None => continue, // no feasible split for this op: try the next
        }
    }

    Plan {
        graph: cur_graph,
        splits,
        placement: cur_sched.placement,
        order: Some(cur_sched.order),
        est_finish: ft_old,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    /// One heavy conv dominating the critical path, with profiled costs on
    /// every device, cheap profiled links: a split should help.
    fn heavy_conv_graph(cost: &mut CostModels, topo: &Topology) -> Graph {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [8, 32, 32, 8]))
            .unwrap();
        let c = g
            .add_op(Operation::new("conv", OpKind::Conv2D, [8, 32, 32, 8]).with_flops(1 << 34))
            .unwrap();
        let l = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
        g.connect(x, c).unwrap();
        g.connect(c, l).unwrap();
        for d in topo.gpu_ids() {
            cost.comp.observe("x", d, 1e-4);
            cost.comp.observe("conv", d, 1.0);
            cost.comp.observe("loss", d, 1e-4);
            for d2 in topo.gpu_ids() {
                if d != d2 {
                    cost.comm.observe(d, d2, 1 << 20, 1e-4);
                }
            }
        }
        cost.comm.refit();
        g
    }

    #[test]
    fn splits_heavy_critical_path_op() {
        let topo = Topology::single_server(4);
        let mut cost = CostModels::new();
        let g = heavy_conv_graph(&mut cost, &topo);
        let plan = os_dpos(
            &g,
            &topo,
            &mut cost,
            &HardwarePerf::new(),
            &OsDposOptions::for_topology(&topo),
        );
        assert!(
            !plan.splits.is_empty(),
            "dominant conv should be split: {:?}",
            plan.splits
        );
        assert_eq!(plan.splits[0].op_name, "conv");
        // the estimate improved over the unsplit serial 1s
        assert!(plan.est_finish < 1.0, "est = {}", plan.est_finish);
        plan.placement.validate(&plan.graph, &topo).unwrap();
    }

    #[test]
    fn no_split_on_single_device() {
        let topo = Topology::single_server(1);
        let mut cost = CostModels::new();
        let g = heavy_conv_graph(&mut cost, &topo);
        let opts = OsDposOptions::for_topology(&topo);
        assert!(opts.split_counts.is_empty());
        let plan = os_dpos(&g, &topo, &mut cost, &HardwarePerf::new(), &opts);
        assert!(plan.splits.is_empty());
    }

    #[test]
    fn unsplittable_ops_left_alone() {
        let topo = Topology::single_server(2);
        let mut cost = CostModels::new();
        let mut g = Graph::new();
        let a = g
            .add_op(Operation::new("bn", OpKind::BatchNorm, [8, 8]))
            .unwrap();
        let b = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
        g.connect(a, b).unwrap();
        cost.comp.observe("bn", fastt_cluster::DeviceId(0), 1.0);
        let plan = os_dpos(
            &g,
            &topo,
            &mut cost,
            &HardwarePerf::new(),
            &OsDposOptions::for_topology(&topo),
        );
        assert!(plan.splits.is_empty());
        assert_eq!(plan.graph.op_count(), 2);
    }

    #[test]
    fn split_graph_still_simulates() {
        use fastt_sim::{ExecPolicy, SimConfig};
        let topo = Topology::single_server(4);
        let mut cost = CostModels::new();
        let g = heavy_conv_graph(&mut cost, &topo);
        let plan = os_dpos(
            &g,
            &topo,
            &mut cost,
            &HardwarePerf::new(),
            &OsDposOptions::for_topology(&topo),
        );
        let order = plan.order.as_deref().unwrap();
        let tr = fastt_sim::simulate(
            &plan.graph,
            &topo,
            &plan.placement,
            &HardwarePerf::new(),
            ExecPolicy::Priority(order),
            &SimConfig::default(),
        )
        .unwrap();
        assert!(tr.makespan > 0.0);
    }

    #[test]
    fn dpos_plan_has_no_splits_but_an_order() {
        let topo = Topology::single_server(2);
        let mut cost = CostModels::new();
        let g = heavy_conv_graph(&mut cost, &topo);
        let plan = dpos_plan(&g, &topo, &cost, &HardwarePerf::new());
        assert!(plan.splits.is_empty());
        assert_eq!(plan.order.as_ref().unwrap().len(), g.op_count());
    }
}
