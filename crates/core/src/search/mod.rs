//! White-box re-implementations of the *essence* of the approaches FastT is
//! compared against in the paper's Fig. 3 — all driven by the same simulated
//! cluster, which makes the comparison honest (the paper itself compares
//! against numbers copied from the other systems' papers):
//!
//! * [`reinforce_search`] — REINFORCE \[32\]: a softmax placement policy
//!   updated by policy gradients over measured runtimes;
//! * [`cem_search`] — Post \[18\]: cross-entropy minimization over placement
//!   distributions;
//! * [`mcmc_search`] — FlexFlow \[27\]: Metropolis–Hastings search over
//!   placements (run it on the replicated graph to give it FlexFlow's larger
//!   solution space);
//! * [`gdp_place`] — GDP \[48\]: a one-shot rank-ordered min-EFT placement
//!   without operation splitting or order enforcement;
//! * [`random_search`] — the sanity-check baseline.
//!
//! The black-box methods *execute* candidate placements to obtain rewards
//! (here: one simulated iteration per candidate), which is exactly why they
//! need orders of magnitude more compute than FastT's white-box heuristics —
//! the paper's core argument. [`SearchResult::evals_used`] exposes that cost.

mod cem;
mod gdp;
mod mcmc;
mod random;
mod reinforce;

pub use cem::{cem_search, CemPlanner};
pub use gdp::{gdp_place, GdpPlanner};
pub use mcmc::{mcmc_search, McmcPlanner};
pub use random::{random_search, RandomPlanner};
pub use reinforce::{reinforce_search, ReinforcePlanner};

use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{Graph, OpId};
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// Outcome of a placement search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best placement found.
    pub placement: Placement,
    /// Its simulated per-iteration time.
    pub best_time: f64,
    /// Number of full (simulated) training iterations the search consumed —
    /// the resource cost the paper contrasts with FastT's minutes.
    pub evals_used: u32,
}

impl SearchResult {
    /// Wraps the found placement as a [`Plan`] over `graph` (no splits, no
    /// enforced order — the searchers place, they do not sequence), with
    /// the searched simulated time as the estimate.
    pub fn into_plan(self, graph: &Graph) -> Plan {
        Plan {
            graph: graph.clone(),
            splits: Vec::new(),
            placement: self.placement,
            order: None,
            est_finish: self.best_time,
        }
    }
}

/// Movable placement units: colocation groups move as one, everything else
/// individually. All searchers operate on unit genomes so they can never
/// produce an invalid placement.
pub(crate) struct Units {
    /// Each unit's member ops.
    pub members: Vec<Vec<OpId>>,
}

impl Units {
    pub(crate) fn of(graph: &Graph) -> Units {
        let mut members: Vec<Vec<OpId>> = Vec::new();
        let mut seen = vec![false; graph.op_count()];
        for op in graph.op_ids() {
            if seen[op.index()] {
                continue;
            }
            match graph.colocation_group(op) {
                Some(grp) => {
                    for &m in grp {
                        seen[m.index()] = true;
                    }
                    members.push(grp.to_vec());
                }
                None => {
                    seen[op.index()] = true;
                    members.push(vec![op]);
                }
            }
        }
        Units { members }
    }

    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    /// Expands a unit genome into a per-op placement.
    pub(crate) fn decode(&self, genome: &[u16], n_ops: usize) -> Placement {
        let mut p = Placement::uniform(n_ops, DeviceId(0));
        for (u, ops) in self.members.iter().enumerate() {
            for &o in ops {
                p.set(o, DeviceId(genome[u]));
            }
        }
        p
    }

    /// Compresses a placement into a unit genome (first member wins).
    pub(crate) fn encode(&self, p: &Placement) -> Vec<u16> {
        self.members
            .iter()
            .map(|ops| p.device_of(ops[0]).0)
            .collect()
    }
}

/// Shared evaluation harness: one simulated FIFO iteration per candidate.
pub(crate) struct Evaluator<'a> {
    pub graph: &'a Graph,
    pub topo: &'a Topology,
    pub hw: &'a HardwarePerf,
    pub evals: u32,
}

impl<'a> Evaluator<'a> {
    pub(crate) fn new(graph: &'a Graph, topo: &'a Topology, hw: &'a HardwarePerf) -> Self {
        Evaluator {
            graph,
            topo,
            hw,
            evals: 0,
        }
    }

    /// Simulated iteration time of a placement (`f64::INFINITY` on OOM or
    /// other failures, so searchers steer away from infeasible points).
    pub(crate) fn eval(&mut self, p: &Placement) -> f64 {
        self.evals += 1;
        match simulate(
            self.graph,
            self.topo,
            p,
            self.hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        ) {
            Ok(t) => t.makespan,
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn units_group_colocated_ops() {
        let mut g = Graph::new();
        let a = g
            .add_op(Operation::new("a", OpKind::Variable, [1]))
            .unwrap();
        let b = g
            .add_op(Operation::new("b", OpKind::ApplyGradient, [1]))
            .unwrap();
        let c = g.add_op(Operation::new("c", OpKind::Relu, [1])).unwrap();
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.colocate(&[a, b]);
        let u = Units::of(&g);
        assert_eq!(u.len(), 2);
        let p = u.decode(&[1, 0], 3);
        assert_eq!(p.device_of(a), p.device_of(b));
        assert_eq!(p.device_of(c), DeviceId(0));
        assert_eq!(u.encode(&p), vec![1, 0]);
    }

    #[test]
    fn evaluator_counts_and_handles_failures() {
        let mut g = Graph::new();
        g.add_op(Operation::new("w", OpKind::Variable, [1]).with_param_bytes(1 << 62))
            .unwrap();
        let topo = Topology::single_server(1);
        let hw = HardwarePerf::new();
        let mut ev = Evaluator::new(&g, &topo, &hw);
        let t = ev.eval(&Placement::uniform(1, DeviceId(0)));
        assert!(t.is_infinite());
        assert_eq!(ev.evals, 1);
    }
}
