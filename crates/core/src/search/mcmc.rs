//! Metropolis–Hastings placement search — the essence of FlexFlow's
//! execution-simulator-guided MCMC (Jia et al. \[27\]). Run it on the
//! data-parallel replicated graph to give it (part of) FlexFlow's larger
//! SOAP search space; with a large evaluation budget it can find placements
//! FastT's one-shot heuristic misses, at orders of magnitude higher search
//! cost — matching the paper's Fig. 3 relationship.

use super::{Evaluator, SearchResult, Units};
use fastt_cluster::Topology;
use fastt_graph::Graph;
use fastt_sim::{HardwarePerf, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `evals` MCMC steps starting from `start` (or a random placement when
/// `None`), proposing single-unit device moves and accepting by the
/// Metropolis rule at temperature `temp` (relative runtime units).
pub fn mcmc_search(
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    start: Option<&Placement>,
    evals: u32,
    temp: f64,
    seed: u64,
) -> SearchResult {
    let units = Units::of(graph);
    let n_dev = topo.gpu_count() as u16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = Evaluator::new(graph, topo, hw);

    let mut genome: Vec<u16> = match start {
        Some(p) => units.encode(p),
        None => (0..units.len()).map(|_| rng.gen_range(0..n_dev)).collect(),
    };
    let mut cur_time = ev.eval(&units.decode(&genome, graph.op_count()));
    let mut best_time = cur_time;
    let mut best_genome = genome.clone();

    for _ in 1..evals {
        let u = rng.gen_range(0..units.len());
        let old = genome[u];
        let mut new = rng.gen_range(0..n_dev);
        if new == old {
            new = (new + 1) % n_dev.max(1);
        }
        genome[u] = new;
        let t = ev.eval(&units.decode(&genome, graph.op_count()));
        let accept = if t <= cur_time {
            true
        } else if cur_time.is_finite() && t.is_finite() {
            let delta = (t - cur_time) / cur_time;
            rng.gen::<f64>() < (-delta / temp).exp()
        } else {
            false
        };
        if accept {
            cur_time = t;
            if t < best_time {
                best_time = t;
                best_genome = genome.clone();
            }
        } else {
            genome[u] = old;
        }
    }

    SearchResult {
        placement: units.decode(&best_genome, graph.op_count()),
        best_time,
        evals_used: ev.evals,
    }
}

/// [`mcmc_search`] as a seeded [`Planner`](crate::planner::Planner). When
/// `start_from_current` is set and the context carries a current plan over
/// the *same* graph, the chain starts from that placement (FlexFlow's
/// warm-started search); otherwise it starts from a seeded random point.
#[derive(Debug, Clone, Copy)]
pub struct McmcPlanner {
    /// MCMC steps (each one simulated evaluation).
    pub evals: u32,
    /// Metropolis temperature, in relative runtime units.
    pub temp: f64,
    /// RNG seed — explicit, so same-seed runs are bit-identical.
    pub seed: u64,
    /// Warm-start from the context's current plan when its graph matches.
    pub start_from_current: bool,
}

impl Default for McmcPlanner {
    fn default() -> Self {
        McmcPlanner {
            evals: 400,
            temp: 0.03,
            seed: fastt_sim::seed::planner_roots::MCMC,
            start_from_current: true,
        }
    }
}

impl crate::planner::Planner for McmcPlanner {
    fn name(&self) -> &'static str {
        "mcmc"
    }

    fn kind(&self) -> crate::planner::PlannerKind {
        crate::planner::PlannerKind::Search
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn cacheable(&self) -> bool {
        // the warm start depends on the current plan, which the
        // fingerprint does not capture
        !self.start_from_current
    }

    fn fingerprint_extra(&self) -> u64 {
        crate::planner::hash_params(&[self.evals as u64, self.temp.to_bits(), self.seed])
    }

    fn plan(
        &self,
        ctx: &mut crate::planner::PlanningContext<'_>,
    ) -> Result<crate::Plan, crate::FastTError> {
        let start = if self.start_from_current {
            ctx.current
                .filter(|c| c.graph.op_count() == ctx.graph.op_count())
                .map(|c| &c.placement)
        } else {
            None
        };
        let r = mcmc_search(
            ctx.graph, ctx.topo, ctx.hw, start, self.evals, self.temp, self.seed,
        );
        ctx.evals_used += r.evals_used;
        Ok(r.into_plan(ctx.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::DeviceId;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn improves_from_a_bad_start() {
        let mut g = Graph::new();
        for c in 0..4 {
            g.add_op(Operation::new(format!("m{c}"), OpKind::MatMul, [64]).with_flops(1 << 33))
                .unwrap();
        }
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();
        let all_on_zero = Placement::uniform(4, DeviceId(0));
        let r = mcmc_search(&g, &topo, &hw, Some(&all_on_zero), 60, 0.05, 9);
        let mut ev = super::super::Evaluator::new(&g, &topo, &hw);
        let start_time = ev.eval(&all_on_zero);
        assert!(
            r.best_time < start_time,
            "mcmc {} should beat serial {start_time}",
            r.best_time
        );
    }

    #[test]
    fn respects_colocation_groups() {
        let mut g = Graph::new();
        let v = g
            .add_op(Operation::new("v", OpKind::Variable, [1]))
            .unwrap();
        let u = g
            .add_op(Operation::new("u", OpKind::ApplyGradient, [1]))
            .unwrap();
        g.connect(v, u).unwrap();
        g.colocate(&[v, u]);
        let topo = Topology::single_server(4);
        let r = mcmc_search(&g, &topo, &HardwarePerf::new(), None, 20, 0.1, 5);
        r.placement.validate(&g, &topo).unwrap();
    }
}
