//! Cross-entropy method over placements — the essence of Post (Gao et al.
//! \[18\], "device placement with cross-entropy minimization and proximal
//! policy optimization"): keep a per-unit categorical distribution, sample a
//! population, refit the distribution to the elite fraction.

use super::{Evaluator, SearchResult, Units};
use fastt_cluster::Topology;
use fastt_graph::Graph;
use fastt_sim::HardwarePerf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `rounds` CEM rounds with `pop` samples per round, refitting to the
/// best `elite_frac` of each population.
pub fn cem_search(
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    rounds: u32,
    pop: u32,
    elite_frac: f64,
    seed: u64,
) -> SearchResult {
    assert!((0.0..=1.0).contains(&elite_frac), "elite_frac in [0,1]");
    let units = Units::of(graph);
    let n_dev = topo.gpu_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = Evaluator::new(graph, topo, hw);
    let smoothing = 0.1;

    let mut probs = vec![vec![1.0 / n_dev as f64; n_dev]; units.len()];
    let mut best_time = f64::INFINITY;
    let mut best_genome: Vec<u16> = vec![0; units.len()];

    for _ in 0..rounds {
        let mut scored: Vec<(Vec<u16>, f64)> = Vec::with_capacity(pop as usize);
        for _ in 0..pop {
            let genome: Vec<u16> = probs
                .iter()
                .map(|p| {
                    let x: f64 = rng.gen();
                    let mut acc = 0.0;
                    for (i, &q) in p.iter().enumerate() {
                        acc += q;
                        if x <= acc {
                            return i as u16;
                        }
                    }
                    (p.len() - 1) as u16
                })
                .collect();
            let t = ev.eval(&units.decode(&genome, graph.op_count()));
            if t < best_time {
                best_time = t;
                best_genome = genome.clone();
            }
            scored.push((genome, t));
        }
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let k = ((pop as f64 * elite_frac).ceil() as usize).max(1);
        let elite = &scored[..k.min(scored.len())];
        for (u, item) in probs.iter_mut().enumerate() {
            let mut counts = vec![0usize; n_dev];
            for (genome, _) in elite {
                counts[genome[u] as usize] += 1;
            }
            for (d, c) in counts.iter().enumerate() {
                let freq = *c as f64 / elite.len() as f64;
                item[d] = (1.0 - smoothing) * freq + smoothing * item[d];
            }
            // renormalize against drift
            let z: f64 = item.iter().sum();
            for q in item.iter_mut() {
                *q /= z;
            }
        }
    }

    SearchResult {
        placement: units.decode(&best_genome, graph.op_count()),
        best_time,
        evals_used: ev.evals,
    }
}

/// [`cem_search`] as a seeded [`Planner`](crate::planner::Planner).
#[derive(Debug, Clone, Copy)]
pub struct CemPlanner {
    /// CEM rounds.
    pub rounds: u32,
    /// Samples per round.
    pub pop: u32,
    /// Elite fraction each round refits to.
    pub elite_frac: f64,
    /// RNG seed — explicit, so same-seed runs are bit-identical.
    pub seed: u64,
}

impl Default for CemPlanner {
    fn default() -> Self {
        CemPlanner {
            rounds: 10,
            pop: 10,
            elite_frac: 0.25,
            seed: fastt_sim::seed::planner_roots::CEM,
        }
    }
}

impl crate::planner::Planner for CemPlanner {
    fn name(&self) -> &'static str {
        "cem"
    }

    fn kind(&self) -> crate::planner::PlannerKind {
        crate::planner::PlannerKind::Search
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn fingerprint_extra(&self) -> u64 {
        crate::planner::hash_params(&[
            self.rounds as u64,
            self.pop as u64,
            self.elite_frac.to_bits(),
            self.seed,
        ])
    }

    fn plan(
        &self,
        ctx: &mut crate::planner::PlanningContext<'_>,
    ) -> Result<crate::Plan, crate::FastTError> {
        let r = cem_search(
            ctx.graph,
            ctx.topo,
            ctx.hw,
            self.rounds,
            self.pop,
            self.elite_frac,
            self.seed,
        );
        ctx.evals_used += r.evals_used;
        Ok(r.into_plan(ctx.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn converges_on_parallel_split() {
        let mut g = Graph::new();
        for c in 0..2 {
            g.add_op(Operation::new(format!("m{c}"), OpKind::MatMul, [64]).with_flops(1 << 33))
                .unwrap();
        }
        let topo = Topology::single_server(2);
        let r = cem_search(&g, &topo, &HardwarePerf::new(), 6, 10, 0.3, 11);
        assert!(r.best_time.is_finite());
        let d0 = r.placement.device_of(fastt_graph::OpId(0));
        let d1 = r.placement.device_of(fastt_graph::OpId(1));
        assert_ne!(d0, d1);
    }

    #[test]
    #[should_panic(expected = "elite_frac")]
    fn rejects_bad_elite_fraction() {
        let g = Graph::new();
        let topo = Topology::single_server(1);
        cem_search(&g, &topo, &HardwarePerf::new(), 1, 1, 2.0, 0);
    }
}
