//! REINFORCE-style placement policy (Mirhoseini et al. \[32\]): a per-unit
//! softmax distribution over devices, updated by policy gradients with a
//! moving-average baseline. Each sampled placement costs one full (simulated)
//! training iteration — the expensive black-box loop the paper contrasts
//! FastT's white-box heuristics against.

use super::{Evaluator, SearchResult, Units};
use fastt_cluster::Topology;
use fastt_graph::Graph;
use fastt_sim::HardwarePerf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|e| e / z).collect()
}

fn sample(probs: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if x <= acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Runs `rounds` policy-gradient rounds with `batch` sampled placements per
/// round (total budget ≈ `rounds · batch` simulated iterations).
pub fn reinforce_search(
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    rounds: u32,
    batch: u32,
    seed: u64,
) -> SearchResult {
    let units = Units::of(graph);
    let n_dev = topo.gpu_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = Evaluator::new(graph, topo, hw);
    let lr = 0.5;

    let mut logits = vec![vec![0.0f64; n_dev]; units.len()];
    let mut best_time = f64::INFINITY;
    let mut best_genome: Vec<u16> = vec![0; units.len()];

    for _ in 0..rounds {
        let mut samples: Vec<(Vec<u16>, f64)> = Vec::with_capacity(batch as usize);
        for _ in 0..batch {
            let genome: Vec<u16> = logits
                .iter()
                .map(|l| sample(&softmax(l), &mut rng) as u16)
                .collect();
            let t = ev.eval(&units.decode(&genome, graph.op_count()));
            if t < best_time {
                best_time = t;
                best_genome = genome.clone();
            }
            samples.push((genome, t));
        }
        // baseline: mean finite runtime (infeasible samples get a fixed
        // large penalty so their gradient pushes probability away)
        let finite: Vec<f64> = samples
            .iter()
            .map(|s| s.1)
            .filter(|t| t.is_finite())
            .collect();
        let baseline = if finite.is_empty() {
            1.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        let penalty = baseline * 4.0;
        for (genome, t) in &samples {
            let r = if t.is_finite() { *t } else { penalty };
            // advantage of low runtime is positive
            let adv = (baseline - r) / baseline.max(1e-12);
            for (u, &d) in genome.iter().enumerate() {
                let probs = softmax(&logits[u]);
                for (k, item) in logits[u].iter_mut().enumerate() {
                    let indicator = if k == d as usize { 1.0 } else { 0.0 };
                    *item += lr * adv * (indicator - probs[k]) / batch as f64;
                }
            }
        }
    }

    SearchResult {
        placement: units.decode(&best_genome, graph.op_count()),
        best_time,
        evals_used: ev.evals,
    }
}

/// [`reinforce_search`] as a seeded [`Planner`](crate::planner::Planner).
#[derive(Debug, Clone, Copy)]
pub struct ReinforcePlanner {
    /// Policy-gradient rounds.
    pub rounds: u32,
    /// Sampled placements per round.
    pub batch: u32,
    /// RNG seed — explicit, so same-seed runs are bit-identical.
    pub seed: u64,
}

impl Default for ReinforcePlanner {
    fn default() -> Self {
        ReinforcePlanner {
            rounds: 12,
            batch: 8,
            seed: fastt_sim::seed::planner_roots::REINFORCE,
        }
    }
}

impl crate::planner::Planner for ReinforcePlanner {
    fn name(&self) -> &'static str {
        "reinforce"
    }

    fn kind(&self) -> crate::planner::PlannerKind {
        crate::planner::PlannerKind::Search
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn fingerprint_extra(&self) -> u64 {
        crate::planner::hash_params(&[self.rounds as u64, self.batch as u64, self.seed])
    }

    fn plan(
        &self,
        ctx: &mut crate::planner::PlanningContext<'_>,
    ) -> Result<crate::Plan, crate::FastTError> {
        let r = reinforce_search(
            ctx.graph,
            ctx.topo,
            ctx.hw,
            self.rounds,
            self.batch,
            self.seed,
        );
        ctx.evals_used += r.evals_used;
        Ok(r.into_plan(ctx.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[0.0, 0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let q = softmax(&[100.0, 0.0]);
        assert!(q[0] > 0.99);
    }

    #[test]
    fn improves_over_first_guess_on_parallel_work() {
        // two heavy independent chains: any single-device placement is 2x
        // slower than the split one, so the policy should find a split
        let mut g = Graph::new();
        for c in 0..2 {
            let a = g
                .add_op(Operation::new(format!("a{c}"), OpKind::MatMul, [64]).with_flops(1 << 33))
                .unwrap();
            let b = g
                .add_op(Operation::new(format!("b{c}"), OpKind::MatMul, [64]).with_flops(1 << 33))
                .unwrap();
            g.connect(a, b).unwrap();
        }
        let topo = Topology::single_server(2);
        let r = reinforce_search(&g, &topo, &HardwarePerf::new(), 8, 8, 3);
        assert!(r.best_time.is_finite());
        // the two chains should end up on different devices
        let d0 = r.placement.device_of(fastt_graph::OpId(0));
        let d2 = r.placement.device_of(fastt_graph::OpId(2));
        assert_ne!(d0, d2, "chains should be parallelized");
    }
}
