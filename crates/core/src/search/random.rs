//! Uniform random placement search — the sanity-check baseline every
//! learned method must beat.

use super::{Evaluator, SearchResult, Units};
use fastt_cluster::Topology;
use fastt_graph::Graph;
use fastt_sim::HardwarePerf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `evals` uniform placements and keeps the best.
pub fn random_search(
    graph: &Graph,
    topo: &Topology,
    hw: &HardwarePerf,
    evals: u32,
    seed: u64,
) -> SearchResult {
    let units = Units::of(graph);
    let n_dev = topo.gpu_count() as u16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = Evaluator::new(graph, topo, hw);

    let mut best_genome: Vec<u16> = (0..units.len()).map(|_| rng.gen_range(0..n_dev)).collect();
    let mut best_time = ev.eval(&units.decode(&best_genome, graph.op_count()));
    for _ in 1..evals {
        let genome: Vec<u16> = (0..units.len()).map(|_| rng.gen_range(0..n_dev)).collect();
        let t = ev.eval(&units.decode(&genome, graph.op_count()));
        if t < best_time {
            best_time = t;
            best_genome = genome;
        }
    }
    SearchResult {
        placement: units.decode(&best_genome, graph.op_count()),
        best_time,
        evals_used: ev.evals,
    }
}

/// [`random_search`] as a seeded [`Planner`](crate::planner::Planner) — the
/// sanity-check baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomPlanner {
    /// Random placements to evaluate.
    pub evals: u32,
    /// RNG seed — explicit, so same-seed runs are bit-identical.
    pub seed: u64,
}

impl Default for RandomPlanner {
    fn default() -> Self {
        RandomPlanner {
            evals: 64,
            seed: fastt_sim::seed::planner_roots::RANDOM,
        }
    }
}

impl crate::planner::Planner for RandomPlanner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn kind(&self) -> crate::planner::PlannerKind {
        crate::planner::PlannerKind::Search
    }

    fn uses_cost_models(&self) -> bool {
        false
    }

    fn fingerprint_extra(&self) -> u64 {
        crate::planner::hash_params(&[self.evals as u64, self.seed])
    }

    fn plan(
        &self,
        ctx: &mut crate::planner::PlanningContext<'_>,
    ) -> Result<crate::Plan, crate::FastTError> {
        let r = random_search(ctx.graph, ctx.topo, ctx.hw, self.evals, self.seed);
        ctx.evals_used += r.evals_used;
        Ok(r.into_plan(ctx.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn finds_a_finite_placement() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [64])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [64])).unwrap();
        g.connect(a, b).unwrap();
        let topo = Topology::single_server(2);
        let r = random_search(&g, &topo, &HardwarePerf::new(), 8, 42);
        assert!(r.best_time.is_finite());
        assert_eq!(r.evals_used, 8);
        r.placement.validate(&g, &topo).unwrap();
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_op(Operation::new(format!("o{i}"), OpKind::Relu, [64]))
                .unwrap();
        }
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();
        let a = random_search(&g, &topo, &hw, 5, 1);
        let b = random_search(&g, &topo, &hw, 5, 1);
        assert_eq!(a.placement, b.placement);
    }
}
