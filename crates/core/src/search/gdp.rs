//! GDP-style white-box placement (Zhou et al. \[48\]): a one-shot
//! rank-ordered min-EFT assignment over the raw model graph. Like FastT it
//! needs no search, but its solution space is model parallelism only — no
//! data parallelism, no operation splitting, no order enforcement — which is
//! why FastT dominates it in the paper's Fig. 3.

use super::SearchResult;
use crate::rank::upward_ranks;
use crate::timeline::DeviceTimeline;
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// Places every op by minimal EFT in rank order (no critical-path device
/// grouping, no ordering output) and evaluates the result once.
pub fn gdp_place(
    graph: &Graph,
    topo: &Topology,
    cost: &CostModels,
    hw: &HardwarePerf,
) -> SearchResult {
    let n = graph.op_count();
    let ranks = upward_ranks(graph, cost);
    let topo_order = graph.topo_order().expect("DAG");
    let mut topo_pos = vec![0usize; n];
    for (i, &o) in topo_order.iter().enumerate() {
        topo_pos[o.index()] = i;
    }
    let mut queue: Vec<_> = graph.op_ids().collect();
    queue.sort_by(|a, b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then(topo_pos[a.index()].cmp(&topo_pos[b.index()]))
    });

    let n_dev = topo.device_count();
    let mut timelines: Vec<DeviceTimeline> = (0..n_dev).map(|_| DeviceTimeline::new()).collect();
    let mut mem_used = vec![0u64; n_dev];
    let mut ft = vec![0.0f64; n];
    let mut placement = Placement::uniform(n, DeviceId(0));
    let mut forced: Vec<Option<DeviceId>> = vec![None; n];
    let mut placed = vec![false; n];

    for &o in &queue {
        let name = &graph.op_ref(o).name;
        let need = hw.planning_bytes(graph.op_ref(o));
        let candidates: Vec<DeviceId> = if let Some(d) = forced[o.index()] {
            vec![d]
        } else {
            let fitting: Vec<DeviceId> = topo
                .gpu_ids()
                .filter(|d| mem_used[d.index()] + need <= topo.device(*d).mem_bytes)
                .collect();
            if fitting.is_empty() {
                vec![topo
                    .gpu_ids()
                    .max_by_key(|d| {
                        topo.device(*d)
                            .mem_bytes
                            .saturating_sub(mem_used[d.index()])
                    })
                    .expect("non-empty topology")]
            } else {
                fitting
            }
        };
        let mut best = (candidates[0], f64::INFINITY, 0.0);
        for &d in &candidates {
            let w = cost.comp.get(name, d).unwrap_or(0.0);
            let mut ready = 0.0f64;
            for e in graph.in_edges(o) {
                let dp = placement.device_of(e.src);
                let c = if dp == d {
                    0.0
                } else {
                    // unprofiled links cost their analytic route time, not 0
                    cost.comm
                        .predict(dp, d, e.bytes)
                        .unwrap_or_else(|| topo.transfer_time_routed(dp, d, e.bytes))
                };
                ready = ready.max(ft[e.src.index()] + c);
            }
            let est = timelines[d.index()].earliest_slot(ready, w);
            if est + w < best.1 {
                best = (d, est + w, est);
            }
        }
        let (d, eft, est) = best;
        let w = cost.comp.get(name, d).unwrap_or(0.0);
        timelines[d.index()].reserve(est, w);
        ft[o.index()] = eft;
        placement.set(o, d);
        placed[o.index()] = true;
        mem_used[d.index()] += need;
        if let Some(grp) = graph.colocation_group(o) {
            for &m in grp {
                if !placed[m.index()] {
                    forced[m.index()] = Some(d);
                }
            }
        }
    }

    let best_time = match simulate(
        graph,
        topo,
        &placement,
        hw,
        ExecPolicy::Fifo,
        &SimConfig::default(),
    ) {
        Ok(t) => t.makespan,
        Err(_) => f64::INFINITY,
    };
    SearchResult {
        placement,
        best_time,
        evals_used: 1,
    }
}

/// [`gdp_place`] as a [`Planner`](crate::planner::Planner): white-box like
/// DPOS (it reads the cost models), so its cached plans are invalidated by
/// cost-model updates.
#[derive(Debug, Clone, Copy, Default)]
pub struct GdpPlanner;

impl crate::planner::Planner for GdpPlanner {
    fn name(&self) -> &'static str {
        "gdp"
    }

    fn kind(&self) -> crate::planner::PlannerKind {
        crate::planner::PlannerKind::WhiteBox
    }

    fn plan(
        &self,
        ctx: &mut crate::planner::PlanningContext<'_>,
    ) -> Result<crate::Plan, crate::FastTError> {
        let r = gdp_place(ctx.graph, ctx.topo, &ctx.cost, ctx.hw);
        ctx.evals_used += r.evals_used;
        Ok(r.into_plan(ctx.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    #[test]
    fn produces_valid_placement_with_one_eval() {
        let g = fastt_models::Model::LeNet.training_graph(16);
        let topo = Topology::single_server(2);
        let mut cost = CostModels::new();
        // profile both devices coarsely so EFT has signal
        for (_, o) in g.iter_ops() {
            for d in topo.gpu_ids() {
                cost.comp.observe(&o.name, d, 1e-4);
            }
        }
        let r = gdp_place(&g, &topo, &cost, &HardwarePerf::new());
        r.placement.validate(&g, &topo).unwrap();
        assert_eq!(r.evals_used, 1);
        assert!(r.best_time.is_finite());
    }

    #[test]
    fn parallelizes_independent_chains_when_profiled() {
        let mut g = Graph::new();
        let mut cost = CostModels::new();
        let topo = Topology::single_server(2);
        for c in 0..2 {
            let a = g
                .add_op(Operation::new(format!("a{c}"), OpKind::MatMul, [4]))
                .unwrap();
            let b = g
                .add_op(Operation::new(format!("b{c}"), OpKind::MatMul, [4]))
                .unwrap();
            g.connect(a, b).unwrap();
            for d in topo.gpu_ids() {
                cost.comp.observe(&format!("a{c}"), d, 1.0);
                cost.comp.observe(&format!("b{c}"), d, 1.0);
            }
        }
        for s in topo.gpu_ids() {
            for d in topo.gpu_ids() {
                if s != d {
                    cost.comm.observe(s, d, 16, 1e-5);
                }
            }
        }
        cost.comm.refit();
        let r = gdp_place(&g, &topo, &cost, &HardwarePerf::new());
        assert_eq!(r.placement.devices_used().len(), 2);
    }
}
