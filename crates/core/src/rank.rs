//! Operation prioritization: the upward-rank computation and critical-path
//! extraction of Sec. 5.1.
//!
//! `rank_u(o_i) = w_i + max_{o_j ∈ succ(o_i)} (c̄_{i,j} + rank_u(o_j))`
//!
//! where `w_i` is the op's maximal execution time over devices (from the
//! computation cost model) and `c̄_{i,j}` the maximal transmission time of
//! the tensor between them (from the communication cost model). Missing
//! costs count as 0, which makes the algorithms explore unprofiled
//! placements (Sec. 4).

use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::{Graph, OpId};
use fastt_sim::Placement;

/// Upward ranks for every op, indexed by `OpId`.
///
/// # Panics
///
/// Panics if `graph` contains a cycle (model builders and rewrites always
/// produce DAGs; validate untrusted graphs first).
pub fn upward_ranks(graph: &Graph, cost: &CostModels) -> Vec<f64> {
    let topo = graph.topo_order().expect("rank needs a DAG");
    let mut rank = vec![0.0f64; graph.op_count()];
    for &o in topo.iter().rev() {
        let w = cost.comp.max_time(&graph.op_ref(o).name).unwrap_or(0.0);
        let tail = graph
            .out_edges(o)
            .map(|e| cost.comm.max_comm(e.bytes) + rank[e.dst.index()])
            .fold(0.0f64, f64::max);
        rank[o.index()] = w + tail;
    }
    rank
}

/// The critical path implied by the ranks: start from the entry op with the
/// largest rank, then repeatedly step to the successor with the largest rank
/// (Sec. 5.1 "to compute the critical path, the entry operation is selected,
/// and then we recursively select the operation with the largest rank among
/// the successors of the previous operation").
pub fn critical_path(graph: &Graph, ranks: &[f64]) -> Vec<OpId> {
    let mut cur = match graph
        .entry_ops()
        .into_iter()
        .max_by(|a, b| ranks[a.index()].total_cmp(&ranks[b.index()]))
    {
        Some(e) => e,
        None => return Vec::new(),
    };
    let mut path = vec![cur];
    while let Some(next) = graph
        .succs(cur)
        .max_by(|a, b| ranks[a.index()].total_cmp(&ranks[b.index()]))
    {
        path.push(next);
        cur = next;
    }
    path
}

/// The critical path of a *placed* graph: the longest path weighing each op
/// by its execution time on its assigned device and each edge by the
/// predicted transfer time between the assigned devices (0 when colocated;
/// the topology's analytic route time when the link is unprofiled — a free
/// unprofiled edge would hide real critical paths).
/// Used by OS-DPOS to pick split candidates ("calculates the new critical
/// path based on the placement strategy", Sec. 5.2).
///
/// # Panics
///
/// Panics if `graph` contains a cycle.
pub fn critical_path_placed(
    graph: &Graph,
    placement: &Placement,
    cost: &CostModels,
    cluster: &Topology,
) -> Vec<OpId> {
    let topo = graph.topo_order().expect("needs a DAG");
    let n = graph.op_count();
    // longest-path-to-exit per op, and the successor achieving it
    let mut dist = vec![0.0f64; n];
    let mut next: Vec<Option<OpId>> = vec![None; n];
    for &o in topo.iter().rev() {
        let d_o = placement.device_of(o);
        let w = cost.comp.get(&graph.op_ref(o).name, d_o).unwrap_or(0.0);
        let mut best = f64::NEG_INFINITY;
        let mut best_next = None;
        for e in graph.out_edges(o) {
            let d_s = placement.device_of(e.dst);
            let c = cost
                .comm
                .predict(d_o, d_s, e.bytes)
                .unwrap_or_else(|| cluster.transfer_time_routed(d_o, d_s, e.bytes));
            let cand = c + dist[e.dst.index()];
            if cand > best {
                best = cand;
                best_next = Some(e.dst);
            }
        }
        dist[o.index()] = w + if best_next.is_some() { best } else { 0.0 };
        next[o.index()] = best_next;
    }
    // start from the entry with the longest distance
    let mut cur = match graph
        .entry_ops()
        .into_iter()
        .max_by(|a, b| dist[a.index()].total_cmp(&dist[b.index()]))
    {
        Some(e) => e,
        None => return Vec::new(),
    };
    let mut path = vec![cur];
    while let Some(nxt) = next[cur.index()] {
        path.push(nxt);
        cur = nxt;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::DeviceId;
    use fastt_graph::{OpKind, Operation};

    const D0: DeviceId = DeviceId(0);

    /// a -> b -> d and a -> c -> d with b slower than c.
    fn diamond(cost: &mut CostModels) -> Graph {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        let c = g.add_op(Operation::new("c", OpKind::Relu, [1])).unwrap();
        let d = g.add_op(Operation::new("d", OpKind::Add, [1])).unwrap();
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        cost.comp.observe("a", D0, 1.0);
        cost.comp.observe("b", D0, 10.0);
        cost.comp.observe("c", D0, 2.0);
        cost.comp.observe("d", D0, 1.0);
        g
    }

    #[test]
    fn ranks_accumulate_along_longest_path() {
        let mut cost = CostModels::new();
        let g = diamond(&mut cost);
        let r = upward_ranks(&g, &cost);
        // rank(d)=1, rank(b)=11, rank(c)=3, rank(a)=1+11=12
        assert_eq!(r[3], 1.0);
        assert_eq!(r[1], 11.0);
        assert_eq!(r[2], 3.0);
        assert_eq!(r[0], 12.0);
    }

    #[test]
    fn critical_path_follows_max_rank() {
        let mut cost = CostModels::new();
        let g = diamond(&mut cost);
        let r = upward_ranks(&g, &cost);
        let cp = critical_path(&g, &r);
        let names: Vec<&str> = cp.iter().map(|&o| g.op_ref(o).name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
    }

    #[test]
    fn missing_costs_treated_as_zero() {
        let cost = CostModels::new();
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        g.connect(a, b).unwrap();
        let r = upward_ranks(&g, &cost);
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn comm_cost_included_in_rank() {
        let mut cost = CostModels::new();
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [256])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [256])).unwrap();
        g.connect(a, b).unwrap();
        cost.comp.observe("a", D0, 1.0);
        cost.comp.observe("b", D0, 1.0);
        // a slow profiled link makes max_comm large
        cost.comm.observe(D0, DeviceId(1), 1024, 0.5);
        cost.comm.refit();
        let r = upward_ranks(&g, &cost);
        assert!(r[0] > 2.0, "rank(a) should include comm: {}", r[0]);
    }

    #[test]
    fn placed_critical_path_uses_actual_devices() {
        let mut cost = CostModels::new();
        let g = diamond(&mut cost);
        // on the assigned device, c is slower than b
        cost.comp.observe("b", DeviceId(1), 1.0);
        cost.comp.observe("c", DeviceId(1), 20.0);
        let mut p = Placement::uniform(g.op_count(), D0);
        p.set(OpId(1), DeviceId(1));
        p.set(OpId(2), DeviceId(1));
        let cp = critical_path_placed(&g, &p, &cost, &fastt_cluster::Topology::single_server(2));
        let names: Vec<&str> = cp.iter().map(|&o| g.op_ref(o).name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
    }

    #[test]
    fn empty_graph_has_empty_path() {
        let g = Graph::new();
        let cost = CostModels::new();
        assert!(critical_path(&g, &[]).is_empty());
        let p = Placement::uniform(0, D0);
        let topo = fastt_cluster::Topology::single_server(1);
        assert!(critical_path_placed(&g, &p, &cost, &topo).is_empty());
    }
}
