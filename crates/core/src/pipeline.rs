//! GPipe-style micro-batch pipeline parallelism — the extension the paper
//! sketches in Sec. 7: "After FastT obtains operation placement and
//! execution order, it can further split a mini-batch into micro-batches and
//! allow pipelined training in the similar fashion as proposed in GPipe."
//!
//! The construction reuses the existing machinery: the caller builds the
//! training graph at the *micro*-batch size; [`pipeline_plan`] computes
//! pipeline stages with the model-parallel cut, replicates the micro-batch
//! graph once per micro-batch with **shared** variables (so gradients
//! accumulate through the aggregation ops and the update applies once —
//! exactly GPipe's synchronous semantics, no stale weights), and assigns
//! every micro-batch replica to the same stage devices. Because the
//! micro-batch replicas are independent until gradient aggregation, the
//! simulator's executor pipelines them across stages naturally.

use crate::error::FastTError;
use crate::strategy::Plan;
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{replicate_with, Graph, OpKind, ReplicaRole, ReplicationMode};
use fastt_sim::{HardwarePerf, Placement};

/// Cuts the micro-batch graph into contiguous pipeline stages balanced by
/// **compute time** (pipeline throughput is limited by the slowest stage,
/// so stages must equalize work, not memory). Backward ops are anchored to
/// their layer's stage; variables and updates follow their consumers.
fn compute_balanced_stages(graph: &Graph, topo: &Topology, hw: &HardwarePerf) -> Placement {
    let n_dev = topo.gpu_count();
    let gpu0 = topo
        .gpu_ids()
        .next()
        .expect("topology has at least one GPU");
    let time_of = |o: fastt_graph::OpId| hw.exec_time(graph, o, topo.device(gpu0));

    let order = graph.topo_order().expect("DAG");
    let mut pos = vec![0usize; graph.op_count()];
    for (i, &o) in order.iter().enumerate() {
        pos[o.index()] = i;
    }
    let long_span = graph.op_count() / 4;
    let span_of = |o: fastt_graph::OpId| -> usize {
        graph
            .succs(o)
            .map(|s| pos[s.index()].saturating_sub(pos[o.index()]))
            .max()
            .unwrap_or(0)
    };
    let deferred = |k: OpKind| matches!(k, OpKind::Variable | OpKind::ApplyGradient);

    // Anchor of each short-lived op: the long-lived predecessor supplying
    // its biggest input (deterministic — preds precede it in topo order).
    let mut anchor_of: Vec<Option<fastt_graph::OpId>> = vec![None; graph.op_count()];
    for o in graph.op_ids() {
        if deferred(graph.op_ref(o).kind) || span_of(o) > long_span {
            continue;
        }
        anchor_of[o.index()] = graph
            .in_edges(o)
            .filter(|e| span_of(e.src) > long_span && !deferred(graph.op_ref(e.src).kind))
            .max_by_key(|e| e.bytes)
            .map(|e| e.src);
    }
    // Aggregate each long-lived op's weight with the work that will anchor
    // to it, so the streaming cut sees each layer's full (fwd+bwd) cost.
    let mut agg_time: Vec<f64> = graph.op_ids().map(time_of).collect();
    for o in graph.op_ids() {
        if let Some(a) = anchor_of[o.index()] {
            agg_time[a.index()] += time_of(o);
            agg_time[o.index()] = 0.0;
        }
    }

    let total: f64 = graph
        .op_ids()
        .filter(|&o| !deferred(graph.op_ref(o).kind))
        .map(|o| agg_time[o.index()])
        .sum();
    let share = total / n_dev as f64;

    let mut placement = Placement::uniform(graph.op_count(), gpu0);
    let mut placed = vec![false; graph.op_count()];
    let mut dev = 0usize;
    let mut used = vec![0.0f64; n_dev];
    let gpus: Vec<DeviceId> = topo.gpu_ids().collect();

    for &o in &order {
        if deferred(graph.op_ref(o).kind) || placed[o.index()] {
            continue;
        }
        let d = if let Some(p) = anchor_of[o.index()].filter(|p| placed[p.index()]) {
            placement.device_of(p)
        } else {
            let need = agg_time[o.index()];
            if used[dev] + need > share * 1.02 && dev + 1 < n_dev {
                dev += 1;
            }
            used[dev] += need;
            gpus[dev]
        };
        placement.set(o, d);
        placed[o.index()] = true;
        // variables and updates follow the first consumer/producer
        for p in graph.preds(o).collect::<Vec<_>>() {
            if deferred(graph.op_ref(p).kind) && !placed[p.index()] {
                placement.set(p, d);
                placed[p.index()] = true;
                if let Some(grp) = graph.colocation_group(p) {
                    for &m in grp {
                        if !placed[m.index()] {
                            placement.set(m, d);
                            placed[m.index()] = true;
                        }
                    }
                }
            }
        }
    }
    for o in graph.op_ids() {
        if !placed[o.index()] {
            placement.set(o, gpus[dev]);
        }
    }
    placement
}

/// Builds a pipeline plan from a **micro-batch** training graph.
///
/// `micro_graph` must be the model built at `mini_batch / micro_batches`
/// samples; the returned plan executes one full mini-batch per iteration
/// (all micro-batches, gradients accumulated, one weight update), placed on
/// the pipeline stages of the model-parallel cut over `topo`'s GPUs.
///
/// # Errors
///
/// Returns an error if the graph cannot be replicated.
///
/// # Panics
///
/// Panics if `micro_batches == 0`.
pub fn pipeline_plan(
    micro_graph: &Graph,
    micro_batches: u32,
    topo: &Topology,
    hw: &HardwarePerf,
) -> Result<Plan, FastTError> {
    assert!(micro_batches > 0, "need at least one micro-batch");

    // Stage assignment: a compute-balanced cut of one micro-batch.
    let stage_placement = compute_balanced_stages(micro_graph, topo, hw);

    // One replica per micro-batch, variables shared (gradient accumulation
    // through the aggregation ops, single update — GPipe semantics).
    let rep = replicate_with(micro_graph, micro_batches, ReplicationMode::ParameterServer)?;

    let mut placement = Placement::uniform(rep.graph.op_count(), fastt_cluster::DeviceId(0));
    for (oid, op) in rep.graph.iter_ops() {
        let device = match rep.roles[oid.index()] {
            ReplicaRole::Replica(k) => {
                // strip the `rep{k}/` prefix to find the stage of the
                // original op
                let orig_name = op
                    .name
                    .strip_prefix(&format!("rep{k}/"))
                    .unwrap_or(&op.name);
                let orig = micro_graph
                    .by_name(orig_name)
                    .expect("replica ops mirror the micro graph");
                stage_placement.device_of(orig)
            }
            ReplicaRole::Shared | ReplicaRole::ServerShared(_) => {
                // shared state (variables, updates, aggregation): the stage
                // of the original op when it exists there, else the stage of
                // a consumer
                match micro_graph.by_name(&op.name) {
                    Some(orig) => stage_placement.device_of(orig),
                    None => {
                        // aggregation op: follow its first consumer (the
                        // shared update, colocated anyway)
                        let follower = rep
                            .graph
                            .succs(oid)
                            .next()
                            .or_else(|| rep.graph.preds(oid).next());
                        match follower {
                            Some(f) => placement.device_of(f),
                            None => fastt_cluster::DeviceId(0),
                        }
                    }
                }
            }
        };
        placement.set(oid, device);
    }

    // Colocation groups may straddle the initial guesses for aggregation
    // ops; normalize each group to its first member's device.
    for grp in rep.graph.colocation_groups() {
        let d = placement.device_of(grp[0]);
        for &m in grp {
            placement.set(m, d);
        }
    }

    Ok(Plan {
        graph: rep.graph,
        splits: Vec::new(),
        placement,
        order: None,
        est_finish: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::model_parallel_plan;
    use fastt_models::Model;
    use fastt_sim::SimConfig;

    #[test]
    fn pipeline_plan_is_valid_and_executable() {
        let micro = Model::Vgg19.training_graph(4);
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();
        let plan = pipeline_plan(&micro, 4, &topo, &hw).unwrap();
        plan.placement.validate(&plan.graph, &topo).unwrap();
        let tr = plan.simulate(&topo, &hw, &SimConfig::default()).unwrap();
        assert!(tr.makespan > 0.0);
    }

    #[test]
    fn pipelining_beats_plain_model_parallelism() {
        // The whole point of GPipe: naive MP leaves all but one stage idle;
        // micro-batching fills the bubbles.
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();

        let full = Model::Vgg19.training_graph(32);
        let mp = model_parallel_plan(&full, &topo, &hw);
        let mp_time = mp
            .simulate(&topo, &hw, &SimConfig::default())
            .unwrap()
            .makespan;

        let micro = Model::Vgg19.training_graph(8);
        let pipe = pipeline_plan(&micro, 4, &topo, &hw).unwrap();
        let pipe_time = pipe
            .simulate(&topo, &hw, &SimConfig::default())
            .unwrap()
            .makespan;

        assert!(
            pipe_time < mp_time,
            "pipeline {pipe_time} should beat naive MP {mp_time}"
        );
    }

    #[test]
    fn single_micro_batch_degenerates_to_model_parallelism() {
        let micro = Model::LeNet.training_graph(16);
        let topo = Topology::single_server(2);
        let hw = HardwarePerf::new();
        let pipe = pipeline_plan(&micro, 1, &topo, &hw).unwrap();
        // one replica, no aggregation ops
        assert_eq!(pipe.graph.op_count(), micro.op_count());
    }

    #[test]
    fn gradients_accumulate_once_per_variable() {
        let micro = Model::LeNet.training_graph(8);
        let topo = Topology::single_server(2);
        let plan = pipeline_plan(&micro, 4, &topo, &HardwarePerf::new()).unwrap();
        // exactly one apply per variable, fed via one aggregation op with
        // one gradient edge per micro-batch
        let n_vars = micro
            .iter_ops()
            .filter(|(_, o)| o.kind.is_variable())
            .count();
        let applies = plan
            .graph
            .iter_ops()
            .filter(|(_, o)| o.kind == fastt_graph::OpKind::ApplyGradient)
            .count();
        assert_eq!(applies, n_vars);
        let agg = plan
            .graph
            .iter_ops()
            .find(|(_, o)| o.kind == fastt_graph::OpKind::AggregateGradients)
            .map(|(id, _)| id)
            .expect("aggregation exists");
        assert_eq!(plan.graph.preds(agg).count(), 4);
    }
}
