//! Strategies: the complete output of a placement computation
//! (the paper's Sec. 3 outputs (i)–(iii)), plus the baseline strategies
//! FastT is compared against.

use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{Graph, OpId, ReplicatedGraph, SplitDecision};
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, RunTrace, SimConfig, SimError};

/// A complete deployment plan: the (possibly rewritten) graph, the list of
/// split decisions that produced it, the device placement, and the
/// (optional) enforced execution order.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The graph to execute (original, replicated, and/or split).
    pub graph: Graph,
    /// Operation split list (paper output (i)).
    pub splits: Vec<SplitDecision>,
    /// Device placement (paper output (ii)).
    pub placement: Placement,
    /// Execution order (paper output (iii)); `None` runs the default FIFO
    /// executor instead of FastT's order enforcement.
    pub order: Option<Vec<OpId>>,
    /// Estimated finish time of the exit op under the cost models
    /// (`FT(o_exit)` from DPOS), or the measured time for baselines.
    pub est_finish: f64,
}

impl Plan {
    /// The executor policy this plan requests.
    pub fn policy(&self) -> ExecPolicy<'_> {
        match &self.order {
            Some(o) => ExecPolicy::Priority(o),
            None => ExecPolicy::Fifo,
        }
    }

    /// Executes one simulated training iteration of this plan.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (OOM, invalid placement).
    pub fn simulate(
        &self,
        topo: &Topology,
        hw: &HardwarePerf,
        config: &SimConfig,
    ) -> Result<RunTrace, SimError> {
        simulate(
            &self.graph,
            topo,
            &self.placement,
            hw,
            self.policy(),
            config,
        )
    }

    /// Multi-line human-readable summary of the plan: graph size, split
    /// list, per-device op counts, and whether an execution order is
    /// enforced. Useful for logging and the examples.
    pub fn describe(&self, topo: &Topology) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan: {} ops, {} edges",
            self.graph.op_count(),
            self.graph.edge_count()
        );
        if self.splits.is_empty() {
            let _ = writeln!(s, "  splits: none");
        } else {
            let _ = writeln!(s, "  splits: {}", self.splits.len());
            for d in &self.splits {
                let _ = writeln!(s, "    {d}");
            }
        }
        let hist = self.placement.op_histogram(topo);
        for d in topo.device_ids() {
            let n = hist[d.index()];
            if n > 0 || !topo.is_host(d) {
                let _ = writeln!(s, "  {}: {} ops", topo.device(d).name, n);
            }
        }
        let _ = writeln!(
            s,
            "  order: {}",
            if self.order.is_some() {
                "enforced"
            } else {
                "executor FIFO"
            }
        );
        s
    }
}

/// The default data-parallel strategy (the paper's `DP` baseline, TF-slim
/// in-graph replication): replica `k`'s ops all go to GPU `k`; shared state
/// — variables, their updates and the gradient aggregation — lives on the
/// parameter-server device. TF-slim's default `variables_device` for
/// multi-clone deployments is `/device:CPU:0`, so with more than one replica
/// the PS is the server's CPU host (when the topology has one); a single
/// replica keeps everything on its GPU, as slim does.
///
/// A graph replicated with [`fastt_graph::ReplicationMode::AllReduce`] has no parameter
/// server: its aggregation is a ring collective over the replicas' GPUs, so
/// shared ops anchor on the first GPU instead of the host — staging gradients
/// through the CPU would put the host's PCIe funnel back on the path the
/// collective exists to avoid.
///
/// Use [`data_parallel_plan_on`] to pin the PS elsewhere (e.g. GPU 0, the
/// common convention for the NMT baselines that do not use slim).
///
/// # Panics
///
/// Panics if the replicated graph has more replicas than `topo` has GPUs.
pub fn data_parallel_plan(rep: &ReplicatedGraph, topo: &Topology) -> Plan {
    use fastt_graph::ReplicationMode;
    let first_gpu = topo.gpu_ids().next().unwrap_or(DeviceId(0));
    let ps = if rep.replicas > 1 && rep.mode == ReplicationMode::ParameterServer {
        // The PS host is resolved relative to the live GPUs, not server 0:
        // an allocation view whose slice lives on another server must plan
        // the same shape as its server-0 twin, or the plan cache's
        // shape-keyed sharing would disagree with fresh planning.
        topo.host_of(topo.server_of(first_gpu))
            .or_else(|| {
                topo.device_ids()
                    .find(|&d| topo.is_host(d) && !topo.is_failed(d))
            })
            .unwrap_or(first_gpu)
    } else {
        first_gpu
    };
    data_parallel_plan_on(rep, topo, ps)
}

/// [`data_parallel_plan`] with an explicit parameter-server device (used by
/// the parameter-server-placement ablation).
///
/// # Panics
///
/// Panics if the replicated graph has more replicas than `topo` has devices.
pub fn data_parallel_plan_on(rep: &ReplicatedGraph, topo: &Topology, ps: DeviceId) -> Plan {
    // Replica k runs on the k-th *live* GPU: after a device is blacklisted
    // the surviving GPUs may have non-contiguous ids, so replicas index into
    // the survivor list rather than assuming GPU ids are 0..n.
    let gpus: Vec<DeviceId> = topo.gpu_ids().collect();
    assert!(
        (rep.replicas as usize) <= gpus.len(),
        "need one device per replica"
    );
    let n = rep.graph.op_count();
    let mut placement = Placement::uniform(n, ps);
    for (oid, _) in rep.graph.iter_ops() {
        match rep.roles[oid.index()] {
            fastt_graph::ReplicaRole::Replica(k) => placement.set(oid, gpus[k as usize]),
            fastt_graph::ReplicaRole::ServerShared(s) => {
                // per-server caches/aggregators live on that server's PS:
                // its host when the global PS is a host, else its first GPU
                let local_ps = if topo.is_host(ps) {
                    topo.host_of(s).unwrap_or(ps)
                } else {
                    topo.gpu_ids()
                        .find(|&d| topo.server_of(d) == s)
                        .unwrap_or(ps)
                };
                placement.set(oid, local_ps);
            }
            fastt_graph::ReplicaRole::Shared => {} // stays on the PS
        }
    }
    Plan {
        graph: rep.graph.clone(),
        splits: Vec::new(),
        placement,
        order: None,
        est_finish: f64::NAN,
    }
}

/// A greedy layer-wise model-parallel strategy: ops in topological order are
/// packed onto consecutive devices, cutting over when a device reaches its
/// share of the total planning memory (respecting colocation groups). This
/// is both the paper's start strategy for models that cannot fit on one GPU
/// (Sec. 4) and the classical model-parallel baseline.
pub fn model_parallel_plan(graph: &Graph, topo: &Topology, hw: &HardwarePerf) -> Plan {
    // Consecutive "devices" are the live GPUs (possibly non-contiguous ids
    // after failures); per-device weights stay id-indexed.
    let gpus: Vec<DeviceId> = topo.gpu_ids().collect();
    assert!(!gpus.is_empty(), "model parallelism needs a live GPU");
    let n_dev = gpus.len();

    // Memory weight per op, by *liveness*: an output consumed only by
    // nearby ops (in topological order) is transient; an output held until
    // much later — a forward activation read by its backward op — pins
    // device memory for most of the iteration and must dominate the cut.
    let order = graph.topo_order().expect("model graphs are DAGs");
    let mut pos = vec![0usize; graph.op_count()];
    for (i, &o) in order.iter().enumerate() {
        pos[o.index()] = i;
    }
    let long_span = graph.op_count() / 4;
    let span_of = |o: fastt_graph::OpId| -> usize {
        graph
            .succs(o)
            .map(|s| pos[s.index()].saturating_sub(pos[o.index()]))
            .max()
            .unwrap_or(0)
    };
    let weight = |o: fastt_graph::OpId| -> u64 {
        let op = graph.op_ref(o);
        let act = hw.activation_bytes(op);
        let act = if span_of(o) > long_span { act } else { act / 5 };
        hw.resident_bytes(op) + act
    };

    let total: u64 = graph.op_ids().map(weight).sum();

    // Variables and optimizer updates are topological sources/sinks; placing
    // them in raw topological order would pile every variable onto the first
    // device. Instead they follow their first placed consumer/producer
    // (which also keeps weights next to the layer that uses them).
    let deferred = |o: &fastt_graph::Operation| {
        matches!(
            o.kind,
            fastt_graph::OpKind::Variable | fastt_graph::OpKind::ApplyGradient
        )
    };

    // One greedy pass at a given cut threshold (`share`). Returns the
    // placement and the resulting per-device weight totals; because
    // backward weight anchors *back* onto earlier devices, the best
    // threshold is found by searching over a few scale factors below.
    let run = |share: u64| -> (Placement, Vec<u64>) {
        let mut placement = Placement::uniform(graph.op_count(), gpus[0]);
        let mut forced: Vec<Option<DeviceId>> = vec![None; graph.op_count()];
        let mut placed = vec![false; graph.op_count()];
        let mut dev = 0usize;
        let mut used = vec![0u64; topo.device_count()];
        let place = |o: fastt_graph::OpId,
                     d: DeviceId,
                     placement: &mut Placement,
                     placed: &mut Vec<bool>,
                     forced: &mut Vec<Option<DeviceId>>| {
            placement.set(o, d);
            placed[o.index()] = true;
            if let Some(grp) = graph.colocation_group(o) {
                for &m in grp {
                    if forced[m.index()].is_none() {
                        forced[m.index()] = Some(d);
                    }
                }
            }
        };

        for &o in &order {
            if deferred(graph.op_ref(o)) || placed[o.index()] {
                continue;
            }
            // Short-lived ops (backward intermediates) run next to the
            // *forward activation* they consume — this keeps each layer's
            // forward and backward on the same device. Anchoring on a
            // long-lived predecessor (not just the biggest input) stops the
            // whole gradient chain from trailing after the loss device.
            let anchor = if span_of(o) <= long_span {
                graph
                    .in_edges(o)
                    .filter(|e| placed[e.src.index()] && span_of(e.src) > long_span)
                    .max_by_key(|e| e.bytes)
                    .map(|e| e.src)
            } else {
                None
            };
            let d = if let Some(f) = forced[o.index()] {
                used[f.index()] += weight(o);
                f
            } else if let Some(p) = anchor {
                let d = placement.device_of(p);
                used[d.index()] += weight(o);
                d
            } else {
                let mut need = weight(o);
                // the op drags its unplaced variables (and updates) along
                for p in graph.preds(o) {
                    if deferred(graph.op_ref(p))
                        && !placed[p.index()]
                        && forced[p.index()].is_none()
                    {
                        need += weight(p);
                    }
                }
                if used[gpus[dev].index()] + need > share && dev + 1 < n_dev {
                    dev += 1;
                }
                used[gpus[dev].index()] += need;
                gpus[dev]
            };
            place(o, d, &mut placement, &mut placed, &mut forced);
            for p in graph.preds(o).collect::<Vec<_>>() {
                if deferred(graph.op_ref(p)) && !placed[p.index()] {
                    let pd = forced[p.index()].unwrap_or(d);
                    place(p, pd, &mut placement, &mut placed, &mut forced);
                }
            }
        }
        // anything still unplaced (updates whose variable was placed late)
        for o in graph.op_ids() {
            if !placed[o.index()] {
                let d = forced[o.index()].unwrap_or(gpus[dev]);
                place(o, d, &mut placement, &mut placed, &mut forced);
            }
        }
        (placement, used)
    };

    // Search the cut scale that best balances the *simulated* peak memory:
    // a memory-unchecked dry run per candidate, mirroring how the paper's
    // workflow probes a strategy by actually running it before committing.
    let base_share = total / n_dev as u64 + 1;
    let probe = SimConfig {
        check_memory: false,
        ..SimConfig::default()
    };
    let mut best: Option<(u64, Placement)> = None;
    for pct in [100u64, 70, 80, 90, 110, 120, 130, 60, 50] {
        let (placement, used) = run(base_share * pct / 100);
        let peak = match simulate(graph, topo, &placement, hw, ExecPolicy::Fifo, &probe) {
            Ok(trace) => trace.max_peak_mem(),
            Err(_) => used.iter().copied().max().unwrap_or(u64::MAX),
        };
        if best.as_ref().map(|(b, _)| peak < *b).unwrap_or(true) {
            best = Some((peak, placement));
        }
    }
    let placement = best.expect("at least one pass").1;

    Plan {
        graph: graph.clone(),
        splits: Vec::new(),
        placement,
        order: None,
        est_finish: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{build_training_graph, replicate, OpKind, Operation};

    fn training() -> Graph {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [8, 4]))
            .unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [4, 4]).with_param_bytes(64))
            .unwrap();
        let m = g
            .add_op(Operation::new("m", OpKind::MatMul, [8, 4]).with_flops(256))
            .unwrap();
        let l = g.add_op(Operation::new("l", OpKind::Loss, [])).unwrap();
        g.connect(x, m).unwrap();
        g.connect(w, m).unwrap();
        g.connect(m, l).unwrap();
        build_training_graph(&g).unwrap()
    }

    #[test]
    fn dp_places_each_replica_on_own_device() {
        let t = training();
        let rep = replicate(&t, 2).unwrap();
        let topo = Topology::single_server(2);
        let plan = data_parallel_plan(&rep, &topo);
        plan.placement.validate(&rep.graph, &topo).unwrap();
        for k in 0..2 {
            for o in rep.replica_ops(k) {
                assert_eq!(plan.placement.device_of(o), DeviceId(k as u16));
            }
        }
    }

    #[test]
    fn dp_runs_in_simulator() {
        let t = training();
        let rep = replicate(&t, 2).unwrap();
        let topo = Topology::single_server(2);
        let plan = data_parallel_plan(&rep, &topo);
        let tr = plan
            .simulate(&topo, &HardwarePerf::new(), &SimConfig::default())
            .unwrap();
        // gradient aggregation forces at least one cross-device transfer
        assert!(!tr.transfers.is_empty());
    }

    #[test]
    fn model_parallel_spreads_across_devices() {
        let t = fastt_models::Model::Vgg19.training_graph(8);
        let topo = Topology::single_server(4);
        let hw = HardwarePerf::new();
        let plan = model_parallel_plan(&t, &topo, &hw);
        plan.placement.validate(&t, &topo).unwrap();
        assert!(plan.placement.devices_used().len() >= 3);
    }

    #[test]
    fn model_parallel_respects_colocation() {
        let t = training();
        let topo = Topology::single_server(4);
        let plan = model_parallel_plan(&t, &topo, &HardwarePerf::new());
        plan.placement.validate(&t, &topo).unwrap();
    }

    #[test]
    fn describe_mentions_the_essentials() {
        let t = training();
        let topo = Topology::single_server(2);
        let rep = replicate(&t, 2).unwrap();
        let plan = data_parallel_plan(&rep, &topo);
        let d = plan.describe(&topo);
        assert!(d.contains("ops"));
        assert!(d.contains("splits: none"));
        assert!(d.contains("executor FIFO"));
        assert!(d.contains("srv0/gpu0"));
    }

    #[test]
    fn plan_policy_selection() {
        let t = training();
        let topo = Topology::single_server(1);
        let mut plan = model_parallel_plan(&t, &topo, &HardwarePerf::new());
        assert!(matches!(plan.policy(), ExecPolicy::Fifo));
        plan.order = Some(t.topo_order().unwrap());
        assert!(matches!(plan.policy(), ExecPolicy::Priority(_)));
    }
}
