//! Per-device schedule timelines with idle-slot insertion.
//!
//! The paper's `avail[j]` "is not the time when d_j completes the execution
//! of its last assigned operation: it is possible for our algorithm to insert
//! an operation into an earliest idle time slot between two already-scheduled
//! operations on a device" (Sec. 5.1). This module implements that exact
//! insertion policy.

/// The scheduled busy intervals of one device, kept sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct DeviceTimeline {
    /// Disjoint, sorted `(start, end)` busy intervals.
    intervals: Vec<(f64, f64)>,
}

impl DeviceTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest start time `t ≥ ready` such that `[t, t + duration)` fits
    /// entirely in an idle gap (possibly between two scheduled ops, possibly
    /// after the last one).
    pub fn earliest_slot(&self, ready: f64, duration: f64) -> f64 {
        let mut t = ready;
        for &(s, e) in &self.intervals {
            if t + duration <= s {
                // fits in the gap before this interval
                return t;
            }
            if e > t {
                t = e;
            }
        }
        t
    }

    /// Reserves `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the reservation overlaps an existing
    /// interval — callers must reserve at a time returned by
    /// [`DeviceTimeline::earliest_slot`].
    pub fn reserve(&mut self, start: f64, duration: f64) {
        let end = start + duration;
        let idx = self.intervals.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.intervals[idx - 1].1 <= start + 1e-12,
            "overlaps previous interval"
        );
        debug_assert!(
            idx == self.intervals.len() || end <= self.intervals[idx].0 + 1e-12,
            "overlaps next interval"
        );
        if duration > 0.0 {
            self.intervals.insert(idx, (start, end));
        }
    }

    /// Time when the last scheduled interval ends (0 if empty).
    pub fn horizon(&self) -> f64 {
        self.intervals.last().map(|&(_, e)| e).unwrap_or(0.0)
    }

    /// Total scheduled busy time.
    pub fn busy_time(&self) -> f64 {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }

    /// Number of scheduled intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_after_ready_time() {
        let mut t = DeviceTimeline::new();
        assert_eq!(t.earliest_slot(5.0, 2.0), 5.0);
        t.reserve(5.0, 2.0);
        assert_eq!(t.earliest_slot(0.0, 1.0), 0.0); // gap before 5.0
        assert_eq!(t.earliest_slot(6.0, 1.0), 7.0); // mid-interval pushes out
    }

    #[test]
    fn inserts_into_sufficient_gap() {
        let mut t = DeviceTimeline::new();
        t.reserve(0.0, 2.0);
        t.reserve(10.0, 2.0);
        // a 3-second op fits in the [2, 10) gap
        assert_eq!(t.earliest_slot(0.0, 3.0), 2.0);
        // a 9-second op does not; it goes after everything
        assert_eq!(t.earliest_slot(0.0, 9.0), 12.0);
    }

    #[test]
    fn gap_too_short_is_skipped() {
        let mut t = DeviceTimeline::new();
        t.reserve(0.0, 1.0);
        t.reserve(2.0, 1.0);
        t.reserve(5.0, 1.0);
        // 1.5s doesn't fit in [1,2) but fits in [3,5)
        assert_eq!(t.earliest_slot(0.0, 1.5), 3.0);
    }

    #[test]
    fn respects_ready_time_inside_gap() {
        let mut t = DeviceTimeline::new();
        t.reserve(0.0, 1.0);
        t.reserve(10.0, 1.0);
        assert_eq!(t.earliest_slot(4.0, 2.0), 4.0);
        // ready late in the gap such that it no longer fits
        assert_eq!(t.earliest_slot(9.5, 2.0), 11.0);
    }

    #[test]
    fn zero_duration_ops_do_not_pollute() {
        let mut t = DeviceTimeline::new();
        t.reserve(1.0, 0.0);
        assert!(t.is_empty());
        assert_eq!(t.horizon(), 0.0);
    }

    #[test]
    fn busy_time_and_horizon() {
        let mut t = DeviceTimeline::new();
        t.reserve(0.0, 2.0);
        t.reserve(5.0, 3.0);
        assert_eq!(t.busy_time(), 5.0);
        assert_eq!(t.horizon(), 8.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reserving_returned_slots_never_overlaps() {
        let mut t = DeviceTimeline::new();
        let durations = [3.0, 1.0, 4.0, 1.5, 0.5, 2.0, 8.0];
        for (i, &d) in durations.iter().enumerate() {
            let ready = (i as f64 * 1.3) % 4.0;
            let s = t.earliest_slot(ready, d);
            t.reserve(s, d); // debug_asserts verify no overlap
        }
        assert_eq!(t.len(), durations.len());
    }
}
