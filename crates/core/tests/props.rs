//! Property tests. The offline build environment cannot fetch the external
//! `proptest` crate, so these are compiled only under `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of DPOS and OS-DPOS on random DAGs with random
//! profiled costs.

use fastt::{dpos, os_dpos, schedule_for_placement, OsDposOptions};
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::{HardwarePerf, Placement};
use proptest::prelude::*;

/// A random DAG plus cost models covering every (op, GPU) pair.
fn arb_instance() -> impl Strategy<Value = (Graph, CostModels, u16)> {
    (3usize..30, any::<u64>(), 1u16..5).prop_map(|(n, seed, gpus)| {
        let topo = Topology::single_server(gpus);
        let mut g = Graph::new();
        let mut cost = CostModels::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let kind = if next() % 3 == 0 {
                OpKind::MatMul
            } else {
                OpKind::Relu
            };
            let id = g
                .add_op(Operation::new(format!("o{i}"), kind, [64u64, 64]).with_flops(1 << 20))
                .unwrap();
            for d in topo.gpu_ids() {
                // per-device times differ (heterogeneous-looking costs)
                let t = 0.001 + (next() % 100) as f64 / 10_000.0;
                cost.comp.observe(&format!("o{i}"), d, t);
            }
            if i > 0 {
                for _ in 0..(next() % 3) {
                    let p = OpId((next() % i as u64) as u32);
                    let _ = g.connect(p, id);
                }
            }
        }
        for s in topo.gpu_ids() {
            for d in topo.gpu_ids() {
                if s != d {
                    cost.comm.observe(s, d, 16384, 0.0005);
                }
            }
        }
        cost.comm.refit();
        (g, cost, gpus)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DPOS always yields a valid GPU-only placement, a permutation order,
    /// and monotone start times along the order.
    #[test]
    fn dpos_output_is_well_formed((g, cost, gpus) in arb_instance()) {
        let topo = Topology::single_server(gpus);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        s.placement.validate(&g, &topo).unwrap();
        for (op, d) in s.placement.iter() {
            prop_assert!(!topo.is_host(d), "{op} on host");
        }
        // order is a permutation of all ops
        let mut seen = vec![false; g.op_count()];
        for &o in &s.order {
            prop_assert!(!seen[o.index()], "duplicate {o} in order");
            seen[o.index()] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
        // start times ascend along the order
        for w in s.order.windows(2) {
            prop_assert!(
                s.start_times[w[0].index()] <= s.start_times[w[1].index()] + 1e-12
            );
        }
        // finish covers every op's schedule
        for o in g.op_ids() {
            prop_assert!(s.finish_times[o.index()] <= s.est_finish + 1e-12);
        }
    }

    /// The estimated schedule respects precedence: a consumer never starts
    /// before its producer finishes.
    #[test]
    fn dpos_schedule_respects_precedence((g, cost, gpus) in arb_instance()) {
        let topo = Topology::single_server(gpus);
        let s = dpos(&g, &topo, &cost, &HardwarePerf::new());
        for e in g.iter_edges() {
            prop_assert!(
                s.start_times[e.dst.index()] >= s.finish_times[e.src.index()] - 1e-12,
                "{} starts before {} ends",
                e.dst,
                e.src
            );
        }
    }

    /// Pinning the DPOS placement reproduces the same device assignment.
    #[test]
    fn schedule_for_placement_respects_the_pin((g, cost, gpus) in arb_instance()) {
        let topo = Topology::single_server(gpus);
        let hw = HardwarePerf::new();
        let free = dpos(&g, &topo, &cost, &hw);
        let pinned = schedule_for_placement(&g, &topo, &cost, &hw, &free.placement);
        for o in g.op_ids() {
            prop_assert_eq!(pinned.placement.device_of(o), free.placement.device_of(o));
        }
    }

    /// OS-DPOS never returns a worse estimate than plain DPOS (it only
    /// accepts improving splits) and its plan stays valid.
    #[test]
    fn os_dpos_never_regresses_the_estimate((g, mut cost, gpus) in arb_instance()) {
        let topo = Topology::single_server(gpus);
        let hw = HardwarePerf::new();
        let base = dpos(&g, &topo, &cost, &hw);
        let plan = os_dpos(&g, &topo, &mut cost, &hw, &OsDposOptions::for_topology(&topo));
        prop_assert!(plan.est_finish <= base.est_finish + 1e-9);
        plan.placement.validate(&plan.graph, &topo).unwrap();
    }

    /// More devices never hurt the DPOS estimate (the scheduler may simply
    /// ignore extra GPUs, and FastT "can choose a subset").
    #[test]
    fn more_devices_never_hurt((g, cost, _) in arb_instance()) {
        let hw = HardwarePerf::new();
        let t2 = Topology::single_server(2);
        let t4 = Topology::single_server(4);
        // reuse the same cost models; unprofiled extra devices count as 0
        // (exploration) which can only lower the estimate
        let e2 = dpos(&g, &t2, &cost, &hw).est_finish;
        let e4 = dpos(&g, &t4, &cost, &hw).est_finish;
        prop_assert!(e4 <= e2 + 1e-9, "4 GPUs ({e4}) worse than 2 ({e2})");
    }

    /// Simulated iteration time is monotone in cluster capacity — the
    /// elastic promotion ladder's invariant. Two parts: (1) idle capacity
    /// is free — a GPU-only plan that does not use the added devices
    /// simulates identically on the grown cluster (its devices keep their
    /// ids and wiring); (2) plan arbitration takes a min over candidates
    /// and the carried-over plan is always a candidate in principle, so
    /// the best simulated time over the grown cluster never regresses.
    #[test]
    fn simulated_time_is_monotone_in_capacity((g, cost, _) in arb_instance()) {
        use fastt_sim::SimConfig;
        let hw = HardwarePerf::new();
        let cfg = SimConfig { jitter_pct: 0.0, ..SimConfig::default() };
        let t2 = Topology::single_server(2);
        let t4 = Topology::single_server(4);
        let small_plan = fastt::dpos_plan(&g, &t2, &cost, &hw);
        let small = small_plan.simulate(&t2, &hw, &cfg).unwrap().makespan;
        let carried = small_plan.simulate(&t4, &hw, &cfg).unwrap().makespan;
        prop_assert!(
            (carried - small).abs() <= 1e-9 * small.max(1.0),
            "idle devices changed an unrelated plan's time: {carried} vs {small}"
        );
        let big_plan = fastt::dpos_plan(&g, &t4, &cost, &hw);
        let big = big_plan.simulate(&t4, &hw, &cfg).unwrap().makespan;
        prop_assert!(
            big.min(carried) <= small + 1e-9,
            "capacity growth regressed the best simulated time: {big} vs {small}"
        );
    }

    /// The hierarchical planner's expanded placement always passes the
    /// checker the flat planners are held to — GPU-only devices, valid ids,
    /// colocation groups kept together — and never exceeds any device's
    /// memory capacity on instances whose working set trivially fits.
    #[test]
    fn hierarchical_placement_validates_and_fits_memory((g, cost, gpus) in arb_instance()) {
        use fastt::{HierarchicalPlanner, Planner, PlanningContext};
        let topo = Topology::single_server(gpus);
        let hw = HardwarePerf::new();
        let mut ctx = PlanningContext::new(&g, &topo, &hw, cost);
        let plan = HierarchicalPlanner::default().plan(&mut ctx).unwrap();
        plan.placement.validate(&plan.graph, &topo).unwrap();
        for (op, d) in plan.placement.iter() {
            prop_assert!(!topo.is_host(d), "{op} on host");
        }
        // per-device planning bytes within capacity (these instances are
        // far below a single device's memory, so best-effort repair must
        // always succeed)
        let mut used = std::collections::HashMap::new();
        for (op, d) in plan.placement.iter() {
            *used.entry(d).or_insert(0u64) += hw.planning_bytes(plan.graph.op_ref(op));
        }
        for (d, bytes) in used {
            prop_assert!(
                bytes <= topo.device(d).mem_bytes,
                "device {d} over capacity: {bytes} bytes"
            );
        }
    }
}

#[test]
fn plan_roundtrips_through_serde() {
    let mut g = Graph::new();
    let a = g.add_op(Operation::new("a", OpKind::Relu, [8])).unwrap();
    let b = g.add_op(Operation::new("b", OpKind::Relu, [8])).unwrap();
    g.connect(a, b).unwrap();
    let topo = Topology::single_server(2);
    let cost = CostModels::new();
    let plan = fastt::dpos_plan(&g, &topo, &cost, &HardwarePerf::new());
    let json = serde_json::to_string(&plan).unwrap();
    let back: fastt::Plan = serde_json::from_str(&json).unwrap();
    assert_eq!(back.placement, plan.placement);
    assert_eq!(back.order, plan.order);
    assert_eq!(back.graph.op_count(), plan.graph.op_count());
    // the deserialized plan still validates and simulates
    back.placement.validate(&back.graph, &topo).unwrap();
    let _ = Placement::uniform(1, DeviceId(0));
}

/// The whole resilience pipeline — retries, blacklisting, re-planning,
/// fallbacks — must be a pure function of (seed, config, fault schedule):
/// two sessions over the same scripted chaos take identical decisions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recovery_log_replays_identically(seed in any::<u64>(), gpus in 2u16..5) {
        use fastt::{SessionConfig, TrainingSession};
        use fastt_models::Model;
        use fastt_sim::FaultSchedule;
        use std::sync::Arc;
        let run = || {
            let g = Model::LeNet.training_graph(16);
            let topo = Topology::single_server(gpus);
            let cfg = SessionConfig {
                profile_iters: 2,
                max_rounds: 2,
                seed,
                faults: Some(Arc::new(FaultSchedule::seeded(seed, gpus, 30, true))),
                ..SessionConfig::default()
            };
            let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), cfg).unwrap();
            let outcome = s.pre_train().and_then(|_| s.train_normal(20, 5));
            (
                s.recovery_log().to_vec(),
                s.topology().failed_devices(),
                s.iterations_run(),
                outcome.is_ok(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }
}
