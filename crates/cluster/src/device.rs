//! GPU devices.

use std::fmt;

/// Identifier of a device within one [`Topology`](crate::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl DeviceId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu:{}", self.0)
    }
}

/// A compute device (GPU) with its capacity parameters.
///
/// The fields feed two consumers: `mem_bytes` is the placement constraint
/// FastT checks (Alg. 1 line 13), while `peak_flops`/`mem_bandwidth` drive
/// the simulator's hidden hardware ground-truth model.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Human-readable name, e.g. `"srv0/gpu2"`.
    pub name: String,
    /// Usable device memory in bytes.
    pub mem_bytes: u64,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s (bounds memory-bound ops).
    pub mem_bandwidth: f64,
    /// Whether this is a CPU host rather than an accelerator. Hosts store
    /// parameter-server state (TF-slim's default `variables_device` is
    /// `/device:CPU:0`) but are not placement targets for FastT, whose
    /// device set is "the set of devices (GPUs)" (Sec. 3).
    pub is_host: bool,
}

impl Device {
    /// An NVIDIA Tesla V100-SXM2-16GB, the paper's testbed GPU:
    /// 15.7 TFLOP/s fp32, 900 GB/s HBM2, 16 GB (we reserve 1 GB for the
    /// framework, matching the usable capacity real TensorFlow reports).
    pub fn v100(name: impl Into<String>) -> Self {
        Device {
            name: name.into(),
            mem_bytes: 15 * (1 << 30),
            peak_flops: 15.7e12,
            mem_bandwidth: 900.0e9,
            is_host: false,
        }
    }

    /// The paper's host CPUs: 2× Xeon Platinum 8163 with large DRAM.
    /// Used as the parameter-server device by the TF-slim DP baseline.
    pub fn host(name: impl Into<String>) -> Self {
        Device {
            name: name.into(),
            mem_bytes: 256 * (1 << 30),
            peak_flops: 2.0e12,
            mem_bandwidth: 100.0e9,
            is_host: true,
        }
    }

    /// Builder-style: overrides the memory capacity (used by tests and the
    /// large-model experiments that need tight memory).
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Builder-style: overrides the peak throughput.
    pub fn with_peak_flops(mut self, flops: f64) -> Self {
        self.peak_flops = flops;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_parameters() {
        let d = Device::v100("gpu0");
        assert_eq!(d.name, "gpu0");
        assert_eq!(d.mem_bytes, 15 * (1 << 30));
        assert!(d.peak_flops > 1e13);
    }

    #[test]
    fn builder_overrides() {
        let d = Device::v100("g").with_mem_bytes(1024).with_peak_flops(1.0);
        assert_eq!(d.mem_bytes, 1024);
        assert_eq!(d.peak_flops, 1.0);
    }

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId(3).to_string(), "gpu:3");
        assert_eq!(DeviceId(3).index(), 3);
    }
}
