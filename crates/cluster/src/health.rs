//! Per-device health state, inferred by whoever watches the cluster.
//!
//! The topology records the *hard* facts (a blacklisted device is gone from
//! [`Topology::gpu_ids`](crate::Topology::gpu_ids)); this module records the
//! *soft* ones: a device that still works but runs slower than the cost
//! models predict, a device under repeated transient failures, and the
//! history of how each device got into its current state. The training
//! session owns a [`HealthMap`] and updates it from fresh profiling traces.

use std::collections::BTreeMap;

use crate::device::DeviceId;

/// The observed condition of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceHealth {
    /// Performing as the cost models predict.
    Healthy,
    /// Alive but slower than predicted by `slowdown`× (a straggler).
    Degraded {
        /// Observed-over-predicted duration ratio (> 1).
        slowdown: f64,
    },
    /// Re-admitted after a failure but not yet trusted: the only state
    /// reachable from [`DeviceHealth::Failed`] (via [`HealthMap::readmit`]),
    /// and one that cannot jump straight to [`DeviceHealth::Healthy`] — it
    /// must pass through a [`DeviceHealth::Degraded`] probation first, so a
    /// flapping device never bounces directly back into full trust.
    Quarantined,
    /// Blacklisted: crashed, preempted, or beyond the retry budget.
    Failed,
}

impl DeviceHealth {
    /// Short label for telemetry fields.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Degraded { .. } => "degraded",
            DeviceHealth::Quarantined => "quarantined",
            DeviceHealth::Failed => "failed",
        }
    }
}

/// Health state for every device in a topology, indexed by [`DeviceId`].
///
/// # Examples
///
/// ```
/// use fastt_cluster::{DeviceHealth, DeviceId, HealthMap};
///
/// let mut h = HealthMap::new(4);
/// h.mark_degraded(DeviceId(2), 3.0);
/// h.mark_failed(DeviceId(1));
/// assert!(h.is_failed(DeviceId(1)));
/// assert_eq!(h.degraded(), vec![(DeviceId(2), 3.0)]);
/// assert_eq!(h.live_count(), 3);
/// assert_eq!(h.health(DeviceId(0)), DeviceHealth::Healthy);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMap {
    state: Vec<DeviceHealth>,
    /// Health of directed links, keyed by `(src, dst)` raw ids. Absent
    /// links are healthy; a `BTreeMap` keeps iteration (and thus telemetry
    /// and recovery logs) deterministic.
    links: BTreeMap<(u16, u16), DeviceHealth>,
}

impl HealthMap {
    /// A map of `device_count` healthy devices.
    pub fn new(device_count: usize) -> Self {
        HealthMap {
            state: vec![DeviceHealth::Healthy; device_count],
            links: BTreeMap::new(),
        }
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the map tracks no devices.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The health of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn health(&self, d: DeviceId) -> DeviceHealth {
        self.state[d.index()]
    }

    /// Marks `d` healthy again (a straggler window ended).
    ///
    /// Failure is sticky: a failed device cannot be marked healthy. A
    /// quarantined device cannot either — one clean signal right after a
    /// re-admission is not enough; it must first graduate to
    /// [`DeviceHealth::Degraded`] probation via [`HealthMap::mark_degraded`].
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn mark_healthy(&mut self, d: DeviceId) {
        if matches!(
            self.state[d.index()],
            DeviceHealth::Healthy | DeviceHealth::Degraded { .. }
        ) {
            self.state[d.index()] = DeviceHealth::Healthy;
        }
    }

    /// Marks `d` as a straggler running `slowdown`× slower than predicted.
    /// Failure is sticky: a failed device stays failed. This is also how a
    /// quarantined device exits quarantine into probation.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn mark_degraded(&mut self, d: DeviceId, slowdown: f64) {
        if self.state[d.index()] != DeviceHealth::Failed {
            self.state[d.index()] = DeviceHealth::Degraded { slowdown };
        }
    }

    /// Deliberately re-admits a failed device into
    /// [`DeviceHealth::Quarantined`] — the **only** way out of
    /// [`DeviceHealth::Failed`]. The full re-admission ladder is
    /// `Failed → Quarantined → Degraded → Healthy`; a device that merely
    /// flaps (no explicit re-admission) stays failed forever. No-op unless
    /// `d` is currently failed.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn readmit(&mut self, d: DeviceId) {
        if self.state[d.index()] == DeviceHealth::Failed {
            self.state[d.index()] = DeviceHealth::Quarantined;
        }
    }

    /// Grows the map to track `device_count` devices (new slots start
    /// healthy). No-op if the map already tracks that many; the map never
    /// shrinks, mirroring [`Topology::device_count`]'s stable-id contract.
    ///
    /// [`Topology::device_count`]: crate::Topology::device_count
    pub fn grow(&mut self, device_count: usize) {
        if device_count > self.state.len() {
            self.state.resize(device_count, DeviceHealth::Healthy);
        }
    }

    /// Blacklists `d` permanently.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn mark_failed(&mut self, d: DeviceId) {
        self.state[d.index()] = DeviceHealth::Failed;
    }

    /// Whether `d` is blacklisted.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn is_failed(&self, d: DeviceId) -> bool {
        self.state[d.index()] == DeviceHealth::Failed
    }

    /// All blacklisted devices, in id order.
    pub fn failed(&self) -> Vec<DeviceId> {
        self.ids().filter(|&d| self.is_failed(d)).collect()
    }

    /// All degraded devices with their slowdowns, in id order.
    pub fn degraded(&self) -> Vec<(DeviceId, f64)> {
        self.ids()
            .filter_map(|d| match self.state[d.index()] {
                DeviceHealth::Degraded { slowdown } => Some((d, slowdown)),
                _ => None,
            })
            .collect()
    }

    /// Devices not blacklisted (healthy or merely degraded).
    pub fn live_count(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s != DeviceHealth::Failed)
            .count()
    }

    /// The health of the directed `src → dst` link (healthy unless marked).
    pub fn link_health(&self, src: DeviceId, dst: DeviceId) -> DeviceHealth {
        self.links
            .get(&(src.0, dst.0))
            .copied()
            .unwrap_or(DeviceHealth::Healthy)
    }

    /// Marks the `src → dst` link as running `slowdown`× slower than its
    /// link class predicts. Link failure is sticky, like device failure.
    pub fn mark_link_degraded(&mut self, src: DeviceId, dst: DeviceId, slowdown: f64) {
        let e = self
            .links
            .entry((src.0, dst.0))
            .or_insert(DeviceHealth::Healthy);
        if *e != DeviceHealth::Failed {
            *e = DeviceHealth::Degraded { slowdown };
        }
    }

    /// Marks the `src → dst` link as permanently failed (flapped past the
    /// retry budget or partitioned).
    pub fn mark_link_failed(&mut self, src: DeviceId, dst: DeviceId) {
        self.links.insert((src.0, dst.0), DeviceHealth::Failed);
    }

    /// Marks the `src → dst` link healthy again. Failure is sticky (a
    /// failed link cannot be marked healthy) and quarantine must pass
    /// through a degraded probation first, exactly as for devices.
    pub fn mark_link_healthy(&mut self, src: DeviceId, dst: DeviceId) {
        if matches!(
            self.link_health(src, dst),
            DeviceHealth::Healthy | DeviceHealth::Degraded { .. }
        ) {
            self.links.remove(&(src.0, dst.0));
        }
    }

    /// Deliberately re-admits a failed `src → dst` link into
    /// [`DeviceHealth::Quarantined`] — the only way out of link failure,
    /// mirroring [`HealthMap::readmit`]. No-op unless the link is failed.
    pub fn readmit_link(&mut self, src: DeviceId, dst: DeviceId) {
        if self.is_link_failed(src, dst) {
            self.links.insert((src.0, dst.0), DeviceHealth::Quarantined);
        }
    }

    /// Whether the directed `src → dst` link is failed.
    pub fn is_link_failed(&self, src: DeviceId, dst: DeviceId) -> bool {
        self.link_health(src, dst) == DeviceHealth::Failed
    }

    /// All failed directed links, in `(src, dst)` id order.
    pub fn failed_links(&self) -> Vec<(DeviceId, DeviceId)> {
        self.links
            .iter()
            .filter(|(_, h)| **h == DeviceHealth::Failed)
            .map(|(&(s, d), _)| (DeviceId(s), DeviceId(d)))
            .collect()
    }

    /// All degraded directed links with their slowdowns, in id order.
    pub fn degraded_links(&self) -> Vec<(DeviceId, DeviceId, f64)> {
        self.links
            .iter()
            .filter_map(|(&(s, d), h)| match h {
                DeviceHealth::Degraded { slowdown } => Some((DeviceId(s), DeviceId(d), *slowdown)),
                _ => None,
            })
            .collect()
    }

    fn ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.state.len() as u16).map(DeviceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy() {
        let h = HealthMap::new(3);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.live_count(), 3);
        assert!(h.failed().is_empty());
        assert!(h.degraded().is_empty());
        assert_eq!(h.health(DeviceId(2)), DeviceHealth::Healthy);
    }

    #[test]
    fn degraded_tracks_slowdown_and_recovers() {
        let mut h = HealthMap::new(2);
        h.mark_degraded(DeviceId(0), 2.5);
        assert_eq!(h.degraded(), vec![(DeviceId(0), 2.5)]);
        assert_eq!(h.health(DeviceId(0)).label(), "degraded");
        h.mark_healthy(DeviceId(0));
        assert!(h.degraded().is_empty());
        assert_eq!(h.live_count(), 2);
    }

    #[test]
    fn link_states_transition_and_failure_is_sticky() {
        let mut h = HealthMap::new(4);
        let (a, b) = (DeviceId(0), DeviceId(1));
        assert_eq!(h.link_health(a, b), DeviceHealth::Healthy);
        h.mark_link_degraded(a, b, 3.0);
        assert_eq!(
            h.link_health(a, b),
            DeviceHealth::Degraded { slowdown: 3.0 }
        );
        assert_eq!(h.degraded_links(), vec![(a, b, 3.0)]);
        // degraded links can recover
        h.mark_link_healthy(a, b);
        assert_eq!(h.link_health(a, b), DeviceHealth::Healthy);
        assert!(h.degraded_links().is_empty());
        // failure is sticky, even through degrade/healthy attempts
        h.mark_link_failed(a, b);
        h.mark_link_healthy(a, b);
        h.mark_link_degraded(a, b, 2.0);
        assert!(h.is_link_failed(a, b));
        assert_eq!(h.failed_links(), vec![(a, b)]);
        // directionality: reverse link is independent
        assert_eq!(h.link_health(b, a), DeviceHealth::Healthy);
        // device state is untouched by link marks
        assert_eq!(h.live_count(), 4);
    }

    #[test]
    fn link_lists_are_id_ordered() {
        let mut h = HealthMap::new(4);
        h.mark_link_failed(DeviceId(3), DeviceId(0));
        h.mark_link_failed(DeviceId(1), DeviceId(2));
        h.mark_link_degraded(DeviceId(2), DeviceId(1), 2.0);
        h.mark_link_degraded(DeviceId(0), DeviceId(3), 5.0);
        assert_eq!(
            h.failed_links(),
            vec![(DeviceId(1), DeviceId(2)), (DeviceId(3), DeviceId(0))]
        );
        assert_eq!(
            h.degraded_links(),
            vec![
                (DeviceId(0), DeviceId(3), 5.0),
                (DeviceId(2), DeviceId(1), 2.0)
            ]
        );
    }

    #[test]
    fn failure_is_sticky() {
        let mut h = HealthMap::new(2);
        h.mark_failed(DeviceId(1));
        assert!(h.is_failed(DeviceId(1)));
        h.mark_healthy(DeviceId(1));
        h.mark_degraded(DeviceId(1), 2.0);
        assert!(h.is_failed(DeviceId(1)), "failed devices never come back");
        assert_eq!(h.failed(), vec![DeviceId(1)]);
        assert_eq!(h.live_count(), 1);
    }

    #[test]
    fn flapping_device_is_never_auto_readmitted() {
        // Regression: the ONLY way out of Failed is an explicit readmit().
        // A device that flaps — fails, then looks fine on the next health
        // sweep — must stay blacklisted no matter how many healthy or
        // degraded signals arrive.
        let mut h = HealthMap::new(2);
        let d = DeviceId(0);
        h.mark_failed(d);
        for _ in 0..10 {
            h.mark_healthy(d);
            h.mark_degraded(d, 1.0);
        }
        assert!(h.is_failed(d), "flaps must not un-stick Failed");
        // deliberate re-admission enters quarantine, not trust
        h.readmit(d);
        assert_eq!(h.health(d), DeviceHealth::Quarantined);
        assert_eq!(h.health(d).label(), "quarantined");
        assert_eq!(h.live_count(), 2, "quarantined counts as live");
        // a single clean signal cannot skip probation...
        h.mark_healthy(d);
        assert_eq!(h.health(d), DeviceHealth::Quarantined);
        // ...the ladder is quarantine → degraded probation → healthy
        h.mark_degraded(d, 1.0);
        assert_eq!(h.health(d), DeviceHealth::Degraded { slowdown: 1.0 });
        h.mark_healthy(d);
        assert_eq!(h.health(d), DeviceHealth::Healthy);
        // readmit on a non-failed device is a no-op
        h.readmit(d);
        assert_eq!(h.health(d), DeviceHealth::Healthy);
    }

    #[test]
    fn link_readmission_mirrors_the_device_ladder() {
        let mut h = HealthMap::new(2);
        let (a, b) = (DeviceId(0), DeviceId(1));
        h.mark_link_failed(a, b);
        h.mark_link_healthy(a, b);
        assert!(h.is_link_failed(a, b), "link failure stays sticky");
        h.readmit_link(a, b);
        assert_eq!(h.link_health(a, b), DeviceHealth::Quarantined);
        assert!(!h.is_link_failed(a, b));
        h.mark_link_healthy(a, b);
        assert_eq!(
            h.link_health(a, b),
            DeviceHealth::Quarantined,
            "quarantined links need degraded probation first"
        );
        h.mark_link_degraded(a, b, 1.0);
        h.mark_link_healthy(a, b);
        assert_eq!(h.link_health(a, b), DeviceHealth::Healthy);
        // direction independence and no-op on healthy links
        h.readmit_link(b, a);
        assert_eq!(h.link_health(b, a), DeviceHealth::Healthy);
    }

    #[test]
    fn grow_adds_healthy_slots_and_never_shrinks() {
        let mut h = HealthMap::new(2);
        h.mark_failed(DeviceId(1));
        h.grow(4);
        assert_eq!(h.len(), 4);
        assert!(h.is_failed(DeviceId(1)), "existing state survives growth");
        assert_eq!(h.health(DeviceId(3)), DeviceHealth::Healthy);
        h.grow(1);
        assert_eq!(h.len(), 4, "the map never shrinks");
    }
}
