//! Allocations: stable-id subset views of one shared [`Topology`].
//!
//! A fleet scheduler carves a big shared cluster into per-job slices. An
//! [`Allocation`] is such a slice: it keeps the *global* device ids (so
//! cost-model keys, traces, and fault schedules stay valid across jobs) but
//! masks every non-member GPU — and the hosts of uninvolved servers — as
//! failed in its private topology view, so planners, routing, and health
//! tracking are automatically scoped to the slice.
//!
//! Two allocations with the same *shape* (same live device signatures, same
//! link matrix in canonical coordinates) are interchangeable for planning
//! even when they cover different physical ids; [`Topology::shape_hash`]
//! captures exactly that equivalence, which is what lets a shared plan
//! cache serve job N+1 instantly when job N already planned the same model
//! on a same-shaped slice.

use crate::device::DeviceId;
use crate::health::HealthMap;
use crate::topology::Topology;

/// Identifier of one allocation within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocationId(pub u32);

impl std::fmt::Display for AllocationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "alloc:{}", self.0)
    }
}

/// splitmix64-style mixer (same scheme the plan-cache fingerprints use).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Topology {
    /// The live devices in *canonical order*: grouped by server, servers
    /// sorted richest-first by their live-device signature (GPU count,
    /// then per-device capacity), devices within a server GPUs-first by
    /// capacity. Raw ids only break exact signature ties, so the order —
    /// and anything hashed over it — is independent of *which* physical
    /// ids an allocation happens to cover.
    pub fn canonical_live_devices(&self) -> Vec<DeviceId> {
        let mut by_server: std::collections::BTreeMap<u16, Vec<DeviceId>> =
            std::collections::BTreeMap::new();
        for d in self.device_ids() {
            if !self.is_failed(d) {
                by_server.entry(self.server_of(d)).or_default().push(d);
            }
        }
        type Sig = Vec<(bool, u64, u64, u64)>;
        let mut servers: Vec<(Sig, u16, Vec<DeviceId>)> = Vec::new();
        for (sid, mut devs) in by_server {
            devs.sort_by_key(|&d| {
                let dev = self.device(d);
                (dev.is_host, dev.mem_bytes, d.0)
            });
            let sig: Sig = devs
                .iter()
                .map(|&d| {
                    let dev = self.device(d);
                    (
                        dev.is_host,
                        dev.mem_bytes,
                        dev.peak_flops.to_bits(),
                        dev.mem_bandwidth.to_bits(),
                    )
                })
                .collect();
            servers.push((sig, sid, devs));
        }
        servers.sort_by(|a, b| {
            let gpus = |s: &Sig| s.iter().filter(|d| !d.0).count();
            gpus(&b.0)
                .cmp(&gpus(&a.0))
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.cmp(&b.1))
        });
        servers.into_iter().flat_map(|(_, _, devs)| devs).collect()
    }

    /// Position-independent hash of the topology's live *shape*: per-device
    /// capacity signatures plus the full live-pair link matrix (specs,
    /// failure and degradation marks, server co-location), all in the
    /// canonical coordinates of [`Topology::canonical_live_devices`].
    ///
    /// Device ids and names do **not** participate, so two allocations of
    /// the same shape carved from different physical ids hash equal, while
    /// any capacity change — a failure, restore, hot-add, link fault, or
    /// NIC degradation — moves the hash. Used as the plan-cache capacity
    /// mask, which is what makes cached plans shareable across jobs.
    pub fn shape_hash(&self) -> u64 {
        let canon = self.canonical_live_devices();
        let mut h = mix(0x5A17_E000 ^ canon.len() as u64);
        for (i, &d) in canon.iter().enumerate() {
            let dev = self.device(d);
            let mut v = mix(((i as u64) << 1) | dev.is_host as u64);
            v ^= mix(dev.mem_bytes);
            v ^= mix(dev.peak_flops.to_bits());
            v ^= mix(dev.mem_bandwidth.to_bits());
            h ^= mix(v.wrapping_add(i as u64));
        }
        for (i, &a) in canon.iter().enumerate() {
            for (j, &b) in canon.iter().enumerate() {
                if i == j {
                    continue;
                }
                let pair = ((i as u64) << 32) | j as u64;
                let mut v = mix(pair);
                match self.link(a, b) {
                    Some(l) => {
                        v ^= mix(l.latency.to_bits());
                        v ^= mix(l.bandwidth.to_bits());
                    }
                    None => v ^= mix(0xDEAD),
                }
                if self.is_link_failed(a, b) {
                    v ^= mix(0xF1A6);
                }
                let slow = self.link_degrade_factor(a, b);
                if slow != 1.0 {
                    v ^= mix(slow.to_bits());
                }
                if self.server_of(a) == self.server_of(b) {
                    v ^= mix(0x5A3E);
                }
                h ^= mix(v ^ pair);
            }
        }
        h
    }
}

/// One job's slice of a shared cluster: a private [`Topology`] view with
/// every non-member device masked as failed, plus a per-slice [`HealthMap`].
///
/// Global device ids are preserved — an allocation over GPUs `{4, 5}` still
/// addresses them as 4 and 5 — so id-indexed state interoperates with the
/// shared cluster, but [`Topology::gpu_ids`] on the view yields only the
/// members, which scopes planning, routing, and validation to the slice.
///
/// # Examples
///
/// ```
/// use fastt_cluster::{Allocation, AllocationId, DeviceId, Topology};
///
/// let shared = Topology::multi_server(2, 4);
/// let a = Allocation::new(AllocationId(0), &shared, &[DeviceId(4), DeviceId(5)]);
/// assert_eq!(a.topo().gpu_count(), 2);
/// // same shape as the twin slice on the other server
/// let b = Allocation::new(AllocationId(1), &shared, &[DeviceId(0), DeviceId(1)]);
/// assert_eq!(a.shape_hash(), b.shape_hash());
/// ```
#[derive(Debug, Clone)]
pub struct Allocation {
    id: AllocationId,
    members: Vec<DeviceId>,
    view: Topology,
    health: HealthMap,
}

impl Allocation {
    /// Carves an allocation of `gpus` out of `shared`. The view keeps the
    /// hosts of every involved server (routing still stages through them)
    /// and masks everything else.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty, contains a host, a failed device, or an
    /// out-of-range id.
    pub fn new(id: AllocationId, shared: &Topology, gpus: &[DeviceId]) -> Self {
        assert!(!gpus.is_empty(), "allocation needs at least one GPU");
        let mut members: Vec<DeviceId> = gpus.to_vec();
        members.sort();
        members.dedup();
        for &d in &members {
            assert!(
                d.index() < shared.device_count(),
                "allocation member {d} out of range"
            );
            assert!(!shared.is_host(d), "allocation member {d} is a host");
            assert!(!shared.is_failed(d), "allocation member {d} is failed");
        }
        let servers: std::collections::BTreeSet<u16> =
            members.iter().map(|&d| shared.server_of(d)).collect();
        let mut view = shared.clone();
        for d in shared.device_ids() {
            let keep = members.contains(&d)
                || (shared.is_host(d) && servers.contains(&shared.server_of(d)));
            if !keep && !shared.is_failed(d) {
                view.fail_device(d);
            }
        }
        let health = HealthMap::new(view.device_count());
        Allocation {
            id,
            members,
            view,
            health,
        }
    }

    /// The trivial allocation covering all of `shared` — what a single-job
    /// session uses, preserving the pre-fleet behaviour exactly.
    pub fn whole(shared: &Topology) -> Self {
        let members: Vec<DeviceId> = shared.gpu_ids().collect();
        let health = HealthMap::new(shared.device_count());
        Allocation {
            id: AllocationId(0),
            members,
            view: shared.clone(),
            health,
        }
    }

    /// This allocation's id.
    pub fn id(&self) -> AllocationId {
        self.id
    }

    /// The granted GPU members, in id order. This is the *ownership* set;
    /// the live capacity (members minus recovery blacklists) is what
    /// [`Topology::gpu_ids`] on [`Allocation::topo`] reports.
    pub fn members(&self) -> &[DeviceId] {
        &self.members
    }

    /// Whether `d` is a granted member.
    pub fn contains(&self, d: DeviceId) -> bool {
        self.members.contains(&d)
    }

    /// The scoped topology view.
    pub fn topo(&self) -> &Topology {
        &self.view
    }

    /// Mutable access to the scoped view (recovery blacklists, link marks).
    pub fn topo_mut(&mut self) -> &mut Topology {
        &mut self.view
    }

    /// The per-slice health map.
    pub fn health(&self) -> &HealthMap {
        &self.health
    }

    /// Mutable access to the per-slice health map.
    pub fn health_mut(&mut self) -> &mut HealthMap {
        &mut self.health
    }

    /// Grants `d` to this allocation: it joins the member set and is
    /// unmasked in the view (along with its server's host, which may have
    /// been masked while the server was uninvolved). Health bookkeeping is
    /// the caller's (the session runs the readmission ladder).
    pub fn grant(&mut self, d: DeviceId) {
        if !self.members.contains(&d) {
            self.members.push(d);
            self.members.sort();
        }
        self.view.restore_device(d);
        let server = self.view.server_of(d);
        for h in self.view.device_ids().collect::<Vec<_>>() {
            if self.view.is_host(h) && self.view.server_of(h) == server {
                self.view.restore_device(h);
            }
        }
        self.health.grow(self.view.device_count());
    }

    /// Revokes `d` from this allocation: it leaves the member set, is
    /// masked as failed in the view and the health map, and — when it was
    /// the last member on its server — the server's host is masked too, so
    /// revocation returns the view to exactly the shape a fresh allocation
    /// over the surviving members would have. Returns whether `d` was a
    /// member.
    pub fn revoke(&mut self, d: DeviceId) -> bool {
        let was = self.members.contains(&d);
        self.members.retain(|&m| m != d);
        self.view.fail_device(d);
        self.health.mark_failed(d);
        let server = self.view.server_of(d);
        if !self
            .members
            .iter()
            .any(|&m| self.view.server_of(m) == server)
        {
            for h in self.view.device_ids().collect::<Vec<_>>() {
                if self.view.is_host(h) && self.view.server_of(h) == server {
                    self.view.fail_device(h);
                }
            }
        }
        was
    }

    /// Number of live GPUs in the view.
    pub fn gpu_count(&self) -> usize {
        self.view.gpu_count()
    }

    /// The shape hash of the scoped view ([`Topology::shape_hash`]).
    pub fn shape_hash(&self) -> u64 {
        self.view.shape_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::topology::TopologyBuilder;

    #[test]
    fn allocation_masks_everything_outside_the_slice() {
        let shared = Topology::multi_server(2, 4);
        let a = Allocation::new(AllocationId(3), &shared, &[DeviceId(1), DeviceId(2)]);
        assert_eq!(a.id(), AllocationId(3));
        assert_eq!(a.members(), &[DeviceId(1), DeviceId(2)]);
        assert!(a.contains(DeviceId(1)) && !a.contains(DeviceId(0)));
        // only the members are plannable, under their global ids
        let ids: Vec<DeviceId> = a.topo().gpu_ids().collect();
        assert_eq!(ids, vec![DeviceId(1), DeviceId(2)]);
        // the involved server's host survives (routing stages through it),
        // the other server's host does not
        assert!(a.topo().host_of(0).is_some());
        assert_eq!(a.topo().host_of(1), None);
        // the shared topology is untouched
        assert_eq!(shared.gpu_count(), 8);
    }

    #[test]
    fn same_shape_different_ids_hash_equal() {
        let shared = Topology::multi_server(2, 4);
        let a = Allocation::new(AllocationId(0), &shared, &[DeviceId(0), DeviceId(1)]);
        let b = Allocation::new(AllocationId(1), &shared, &[DeviceId(4), DeviceId(5)]);
        let c = Allocation::new(AllocationId(2), &shared, &[DeviceId(2), DeviceId(3)]);
        assert_eq!(a.shape_hash(), b.shape_hash());
        assert_eq!(a.shape_hash(), c.shape_hash());
        // a cross-server slice is a different shape than an intra-server one
        let x = Allocation::new(AllocationId(3), &shared, &[DeviceId(0), DeviceId(4)]);
        assert_ne!(a.shape_hash(), x.shape_hash());
        // and so is a bigger slice
        let big = Allocation::new(
            AllocationId(4),
            &shared,
            &[DeviceId(0), DeviceId(1), DeviceId(2)],
        );
        assert_ne!(a.shape_hash(), big.shape_hash());
    }

    #[test]
    fn shape_hash_sees_capacity_and_link_health() {
        let mut t = Topology::single_server(4);
        let healthy = t.shape_hash();
        t.fail_device(DeviceId(2));
        let shrunk = t.shape_hash();
        assert_ne!(healthy, shrunk);
        // restore returns to exactly the healthy shape — pre-failure cached
        // plans become reusable again
        t.restore_device(DeviceId(2));
        assert_eq!(t.shape_hash(), healthy);
        // failing a *different* device of the same signature is the SAME
        // shape: a plan over 3 interchangeable V100s is reusable either way
        t.fail_device(DeviceId(1));
        assert_eq!(t.shape_hash(), shrunk);
        t.restore_device(DeviceId(1));
        // link faults and degradations move the shape
        t.fail_link(DeviceId(0), DeviceId(1));
        let broken = t.shape_hash();
        assert_ne!(healthy, broken);
        t.restore_link(DeviceId(0), DeviceId(1));
        assert_eq!(t.shape_hash(), healthy);
        t.degrade_link(DeviceId(0), DeviceId(1), 4.0);
        assert_ne!(t.shape_hash(), healthy);
        // hot-adds grow the shape
        t.restore_link(DeviceId(0), DeviceId(1));
        t.add_server(2);
        assert_ne!(t.shape_hash(), healthy);
    }

    #[test]
    fn shape_hash_ignores_names_but_not_capacity() {
        let mut a = TopologyBuilder::new();
        a.add_device(Device::v100("alpha"), 0);
        a.add_device(Device::v100("beta"), 0);
        a.connect_intra_server(crate::Link::nvlink());
        let mut b = TopologyBuilder::new();
        b.add_device(Device::v100("gamma"), 7);
        b.add_device(Device::v100("delta"), 7);
        b.connect_intra_server(crate::Link::nvlink());
        assert_eq!(a.build().shape_hash(), b.build().shape_hash());
        // a memory-capacity difference is a different shape
        let mut c = TopologyBuilder::new();
        c.add_device(Device::v100("gamma").with_mem_bytes(1 << 30), 7);
        c.add_device(Device::v100("delta"), 7);
        c.connect_intra_server(crate::Link::nvlink());
        assert_ne!(a.build().shape_hash(), c.build().shape_hash());
    }

    #[test]
    fn canonical_order_is_position_independent() {
        let shared = Topology::multi_server(2, 2);
        let a = Allocation::new(AllocationId(0), &shared, &[DeviceId(0), DeviceId(1)]);
        let b = Allocation::new(AllocationId(1), &shared, &[DeviceId(2), DeviceId(3)]);
        let ca = a.topo().canonical_live_devices();
        let cb = b.topo().canonical_live_devices();
        assert_eq!(ca.len(), cb.len());
        // positions line up: i-th canonical device of one slice corresponds
        // to the i-th of the other (GPUs first, then the host)
        assert_eq!(ca.len(), 3);
        assert!(!a.topo().is_host(ca[0]) && !a.topo().is_host(ca[1]));
        assert!(a.topo().is_host(ca[2]) && b.topo().is_host(cb[2]));
    }

    #[test]
    fn grant_and_revoke_roundtrip_the_shape() {
        let shared = Topology::multi_server(2, 2);
        let mut a = Allocation::new(AllocationId(0), &shared, &[DeviceId(0), DeviceId(1)]);
        let before = a.shape_hash();
        // grant a GPU on the other server: its host is unmasked too
        a.grant(DeviceId(2));
        assert!(a.contains(DeviceId(2)));
        assert_eq!(a.gpu_count(), 3);
        assert!(a.topo().host_of(1).is_some());
        assert_ne!(a.shape_hash(), before);
        // revoking the last member of a server re-masks its host, so the
        // shape returns to exactly the pre-grant allocation's
        assert!(a.revoke(DeviceId(2)));
        assert_eq!(a.gpu_count(), 2);
        assert_eq!(a.topo().host_of(1), None);
        assert_eq!(a.shape_hash(), before);
        assert!(!a.revoke(DeviceId(2)), "double revoke is reported");
        // a fresh allocation over the surviving members has the same shape
        let fresh = Allocation::new(AllocationId(1), &shared, &[DeviceId(0), DeviceId(1)]);
        assert_eq!(a.shape_hash(), fresh.shape_hash());
    }

    #[test]
    fn whole_covers_the_shared_cluster_unmasked() {
        let shared = Topology::multi_server(2, 2);
        let a = Allocation::whole(&shared);
        assert_eq!(a.members().len(), 4);
        assert_eq!(a.gpu_count(), 4);
        assert_eq!(a.topo().device_count(), shared.device_count());
        assert!(a.topo().host_of(0).is_some() && a.topo().host_of(1).is_some());
    }
}
