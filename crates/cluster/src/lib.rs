//! # fastt-cluster
//!
//! Device and interconnect topology substrate for the FastT reproduction.
//!
//! The paper's testbed is "physical machines, each equipped with 8 NVIDIA
//! Tesla V100 GPUs with NVLinks, where each GPU has 16GB memory" (Sec. 6.2),
//! with some experiments spanning two servers. This crate models exactly the
//! inputs FastT's problem definition requires: "the set of devices (GPUs) and
//! memory limitation of each device" (Sec. 3, input (b)) plus the physical
//! interconnect characteristics the simulator needs to synthesize transfer
//! times.
//!
//! # Examples
//!
//! ```
//! use fastt_cluster::Topology;
//!
//! let single = Topology::single_server(4);
//! assert_eq!(single.gpu_count(), 4);
//! assert!(single.host_of(0).is_some()); // one CPU host per server
//!
//! let multi = Topology::multi_server(2, 4);
//! assert_eq!(multi.gpu_count(), 8);
//! // cross-server links are slower than NVLink
//! use fastt_cluster::DeviceId;
//! let intra = multi.link(DeviceId(0), DeviceId(1)).unwrap();
//! let inter = multi.link(DeviceId(0), DeviceId(4)).unwrap();
//! assert!(inter.bandwidth < intra.bandwidth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod device;
mod health;
mod topology;

pub use allocation::{Allocation, AllocationId};
pub use device::{Device, DeviceId};
pub use health::{DeviceHealth, HealthMap};
pub use topology::{Link, LinkClass, Topology, TopologyBuilder};
