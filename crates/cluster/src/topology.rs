//! Cluster topologies: devices plus the interconnects between them.

use crate::device::{Device, DeviceId};

/// A directed interconnect between two devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes/s.
    pub bandwidth: f64,
}

impl Link {
    /// NVLink 2.0 peer-to-peer (V100 generation): ~48 GB/s effective, ~5 µs
    /// launch-to-first-byte latency.
    pub fn nvlink() -> Self {
        Link {
            latency: 5e-6,
            bandwidth: 48.0e9,
        }
    }

    /// PCIe 3.0 x16: ~12 GB/s effective.
    pub fn pcie() -> Self {
        Link {
            latency: 10e-6,
            bandwidth: 12.0e9,
        }
    }

    /// 25 Gb/s datacenter Ethernet/RDMA between servers: ~3 GB/s effective,
    /// ~30 µs latency.
    pub fn ethernet_25g() -> Self {
        Link {
            latency: 30e-6,
            bandwidth: 3.0e9,
        }
    }

    /// 100 Gb/s RDMA between servers (the class of fabric in the paper's
    /// production cluster): ~11 GB/s effective, ~10 µs latency.
    pub fn rdma_100g() -> Self {
        Link {
            latency: 10e-6,
            bandwidth: 11.0e9,
        }
    }

    /// Time in seconds to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Hardware class of an interconnect. Communication cost models fit one
/// regression per *class* rather than per device pair, so an observation on
/// any NVLink edge informs every NVLink edge (O(classes) fits instead of
/// O(n²), which stays data-starved on 16-GPU clusters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// GPU↔GPU peer link within a server (NVLink-grade bandwidth).
    NvLink,
    /// Intra-server link through the PCIe root complex (host↔GPU, or
    /// GPU↔GPU without peer links).
    Pcie,
    /// Inter-server commodity Ethernet.
    Eth,
    /// Inter-server RDMA fabric.
    Rdma,
}

impl LinkClass {
    /// Every class, in a stable order (for reports and iteration).
    pub fn all() -> [LinkClass; 4] {
        [
            LinkClass::NvLink,
            LinkClass::Pcie,
            LinkClass::Eth,
            LinkClass::Rdma,
        ]
    }

    /// Classifies a link by its placement and bandwidth. Intra-server links
    /// at NVLink-grade bandwidth (≥ 25 GB/s) are [`LinkClass::NvLink`],
    /// slower ones [`LinkClass::Pcie`]; inter-server links at RDMA-grade
    /// bandwidth (≥ 8 GB/s) are [`LinkClass::Rdma`], slower ones
    /// [`LinkClass::Eth`].
    pub fn classify(link: &Link, same_server: bool) -> LinkClass {
        if same_server {
            if link.bandwidth >= 25.0e9 {
                LinkClass::NvLink
            } else {
                LinkClass::Pcie
            }
        } else if link.bandwidth >= 8.0e9 {
            LinkClass::Rdma
        } else {
            LinkClass::Eth
        }
    }

    /// Lower-case stable name (`nvlink`, `pcie`, `eth`, `rdma`).
    pub fn name(&self) -> &'static str {
        match self {
            LinkClass::NvLink => "nvlink",
            LinkClass::Pcie => "pcie",
            LinkClass::Eth => "eth",
            LinkClass::Rdma => "rdma",
        }
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of devices and the links between every ordered pair.
///
/// `link(a, b)` is `None` when `a == b` — intra-device "transfers" are free.
#[derive(Debug, Clone)]
pub struct Topology {
    devices: Vec<Device>,
    /// `links[src][dst]`; `None` on the diagonal.
    links: Vec<Vec<Option<Link>>>,
    /// `server_of[d]`: which physical server hosts device `d`.
    server_of: Vec<u16>,
    /// `failed[d]`: device `d` has been blacklisted (crashed / preempted).
    /// Device ids stay stable — failed devices keep their slot so that
    /// id-indexed state (cost-model keys, traces, fault schedules) remains
    /// valid — but planners skip them via [`Topology::gpu_ids`].
    failed: Vec<bool>,
    /// `link_down[src][dst]`: the directed link has been administratively
    /// failed (flap past the retry budget, partition). The physical wiring
    /// ([`Topology::link`]) stays addressable — specs still seed cost-model
    /// priors — but [`Topology::live_link`] refuses it and
    /// [`Topology::try_route`] routes around it.
    link_down: Vec<Vec<bool>>,
    /// `link_slow[src][dst]`: transfer-time multiplier on the directed link
    /// (`1.0` when healthy), set by the session when it detects a link
    /// running slower than its class predicts.
    link_slow: Vec<Vec<f64>>,
    /// Default link classes used to wire *hot-added* devices
    /// ([`Topology::add_device`] / [`Topology::add_server`]), captured from
    /// the builder: intra-server, inter-server, and host↔GPU PCIe. `None`
    /// on hand-wired topologies built without class defaults, in which
    /// case grown devices get no links of that class.
    intra: Option<Link>,
    inter: Option<Link>,
    host_pcie: Option<Link>,
}

impl Topology {
    /// One server with `n` V100 GPUs, fully connected by NVLink
    /// (the paper's 1/2/4/8-GPU single-server settings).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn single_server(n: u16) -> Self {
        Self::multi_server(1, n)
    }

    /// `servers` machines with `gpus_per_server` V100s each plus one CPU
    /// host per server: NVLink between GPUs within a server, PCIe between a
    /// host and its GPUs, 25 GbE between servers (the paper's "8 GPUs
    /// (2 servers)" and "16 GPUs (2 servers)" settings).
    ///
    /// GPU device ids come first (`0..servers*gpus_per_server`), hosts
    /// after them — so GPU ids are stable regardless of host presence.
    ///
    /// # Panics
    ///
    /// Panics if either argument is 0.
    pub fn multi_server(servers: u16, gpus_per_server: u16) -> Self {
        assert!(servers > 0 && gpus_per_server > 0, "empty topology");
        let mut b = TopologyBuilder::new();
        for s in 0..servers {
            for g in 0..gpus_per_server {
                b.add_device(Device::v100(format!("srv{s}/gpu{g}")), s);
            }
        }
        for s in 0..servers {
            b.add_device(Device::host(format!("srv{s}/cpu")), s);
        }
        b.connect_intra_server(Link::nvlink());
        b.connect_inter_server(Link::rdma_100g());
        b.connect_host_pcie(Link::pcie());
        b.build()
    }

    /// Number of devices (GPUs and hosts), including failed ones — this is
    /// the size of every id-indexed vector, so it never shrinks.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of *live* GPU devices (failed GPUs are excluded).
    pub fn gpu_count(&self) -> usize {
        self.gpu_ids().count()
    }

    /// All device ids (GPUs and hosts, live and failed).
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u16).map(DeviceId)
    }

    /// Live GPU device ids only — the placement targets FastT considers
    /// (Sec. 3: the input device set is "the set of devices (GPUs)").
    /// Blacklisted devices are skipped, so planners that iterate this set
    /// automatically plan over the surviving cluster.
    pub fn gpu_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.device_ids()
            .filter(|d| !self.devices[d.index()].is_host && !self.failed[d.index()])
    }

    /// Blacklists `d`: it stays in the topology (ids remain stable) but is
    /// excluded from [`Topology::gpu_ids`]/[`Topology::gpu_count`] and
    /// rejected by placement validation.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn fail_device(&mut self, d: DeviceId) {
        self.failed[d.index()] = true;
    }

    /// Clears the blacklist mark on `d`: the device re-enters
    /// [`Topology::gpu_ids`] under its original id and placements may
    /// target it again. The inverse of [`Topology::fail_device`]; link
    /// health is separate ([`Topology::restore_link`]).
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn restore_device(&mut self, d: DeviceId) {
        self.failed[d.index()] = false;
    }

    /// Hot-adds `device` on `server`, wiring it to every existing device
    /// with the topology's default link classes (intra-server, inter-server,
    /// host↔GPU PCIe — the same rules [`TopologyBuilder::build`] applies).
    /// Existing ids are untouched; the new device gets the next id, so
    /// id-indexed state (cost-model keys, fault schedules, health maps)
    /// stays valid.
    pub fn add_device(&mut self, device: Device, server: u16) -> DeviceId {
        let id = DeviceId(self.devices.len() as u16);
        let new_is_host = device.is_host;
        self.devices.push(device);
        self.server_of.push(server);
        self.failed.push(false);
        let n = self.devices.len();
        let wires: Vec<Option<Link>> = (0..n - 1)
            .map(|other| {
                let same = self.server_of[other] == server;
                let host_pair = self.devices[other].is_host || new_is_host;
                if !same {
                    self.inter
                } else if host_pair {
                    self.host_pcie.or(self.intra)
                } else {
                    self.intra
                }
            })
            .collect();
        for (row, &l) in self.links.iter_mut().zip(&wires) {
            row.push(l);
        }
        let mut new_row = wires;
        new_row.push(None); // diagonal
        self.links.push(new_row);
        for row in self.link_down.iter_mut() {
            row.push(false);
        }
        self.link_down.push(vec![false; n]);
        for row in self.link_slow.iter_mut() {
            row.push(1.0);
        }
        self.link_slow.push(vec![1.0; n]);
        debug_assert_eq!(
            self.validate(),
            Ok(()),
            "add_device broke topology invariants"
        );
        id
    }

    /// Hot-adds a whole server: `gpus` V100s plus one CPU host, on a fresh
    /// server id one past the current maximum. Returns the new GPU ids (the
    /// host is discoverable via [`Topology::host_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `gpus == 0`.
    pub fn add_server(&mut self, gpus: u16) -> Vec<DeviceId> {
        assert!(gpus > 0, "a server needs at least one GPU");
        let server = self.server_of.iter().copied().max().map_or(0, |s| s + 1);
        let ids = (0..gpus)
            .map(|g| self.add_device(Device::v100(format!("srv{server}/gpu{g}")), server))
            .collect();
        self.add_device(Device::host(format!("srv{server}/cpu")), server);
        ids
    }

    /// Whether `d` has been blacklisted.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn is_failed(&self, d: DeviceId) -> bool {
        self.failed[d.index()]
    }

    /// All blacklisted device ids, in id order.
    pub fn failed_devices(&self) -> Vec<DeviceId> {
        self.device_ids().filter(|&d| self.is_failed(d)).collect()
    }

    /// Whether `d` is a CPU host.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn is_host(&self, d: DeviceId) -> bool {
        self.devices[d.index()].is_host
    }

    /// The live host device of `server`, if the topology has one.
    pub fn host_of(&self, server: u16) -> Option<DeviceId> {
        self.device_ids().find(|&d| {
            self.devices[d.index()].is_host
                && self.server_of[d.index()] == server
                && !self.failed[d.index()]
        })
    }

    /// The device with id `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn device(&self, d: DeviceId) -> &Device {
        &self.devices[d.index()]
    }

    /// All devices in id order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The link from `src` to `dst`, or `None` when `src == dst`. This is
    /// the *physical wiring* — failed links are still reported here (their
    /// specs keep seeding cost-model priors); use [`Topology::live_link`]
    /// for the health-aware view.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link(&self, src: DeviceId, dst: DeviceId) -> Option<&Link> {
        self.links[src.index()][dst.index()].as_ref()
    }

    /// The link from `src` to `dst` if it exists *and* has not been failed
    /// by [`Topology::fail_link`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn live_link(&self, src: DeviceId, dst: DeviceId) -> Option<&Link> {
        if self.link_down[src.index()][dst.index()] {
            return None;
        }
        self.link(src, dst)
    }

    /// Marks the directed `src → dst` link failed: [`Topology::live_link`]
    /// refuses it and [`Topology::try_route`] routes around it. Call both
    /// directions to model a dead cable. Device ids and channel keys are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn fail_link(&mut self, src: DeviceId, dst: DeviceId) {
        self.link_down[src.index()][dst.index()] = true;
    }

    /// Multiplies transfer times on the directed `src → dst` link by
    /// `factor` (compounding with previous degradations).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `factor` is not positive.
    pub fn degrade_link(&mut self, src: DeviceId, dst: DeviceId, factor: f64) {
        assert!(factor > 0.0, "degrade factor must be positive");
        self.link_slow[src.index()][dst.index()] *= factor;
    }

    /// Clears both the failure and degradation marks of the directed
    /// `src → dst` link.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn restore_link(&mut self, src: DeviceId, dst: DeviceId) {
        self.link_down[src.index()][dst.index()] = false;
        self.link_slow[src.index()][dst.index()] = 1.0;
    }

    /// Whether the directed `src → dst` link has been failed.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn is_link_failed(&self, src: DeviceId, dst: DeviceId) -> bool {
        self.link_down[src.index()][dst.index()]
    }

    /// Current transfer-time multiplier of the directed `src → dst` link
    /// (`1.0` when healthy).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link_degrade_factor(&self, src: DeviceId, dst: DeviceId) -> f64 {
        self.link_slow[src.index()][dst.index()]
    }

    /// All failed directed links, in `(src, dst)` id order.
    pub fn failed_links(&self) -> Vec<(DeviceId, DeviceId)> {
        let mut out = Vec::new();
        for s in self.device_ids() {
            for d in self.device_ids() {
                if self.link_down[s.index()][d.index()] {
                    out.push((s, d));
                }
            }
        }
        out
    }

    /// Transfer time for `bytes` from `src` to `dst` under the physical
    /// link model (0 when colocated), stretched by any degradation mark on
    /// the link.
    pub fn transfer_time(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        match self.link(src, dst) {
            Some(l) => l.transfer_time(bytes) * self.link_slow[src.index()][dst.index()],
            None => 0.0,
        }
    }

    /// Which server hosts device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn server_of(&self, d: DeviceId) -> u16 {
        self.server_of[d.index()]
    }

    /// The hardware class of the `src → dst` link, or `None` when the
    /// devices are colocated or unconnected.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link_class(&self, src: DeviceId, dst: DeviceId) -> Option<LinkClass> {
        let link = self.link(src, dst)?;
        Some(LinkClass::classify(
            link,
            self.server_of(src) == self.server_of(dst),
        ))
    }

    /// The preferred (health-ignoring) route a `src → dst` transfer takes,
    /// as a list of single-link hops.
    ///
    /// Intra-server transfers are one direct hop. Inter-server transfers
    /// are staged through the hosts' NICs — `src → host(src)` over PCIe,
    /// `host(src) → host(dst)` over the inter-server fabric, `host(dst) →
    /// dst` over PCIe — with the first/last stage skipped when the endpoint
    /// is itself a host, and collapsed to a direct hop when a server has no
    /// live host to stage through. Colocated devices have an empty route.
    fn preferred_route(&self, src: DeviceId, dst: DeviceId) -> Vec<(DeviceId, DeviceId)> {
        if src == dst {
            return Vec::new();
        }
        if self.server_of(src) == self.server_of(dst) {
            return vec![(src, dst)];
        }
        let mut hops = Vec::with_capacity(3);
        let mut cur = src;
        if !self.is_host(src) {
            if let Some(h) = self.host_of(self.server_of(src)) {
                hops.push((cur, h));
                cur = h;
            }
        }
        let ingress = if self.is_host(dst) {
            None
        } else {
            self.host_of(self.server_of(dst))
        };
        match ingress {
            Some(h) => {
                hops.push((cur, h));
                hops.push((h, dst));
            }
            None => hops.push((cur, dst)),
        }
        hops
    }

    /// Whether the `a → b` hop is physically wired and not failed.
    fn hop_live(&self, a: DeviceId, b: DeviceId) -> bool {
        self.live_link(a, b).is_some()
    }

    /// The physical route a `src → dst` transfer takes, avoiding failed
    /// links ([`Topology::fail_link`]), or `None` when every candidate
    /// staging crosses a dead hop (the pair is partitioned).
    ///
    /// Candidates are tried in preference order: the standard staged route
    /// ([`Topology::route`]), then — cross-server — variants that stage
    /// through only one of the two hosts, then the direct link. `Some` with
    /// an empty route means colocated (free transfer), as in `route`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn try_route(&self, src: DeviceId, dst: DeviceId) -> Option<Vec<(DeviceId, DeviceId)>> {
        if src == dst {
            return Some(Vec::new());
        }
        let preferred = self.preferred_route(src, dst);
        if preferred.iter().all(|&(a, b)| self.hop_live(a, b)) {
            return Some(preferred);
        }
        let mut candidates: Vec<Vec<(DeviceId, DeviceId)>> = Vec::new();
        if self.server_of(src) == self.server_of(dst) {
            // Direct hop is dead: stage through the server's host, if any.
            if let Some(h) = self.host_of(self.server_of(src)) {
                if h != src && h != dst {
                    candidates.push(vec![(src, h), (h, dst)]);
                }
            }
        } else {
            let egress = if self.is_host(src) {
                None
            } else {
                self.host_of(self.server_of(src))
            };
            let ingress = if self.is_host(dst) {
                None
            } else {
                self.host_of(self.server_of(dst))
            };
            // Alternate stagings: skip one host at a time, then go direct.
            if let Some(h) = ingress {
                candidates.push(vec![(src, h), (h, dst)]);
            }
            if let Some(h) = egress {
                candidates.push(vec![(src, h), (h, dst)]);
            }
            candidates.push(vec![(src, dst)]);
        }
        candidates
            .into_iter()
            .find(|c| *c != preferred && c.iter().all(|&(a, b)| self.hop_live(a, b)))
    }

    /// The physical route a `src → dst` transfer takes, as a list of
    /// single-link hops, avoiding failed links when an alternate staging
    /// survives ([`Topology::try_route`]).
    ///
    /// When the pair is fully partitioned this falls back to the
    /// health-ignoring route so planners can still price a (pessimistic)
    /// path; callers that must distinguish unreachability use `try_route`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn route(&self, src: DeviceId, dst: DeviceId) -> Vec<(DeviceId, DeviceId)> {
        self.try_route(src, dst)
            .unwrap_or_else(|| self.preferred_route(src, dst))
    }

    /// Transfer time for `bytes` from `src` to `dst` summed along the
    /// physical route ([`Topology::route`]) — the pessimistic serial bound
    /// planners fall back to for unprofiled pairs (hops may in fact
    /// pipeline, so real transfers can only be faster).
    pub fn transfer_time_routed(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        self.route(src, dst)
            .iter()
            .map(|&(a, b)| self.transfer_time(a, b, bytes))
            .sum()
    }

    /// Stable identifier of the physical channel a `src → dst` transfer
    /// occupies. GPU pairs within a server have dedicated NVLinks (per-pair
    /// channels); all traffic leaving or entering a host shares that host's
    /// PCIe root complex; all traffic between two servers shares the NIC
    /// pair. Transfers with the same key serialize.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn channel_key(&self, src: DeviceId, dst: DeviceId) -> (u32, u32) {
        if self.server_of(src) != self.server_of(dst) {
            (
                0x1_0000 + self.server_of(src) as u32,
                0x1_0000 + self.server_of(dst) as u32,
            )
        } else if self.is_host(src) {
            (0x2_0000 + src.0 as u32, 0)
        } else if self.is_host(dst) {
            (0x3_0000 + dst.0 as u32, 0)
        } else {
            (src.0 as u32, dst.0 as u32)
        }
    }

    /// The slowest (maximum-time) link for a given byte count — used for the
    /// pessimistic `c̄_{i,j}` in the rank computation (Sec. 5.1).
    pub fn max_transfer_time(&self, bytes: u64) -> f64 {
        let mut worst: f64 = 0.0;
        for s in self.device_ids() {
            for d in self.device_ids() {
                if let Some(l) = self.link(s, d) {
                    worst = worst.max(l.transfer_time(bytes));
                }
            }
        }
        worst
    }

    /// A sub-topology restricted to the first `n` devices (keeps links).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > self.device_count()`.
    /// Structural self-check over every id-indexed table: the link,
    /// link-health and link-degrade matrices must be square and sized to
    /// the device list, diagonals must be empty (no self-links) and
    /// healthy, degrade factors must be positive and finite, and each
    /// server may host at most one CPU host (a second host would be
    /// silently shadowed by [`Topology::host_of`]). These are exactly the
    /// invariants the hot-add path ([`Topology::add_device`] /
    /// [`Topology::add_server`]), the restore path and [`Topology::prefix`]
    /// slicing must preserve; debug builds assert it after every growing
    /// mutation, and the fuzzer calls it as an oracle on every scenario's
    /// final topology.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.devices.len();
        if n == 0 {
            return Err("topology has no devices".into());
        }
        if self.server_of.len() != n {
            return Err(format!(
                "server_of len {} != {n} devices",
                self.server_of.len()
            ));
        }
        if self.failed.len() != n {
            return Err(format!("failed len {} != {n} devices", self.failed.len()));
        }
        for (label, rows) in [
            ("links", self.links.len()),
            ("link_down", self.link_down.len()),
            ("link_slow", self.link_slow.len()),
        ] {
            if rows != n {
                return Err(format!("{label} has {rows} rows for {n} devices"));
            }
        }
        for i in 0..n {
            if self.links[i].len() != n {
                return Err(format!("links row {i} has {} cols", self.links[i].len()));
            }
            if self.link_down[i].len() != n {
                return Err(format!(
                    "link_down row {i} has {} cols",
                    self.link_down[i].len()
                ));
            }
            if self.link_slow[i].len() != n {
                return Err(format!(
                    "link_slow row {i} has {} cols",
                    self.link_slow[i].len()
                ));
            }
            if self.links[i][i].is_some() {
                return Err(format!("device {i} has a self-link"));
            }
            if self.link_down[i][i] {
                return Err(format!("device {i} marks its own diagonal link down"));
            }
            if self.link_slow[i][i] != 1.0 {
                return Err(format!(
                    "device {i} degrades its own diagonal link ({})",
                    self.link_slow[i][i]
                ));
            }
            for (j, &f) in self.link_slow[i].iter().enumerate() {
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!("link {i}->{j} has degrade factor {f}"));
                }
            }
        }
        let mut host_of_server = std::collections::BTreeMap::new();
        for (i, dev) in self.devices.iter().enumerate() {
            if dev.is_host {
                if let Some(prev) = host_of_server.insert(self.server_of[i], i) {
                    return Err(format!(
                        "server {} has two hosts (devices {prev} and {i})",
                        self.server_of[i]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Returns the sub-topology spanning the first `n` devices, with all
    /// link state (down/degraded) carried over.
    pub fn prefix(&self, n: usize) -> Topology {
        assert!(n > 0 && n <= self.device_count());
        let t = Topology {
            devices: self.devices[..n].to_vec(),
            links: self.links[..n]
                .iter()
                .map(|row| row[..n].to_vec())
                .collect(),
            server_of: self.server_of[..n].to_vec(),
            failed: self.failed[..n].to_vec(),
            link_down: self.link_down[..n]
                .iter()
                .map(|row| row[..n].to_vec())
                .collect(),
            link_slow: self.link_slow[..n]
                .iter()
                .map(|row| row[..n].to_vec())
                .collect(),
            intra: self.intra,
            inter: self.inter,
            host_pcie: self.host_pcie,
        };
        debug_assert_eq!(t.validate(), Ok(()), "prefix broke topology invariants");
        t
    }
}

/// Incremental constructor for heterogeneous [`Topology`]s.
///
/// # Examples
///
/// ```
/// use fastt_cluster::{Device, Link, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// b.add_device(Device::v100("a"), 0);
/// b.add_device(Device::v100("b"), 0);
/// b.connect_intra_server(Link::pcie());
/// let topo = b.build();
/// assert_eq!(topo.device_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    devices: Vec<Device>,
    servers: Vec<u16>,
    links: Vec<(DeviceId, DeviceId, Link)>,
    intra: Option<Link>,
    inter: Option<Link>,
    host_pcie: Option<Link>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a device hosted on `server`, returning its id.
    pub fn add_device(&mut self, device: Device, server: u16) -> DeviceId {
        let id = DeviceId(self.devices.len() as u16);
        self.devices.push(device);
        self.servers.push(server);
        id
    }

    /// Uses `link` between every pair of devices on the same server.
    pub fn connect_intra_server(&mut self, link: Link) -> &mut Self {
        self.intra = Some(link);
        self
    }

    /// Uses `link` between every pair of devices on different servers.
    pub fn connect_inter_server(&mut self, link: Link) -> &mut Self {
        self.inter = Some(link);
        self
    }

    /// Uses `link` between a host and the GPUs on its server (overrides the
    /// intra-server link for host pairs).
    pub fn connect_host_pcie(&mut self, link: Link) -> &mut Self {
        self.host_pcie = Some(link);
        self
    }

    /// Overrides the link for one specific ordered pair.
    ///
    /// # Panics
    ///
    /// [`TopologyBuilder::build`] panics if `src == dst`: a self-link
    /// would be a silent no-op for placement (colocated transfers are
    /// free) yet would corrupt the topology's no-self-link invariant.
    pub fn connect(&mut self, src: DeviceId, dst: DeviceId, link: Link) -> &mut Self {
        self.links.push((src, dst, link));
        self
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if no devices were added.
    pub fn build(&self) -> Topology {
        assert!(
            !self.devices.is_empty(),
            "topology needs at least one device"
        );
        let n = self.devices.len();
        let mut links = vec![vec![None; n]; n];
        for (s, row) in links.iter_mut().enumerate() {
            for (d, slot) in row.iter_mut().enumerate() {
                if s == d {
                    continue;
                }
                let same = self.servers[s] == self.servers[d];
                let host_pair = self.devices[s].is_host || self.devices[d].is_host;
                *slot = if !same {
                    self.inter
                } else if host_pair {
                    self.host_pcie.or(self.intra)
                } else {
                    self.intra
                };
            }
        }
        for &(s, d, l) in &self.links {
            // Surfaced by Topology::validate: an unguarded s == d override
            // used to wire a silent self-link into the matrix.
            assert!(s != d, "cannot override the self-link of device {s}");
            links[s.index()][d.index()] = Some(l);
        }
        let t = Topology {
            devices: self.devices.clone(),
            links,
            server_of: self.servers.clone(),
            failed: vec![false; n],
            link_down: vec![vec![false; n]; n],
            link_slow: vec![vec![1.0; n]; n],
            intra: self.intra,
            inter: self.inter,
            host_pcie: self.host_pcie,
        };
        debug_assert_eq!(t.validate(), Ok(()), "builder broke topology invariants");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_gpus_fully_connected_by_nvlink() {
        let t = Topology::single_server(4);
        assert_eq!(t.gpu_count(), 4);
        assert_eq!(t.device_count(), 5); // + 1 host
        for a in t.gpu_ids() {
            for b in t.gpu_ids() {
                if a == b {
                    assert!(t.link(a, b).is_none());
                } else {
                    let l = t.link(a, b).expect("link");
                    assert_eq!(l.bandwidth, Link::nvlink().bandwidth);
                }
            }
        }
    }

    #[test]
    fn host_connected_by_pcie() {
        let t = Topology::single_server(2);
        let host = t.host_of(0).expect("host");
        assert!(t.is_host(host));
        for g in t.gpu_ids() {
            assert_eq!(t.link(host, g).unwrap().bandwidth, Link::pcie().bandwidth);
            assert_eq!(t.link(g, host).unwrap().bandwidth, Link::pcie().bandwidth);
        }
    }

    #[test]
    fn multi_server_uses_slow_links_across() {
        let t = Topology::multi_server(2, 4);
        assert_eq!(t.gpu_count(), 8);
        assert_eq!(t.device_count(), 10); // + 2 hosts
        assert_eq!(t.server_of(DeviceId(0)), 0);
        assert_eq!(t.server_of(DeviceId(4)), 1);
        assert_eq!(t.host_of(1), Some(DeviceId(9)));
        let intra = t.link(DeviceId(0), DeviceId(3)).unwrap();
        let inter = t.link(DeviceId(3), DeviceId(4)).unwrap();
        assert!(inter.bandwidth < intra.bandwidth);
        assert!(inter.latency > intra.latency);
    }

    #[test]
    fn transfer_time_linear_in_bytes() {
        let l = Link::nvlink();
        let t1 = l.transfer_time(1_000_000);
        let t2 = l.transfer_time(2_000_000);
        assert!((t2 - t1 - 1_000_000.0 / l.bandwidth).abs() < 1e-12);
    }

    #[test]
    fn colocated_transfer_is_free() {
        let t = Topology::single_server(2);
        assert_eq!(t.transfer_time(DeviceId(0), DeviceId(0), 1 << 30), 0.0);
        assert!(t.transfer_time(DeviceId(0), DeviceId(1), 1 << 30) > 0.0);
    }

    #[test]
    fn max_transfer_time_picks_worst_link() {
        // with two servers the slowest path for a big tensor is the NIC
        let t = Topology::multi_server(2, 2);
        let bytes = 100 << 20;
        let worst = t.max_transfer_time(bytes);
        assert!((worst - Link::rdma_100g().transfer_time(bytes)).abs() < 1e-12);
        // on one server it is the host PCIe link
        let s = Topology::single_server(2);
        let worst1 = s.max_transfer_time(bytes);
        assert!((worst1 - Link::pcie().transfer_time(bytes)).abs() < 1e-12);
    }

    #[test]
    fn prefix_restricts_devices() {
        let t = Topology::single_server(8);
        let p = t.prefix(3);
        assert_eq!(p.device_count(), 3);
        assert!(p.link(DeviceId(0), DeviceId(2)).is_some());
    }

    #[test]
    fn failed_devices_keep_ids_but_leave_gpu_set() {
        let mut t = Topology::single_server(4);
        assert_eq!(t.gpu_count(), 4);
        t.fail_device(DeviceId(1));
        assert!(t.is_failed(DeviceId(1)));
        assert_eq!(t.failed_devices(), vec![DeviceId(1)]);
        // the survivor set skips the blacklisted id, ids stay stable
        assert_eq!(t.gpu_count(), 3);
        let ids: Vec<DeviceId> = t.gpu_ids().collect();
        assert_eq!(ids, vec![DeviceId(0), DeviceId(2), DeviceId(3)]);
        // total device count (vector sizing) is unchanged
        assert_eq!(t.device_count(), 5);
        // the device itself is still addressable
        assert!(!t.device(DeviceId(1)).is_host);
    }

    #[test]
    fn link_classes_of_the_stock_fabrics() {
        let t = Topology::multi_server(2, 2);
        let host0 = t.host_of(0).unwrap();
        // GPU↔GPU same server: NVLink; host↔GPU: PCIe; across servers: RDMA
        assert_eq!(
            t.link_class(DeviceId(0), DeviceId(1)),
            Some(LinkClass::NvLink)
        );
        assert_eq!(t.link_class(host0, DeviceId(0)), Some(LinkClass::Pcie));
        assert_eq!(
            t.link_class(DeviceId(0), DeviceId(2)),
            Some(LinkClass::Rdma)
        );
        assert_eq!(t.link_class(DeviceId(0), DeviceId(0)), None);
        assert_eq!(
            LinkClass::classify(&Link::ethernet_25g(), false),
            LinkClass::Eth
        );
    }

    #[test]
    fn intra_server_route_is_one_direct_hop() {
        let t = Topology::single_server(4);
        assert!(t.route(DeviceId(0), DeviceId(0)).is_empty());
        assert_eq!(
            t.route(DeviceId(0), DeviceId(3)),
            vec![(DeviceId(0), DeviceId(3))]
        );
        assert_eq!(
            t.transfer_time_routed(DeviceId(0), DeviceId(0), 1 << 20),
            0.0
        );
    }

    #[test]
    fn inter_server_route_stages_through_both_hosts() {
        let t = Topology::multi_server(2, 2);
        let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
        // GPU → GPU across servers: PCIe up, NIC across, PCIe down
        assert_eq!(
            t.route(DeviceId(0), DeviceId(2)),
            vec![(DeviceId(0), h0), (h0, h1), (h1, DeviceId(2))]
        );
        // host endpoints skip their own staging hop
        assert_eq!(t.route(h0, DeviceId(2)), vec![(h0, h1), (h1, DeviceId(2))]);
        assert_eq!(t.route(DeviceId(0), h1), vec![(DeviceId(0), h0), (h0, h1)]);
        assert_eq!(t.route(h0, h1), vec![(h0, h1)]);
        // routed time = sum of the hop times, dominated by the NIC
        let bytes = 64 << 20;
        let want = Link::pcie().transfer_time(bytes) * 2.0 + Link::rdma_100g().transfer_time(bytes);
        assert!((t.transfer_time_routed(DeviceId(0), DeviceId(2), bytes) - want).abs() < 1e-12);
        assert!(
            t.transfer_time_routed(DeviceId(0), DeviceId(2), bytes)
                > t.transfer_time(DeviceId(0), DeviceId(2), bytes)
        );
    }

    #[test]
    fn route_collapses_to_direct_when_hosts_are_dead() {
        let mut t = Topology::multi_server(2, 2);
        let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
        t.fail_device(h0);
        // source server lost its host: direct NIC hop from the GPU side
        assert_eq!(
            t.route(DeviceId(0), DeviceId(2)),
            vec![(DeviceId(0), h1), (h1, DeviceId(2))]
        );
        t.fail_device(h1);
        assert_eq!(
            t.route(DeviceId(0), DeviceId(2)),
            vec![(DeviceId(0), DeviceId(2))]
        );
    }

    #[test]
    fn channel_keys_distinguish_nvlink_pairs_hosts_and_nics() {
        let t = Topology::multi_server(2, 2);
        let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
        // GPU pairs on a server: dedicated per-pair channels, direction-distinct
        assert_eq!(t.channel_key(DeviceId(0), DeviceId(1)), (0, 1));
        assert_ne!(
            t.channel_key(DeviceId(0), DeviceId(1)),
            t.channel_key(DeviceId(1), DeviceId(0))
        );
        // all traffic leaving a host shares one key; entering it another
        assert_eq!(
            t.channel_key(h0, DeviceId(0)),
            t.channel_key(h0, DeviceId(1))
        );
        assert_eq!(
            t.channel_key(DeviceId(0), h0),
            t.channel_key(DeviceId(1), h0)
        );
        assert_ne!(
            t.channel_key(h0, DeviceId(0)),
            t.channel_key(DeviceId(0), h0)
        );
        // every transfer between two servers shares the NIC-pair key,
        // regardless of which endpoints are involved
        let nic = t.channel_key(DeviceId(0), DeviceId(2));
        assert_eq!(t.channel_key(DeviceId(1), DeviceId(3)), nic);
        assert_eq!(t.channel_key(h0, h1), nic);
        assert_ne!(t.channel_key(DeviceId(2), DeviceId(0)), nic);
        // NIC keys never collide with host or per-pair keys
        assert!(nic.0 >= 0x1_0000);
    }

    #[test]
    fn channel_keys_ignore_failure_masks() {
        // failing a device must not re-key live channels: id-indexed
        // reservations taken before a crash stay valid after it
        let mut t = Topology::multi_server(2, 2);
        let before = t.channel_key(DeviceId(1), DeviceId(3));
        t.fail_device(DeviceId(0));
        assert_eq!(t.channel_key(DeviceId(1), DeviceId(3)), before);
        assert_eq!(t.channel_key(DeviceId(1), DeviceId(2)), before);
    }

    #[test]
    fn prefix_preserves_server_identity_and_inter_server_keys() {
        // 2 servers × 2 GPUs: ids 0,1 on server 0, ids 2,3 on server 1,
        // hosts 4,5. prefix(4) drops the hosts but must keep the server
        // split — and with it the inter-server channel keys and routes.
        let t = Topology::multi_server(2, 2);
        let p = t.prefix(4);
        assert_eq!(p.server_of(DeviceId(1)), 0);
        assert_eq!(p.server_of(DeviceId(2)), 1);
        assert_eq!(
            p.channel_key(DeviceId(1), DeviceId(2)),
            t.channel_key(DeviceId(1), DeviceId(2))
        );
        // no hosts survive the cut: inter-server routes collapse to direct
        assert_eq!(p.host_of(0), None);
        assert_eq!(
            p.route(DeviceId(0), DeviceId(2)),
            vec![(DeviceId(0), DeviceId(2))]
        );
        // failure masks survive the cut too
        let mut f = t.clone();
        f.fail_device(DeviceId(1));
        assert!(f.prefix(4).is_failed(DeviceId(1)));
    }

    #[test]
    fn failed_link_reroutes_through_alternate_staging() {
        let mut t = Topology::multi_server(2, 2);
        let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
        let (g0, g2) = (DeviceId(0), DeviceId(2));
        let staged = vec![(g0, h0), (h0, h1), (h1, g2)];
        assert_eq!(t.route(g0, g2), staged);
        // NIC-pair hop dies: skip the egress host, enter through the
        // destination host directly
        t.fail_link(h0, h1);
        assert_eq!(t.try_route(g0, g2), Some(vec![(g0, h1), (h1, g2)]));
        // destination ingress dies too: stage through the egress host only
        t.fail_link(h1, g2);
        assert_eq!(t.try_route(g0, g2), Some(vec![(g0, h0), (h0, g2)]));
        // last resort: the raw direct inter-server link
        t.fail_link(h0, g2);
        assert_eq!(t.try_route(g0, g2), Some(vec![(g0, g2)]));
        // full partition: unreachable, but route() still prices the
        // preferred staging for planners
        t.fail_link(g0, g2);
        assert_eq!(t.try_route(g0, g2), None);
        assert_eq!(t.route(g0, g2), staged);
        // restore brings the preferred staging back
        t.restore_link(h0, h1);
        t.restore_link(h1, g2);
        assert_eq!(t.try_route(g0, g2), Some(staged));
    }

    #[test]
    fn intra_server_link_failure_stages_through_host() {
        let mut t = Topology::single_server(2);
        let h = t.host_of(0).unwrap();
        let (a, b) = (DeviceId(0), DeviceId(1));
        t.fail_link(a, b);
        assert!(t.live_link(a, b).is_none());
        assert!(t.link(a, b).is_some(), "physical wiring stays addressable");
        assert_eq!(t.try_route(a, b), Some(vec![(a, h), (h, b)]));
        // reverse direction untouched (directional mask)
        assert_eq!(t.try_route(b, a), Some(vec![(b, a)]));
        assert_eq!(t.failed_links(), vec![(a, b)]);
    }

    #[test]
    fn degraded_link_stretches_transfer_time() {
        let mut t = Topology::single_server(2);
        let (a, b) = (DeviceId(0), DeviceId(1));
        let base = t.transfer_time(a, b, 1 << 20);
        t.degrade_link(a, b, 4.0);
        assert!((t.transfer_time(a, b, 1 << 20) - 4.0 * base).abs() < 1e-12);
        assert!((t.link_degrade_factor(a, b) - 4.0).abs() < 1e-12);
        // reverse direction and routing are unaffected
        assert!((t.transfer_time(b, a, 1 << 20) - base).abs() < 1e-12);
        assert_eq!(t.try_route(a, b), Some(vec![(a, b)]));
        t.restore_link(a, b);
        assert!((t.transfer_time(a, b, 1 << 20) - base).abs() < 1e-12);
    }

    #[test]
    fn prefix_preserves_link_health_masks() {
        let mut t = Topology::multi_server(2, 2);
        t.fail_link(DeviceId(0), DeviceId(1));
        t.degrade_link(DeviceId(1), DeviceId(0), 2.0);
        let p = t.prefix(4);
        assert!(p.is_link_failed(DeviceId(0), DeviceId(1)));
        assert!((p.link_degrade_factor(DeviceId(1), DeviceId(0)) - 2.0).abs() < 1e-12);
        assert!(!p.is_link_failed(DeviceId(1), DeviceId(0)));
    }

    #[test]
    fn restore_device_reverses_blacklist_under_the_same_id() {
        let mut t = Topology::single_server(4);
        t.fail_device(DeviceId(2));
        assert_eq!(t.gpu_count(), 3);
        t.restore_device(DeviceId(2));
        assert_eq!(t.gpu_count(), 4);
        assert!(!t.is_failed(DeviceId(2)));
        let ids: Vec<DeviceId> = t.gpu_ids().collect();
        assert_eq!(
            ids,
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)],
            "restored devices reappear under their original id"
        );
        // restoring a healthy device is a no-op
        t.restore_device(DeviceId(0));
        assert_eq!(t.gpu_count(), 4);
    }

    #[test]
    fn add_device_wires_default_links_and_keeps_ids_stable() {
        let mut t = Topology::multi_server(2, 2); // gpus 0-3, hosts 4-5
        let before: Vec<DeviceId> = t.gpu_ids().collect();
        let nic = t.channel_key(DeviceId(0), DeviceId(2));
        let d = t.add_device(Device::v100("srv1/gpu2"), 1);
        assert_eq!(d, DeviceId(6), "new device gets the next id");
        assert_eq!(t.server_of(d), 1);
        assert_eq!(t.gpu_count(), 5);
        // existing ids and channel keys are untouched
        assert!(before.iter().all(|&g| !t.is_failed(g)));
        assert_eq!(t.channel_key(DeviceId(0), DeviceId(2)), nic);
        // same-server GPU peer: NVLink; to its host: PCIe; across: RDMA
        assert_eq!(t.link_class(d, DeviceId(2)), Some(LinkClass::NvLink));
        assert_eq!(
            t.link_class(d, t.host_of(1).unwrap()),
            Some(LinkClass::Pcie)
        );
        assert_eq!(t.link_class(d, DeviceId(0)), Some(LinkClass::Rdma));
        assert_eq!(t.link(d, d), None, "no self-link");
        // routing picks the new device up immediately, staged via hosts
        let (h1, h0) = (t.host_of(1).unwrap(), t.host_of(0).unwrap());
        assert_eq!(
            t.route(d, DeviceId(0)),
            vec![(d, h1), (h1, h0), (h0, DeviceId(0))]
        );
    }

    #[test]
    fn add_server_appends_a_fresh_server_with_host() {
        let mut t = Topology::multi_server(2, 2);
        let added = t.add_server(2);
        assert_eq!(added, vec![DeviceId(6), DeviceId(7)]);
        assert_eq!(t.server_of(DeviceId(6)), 2, "fresh server id");
        let h2 = t.host_of(2).expect("hot-added server has a host");
        assert!(t.is_host(h2));
        assert_eq!(t.gpu_count(), 6);
        assert_eq!(t.device_count(), 9);
        // new GPUs are fully wired: NVLink among themselves, PCIe to their
        // host, inter-server fabric to the old servers
        assert_eq!(
            t.link_class(DeviceId(6), DeviceId(7)),
            Some(LinkClass::NvLink)
        );
        assert_eq!(t.link_class(DeviceId(6), h2), Some(LinkClass::Pcie));
        assert_eq!(
            t.link_class(DeviceId(6), DeviceId(0)),
            Some(LinkClass::Rdma)
        );
        // growth survives prefix(): the defaults are part of the topology
        let mut p = t.prefix(9);
        assert_eq!(p.add_server(1).len(), 1);
    }

    #[test]
    #[should_panic]
    fn empty_topology_panics() {
        TopologyBuilder::new().build();
    }

    #[test]
    fn builder_specific_link_override() {
        let mut b = TopologyBuilder::new();
        let a = b.add_device(Device::v100("a"), 0);
        let c = b.add_device(Device::v100("b"), 0);
        b.connect_intra_server(Link::nvlink());
        b.connect(a, c, Link::pcie());
        let t = b.build();
        assert_eq!(t.link(a, c).unwrap().bandwidth, Link::pcie().bandwidth);
        // reverse direction keeps the default
        assert_eq!(t.link(c, a).unwrap().bandwidth, Link::nvlink().bandwidth);
    }

    #[test]
    fn validate_holds_through_growth_restore_and_slicing() {
        let mut t = Topology::multi_server(2, 2);
        assert_eq!(t.validate(), Ok(()));
        let d = t.add_device(Device::v100("hot"), 1);
        t.add_server(2);
        t.fail_device(d);
        t.restore_device(d);
        t.fail_link(DeviceId(0), DeviceId(1));
        t.degrade_link(DeviceId(1), DeviceId(0), 3.5);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.prefix(4).validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn builder_rejects_self_link_override() {
        let mut b = TopologyBuilder::new();
        let a = b.add_device(Device::v100("a"), 0);
        b.add_device(Device::v100("b"), 0);
        b.connect(a, a, Link::pcie());
        b.build();
    }

    #[test]
    fn validate_reports_double_host_and_bad_matrices() {
        let good = Topology::single_server(2);
        let mut two_hosts = good.clone();
        two_hosts.devices.push(Device::host("h2"));
        two_hosts.server_of.push(0);
        two_hosts.failed.push(false);
        assert!(two_hosts.validate().unwrap_err().contains("rows"));
        let mut ragged = good.clone();
        ragged.link_down[0].push(true);
        assert!(ragged.validate().unwrap_err().contains("cols"));
        let mut selfish = good.clone();
        selfish.links[1][1] = Some(Link::pcie());
        assert!(selfish.validate().unwrap_err().contains("self-link"));
        let mut twin = good;
        twin.devices[0] = Device::host("h2"); // second host beside the real one
        assert!(twin.validate().unwrap_err().contains("two hosts"));
    }
}
