//! A small metrics registry: counters, gauges, and fixed-bucket histograms,
//! keyed by name.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram bucket upper bounds (seconds): exponential from 1 µs
/// to 100 s — wide enough for op durations and strategy-calculation spans.
pub const DEFAULT_BUCKETS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// Fine-grained bucket bounds (seconds) starting at 10 ns, for latencies
/// that land sub-microsecond — small-graph planner placements collapse
/// into the first [`DEFAULT_BUCKETS`] bucket otherwise. Used for
/// `planner.latency` and the other profiling histograms.
pub const FINE_BUCKETS: [f64; 11] = [
    1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A fixed-bucket histogram snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds, ascending; an implicit +∞ bucket follows.
    pub bounds: Vec<f64>,
    /// Observation count per bound, plus the final overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`f64::INFINITY` for the overflow bucket, 0 when empty).
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last set value.
    Gauge(f64),
    /// Distribution snapshot.
    Histogram(Histogram),
}

/// Thread-safe registry of named metrics.
///
/// Updates are typed by method; updating an existing name with a different
/// type replaces the metric (telemetry must never panic the workload).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (creating it at 0).
    pub fn add(&self, name: &str, n: u64) {
        let mut m = self.inner.lock().expect("registry lock");
        match m.get_mut(name) {
            Some(Metric::Counter(c)) => *c += n,
            _ => {
                m.insert(name.to_string(), Metric::Counter(n));
            }
        }
    }

    /// Increments the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.inner
            .lock()
            .expect("registry lock")
            .insert(name.to_string(), Metric::Gauge(v));
    }

    /// Records `v` into the histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, v: f64) {
        self.observe_with(name, v, &DEFAULT_BUCKETS);
    }

    /// Pre-registers the histogram `name` with caller-supplied bucket
    /// bounds, so later [`Registry::observe`] calls land in the declared
    /// buckets instead of [`DEFAULT_BUCKETS`]. An existing histogram keeps
    /// its bounds and counts.
    pub fn declare_histogram(&self, name: &str, bounds: &[f64]) {
        let mut m = self.inner.lock().expect("registry lock");
        if !matches!(m.get(name), Some(Metric::Histogram(_))) {
            m.insert(name.to_string(), Metric::Histogram(Histogram::new(bounds)));
        }
    }

    /// Records `v` into the histogram `name`, creating it with the given
    /// bucket bounds if absent (bounds of an existing histogram are kept).
    pub fn observe_with(&self, name: &str, v: f64, bounds: &[f64]) {
        let mut m = self.inner.lock().expect("registry lock");
        match m.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(v),
            _ => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                m.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.inner
            .lock()
            .expect("registry lock")
            .get(name)
            .map(|m| match m {
                Metric::Counter(c) => MetricValue::Counter(*c),
                Metric::Gauge(g) => MetricValue::Gauge(*g),
                Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
            })
    }

    /// Reads every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
                };
                (k.clone(), v)
            })
            .collect()
    }

    /// The whole registry as one JSON object (for dumps and the report
    /// binary).
    pub fn to_json(&self) -> Value {
        Value::obj(self.snapshot().into_iter().map(|(k, v)| {
            let rendered = match v {
                MetricValue::Counter(c) => Value::obj([("counter", Value::from(c))]),
                MetricValue::Gauge(g) => Value::obj([("gauge", Value::from(g))]),
                MetricValue::Histogram(h) => Value::obj([
                    ("count", Value::from(h.count)),
                    ("sum", Value::from(h.sum)),
                    ("mean", Value::from(h.mean())),
                    ("bounds", Value::arr(h.bounds.clone())),
                    ("counts", Value::arr(h.counts.clone())),
                ]),
            };
            (k, rendered)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.inc("a");
        r.add("a", 4);
        r.inc("b");
        assert_eq!(r.get("a"), Some(MetricValue::Counter(5)));
        assert_eq!(r.get("b"), Some(MetricValue::Counter(1)));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = Registry::new();
        r.set_gauge("mape", 0.5);
        r.set_gauge("mape", 0.25);
        assert_eq!(r.get("mape"), Some(MetricValue::Gauge(0.25)));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::new();
        for v in [5e-7, 5e-4, 5e-4, 2.0, 1e9] {
            r.observe("lat", v);
        }
        let Some(MetricValue::Histogram(h)) = r.get("lat") else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 5);
        assert_eq!(h.counts[0], 1); // ≤1e-6
        assert_eq!(h.counts[3], 2); // ≤1e-3
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert!(h.mean() > 0.0);
        assert_eq!(h.quantile_bound(0.5), 1e-3);
        assert_eq!(h.quantile_bound(1.0), f64::INFINITY);
    }

    #[test]
    fn declared_bounds_survive_plain_observe() {
        let r = Registry::new();
        r.declare_histogram("lat", &FINE_BUCKETS);
        r.observe("lat", 5e-8); // sub-µs: first DEFAULT bucket, second FINE bucket
        let Some(MetricValue::Histogram(h)) = r.get("lat") else {
            panic!("expected histogram");
        };
        assert_eq!(h.bounds, FINE_BUCKETS.to_vec());
        assert_eq!(
            h.counts[1], 1,
            "lands in the ≤1e-7 bucket, not a 1 µs floor"
        );
        // redeclaring keeps bounds and counts
        r.declare_histogram("lat", &DEFAULT_BUCKETS);
        let Some(MetricValue::Histogram(h)) = r.get("lat") else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 1);
        assert_eq!(h.bounds.len(), FINE_BUCKETS.len());
    }

    #[test]
    fn type_conflicts_replace_without_panicking() {
        let r = Registry::new();
        r.inc("x");
        r.set_gauge("x", 1.5);
        assert_eq!(r.get("x"), Some(MetricValue::Gauge(1.5)));
    }

    #[test]
    fn snapshot_sorted_and_json_renders() {
        let r = Registry::new();
        r.inc("b.count");
        r.set_gauge("a.gauge", 2.0);
        r.observe("c.hist", 0.01);
        let snap = r.snapshot();
        assert_eq!(snap[0].0, "a.gauge");
        assert_eq!(snap[2].0, "c.hist");
        let json = r.to_json().to_string();
        let v = Value::parse(&json).unwrap();
        assert_eq!(v["b.count"]["counter"].as_u64(), Some(1));
        assert_eq!(v["c.hist"]["count"].as_u64(), Some(1));
    }
}
