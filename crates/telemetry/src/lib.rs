//! # fastt-telemetry
//!
//! Dependency-free observability substrate for the FastT reproduction:
//! a thread-safe structured-event bus with pluggable sinks, a metrics
//! registry (counters / gauges / fixed-bucket histograms), span timing
//! helpers, and the minimal JSON machinery that backs them.
//!
//! The paper's workflow is driven by *inspectable* white-box decisions —
//! which device DPOS considered for an op, why a strategy was activated or
//! rolled back, how far the cost models drifted. This crate is how those
//! decisions become data: the session, the placement algorithms, the
//! simulator, and the cost models all emit [`Event`]s through a shared
//! [`Collector`] when one is attached, and stay zero-overhead when none is.
//!
//! # Examples
//!
//! ```
//! use fastt_telemetry::{jobj, Collector, MemorySink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new(1024));
//! let col = Collector::new().with_sink(sink.clone());
//! col.emit("demo.start", jobj! { "answer" => 42u64 });
//! col.metrics().inc("demo.events");
//!
//! let events = sink.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].kind, "demo.start");
//! assert_eq!(events[0].field("answer").as_u64(), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod event;
mod metrics;
mod profile;
mod sink;
mod slo;

pub use event::Event;
pub use json::Value;
pub use metrics::{Histogram, MetricValue, Registry, DEFAULT_BUCKETS, FINE_BUCKETS};
pub use profile::{fmt_secs, PhaseGuard, ProfileEntry, Profiler, PATH_SEPARATOR};
pub use sink::{parse_jsonl, JsonlSink, MemorySink, NullSink, Sink};
pub use slo::{evaluate_slos, Slo, SloGrade, SloVerdict};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The shared half of a [`Collector`]: sequence counter, clock origin,
/// sinks, metrics, and profiler. Labeled views created with
/// [`Collector::labeled`] all point at one `Core`, so a fleet of per-job
/// collectors still produces a single totally-ordered event stream and a
/// single metrics registry.
struct Core {
    start: Instant,
    seq: AtomicU64,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    metrics: Registry,
    profiler: Profiler,
}

/// The event bus: stamps emitted events with a sequence number and a
/// relative timestamp, fans them out to every attached sink, and hosts the
/// process-wide [`Registry`] of metrics.
///
/// A `Collector` is usually shared as `Arc<Collector>`; all methods take
/// `&self` and are thread-safe. [`Collector::labeled`] derives a view that
/// shares the same sequence/sinks/metrics but stamps extra fields (e.g. a
/// job name) onto every event it emits.
pub struct Collector {
    core: Arc<Core>,
    labels: Vec<(String, Value)>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("events", &self.core.seq.load(Ordering::Relaxed))
            .field("sinks", &self.core.sinks.lock().unwrap().len())
            .field("labels", &self.labels.len())
            .finish()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector with no sinks (events are counted but go nowhere; the
    /// metrics registry still accumulates).
    pub fn new() -> Self {
        Collector {
            core: Arc::new(Core {
                start: Instant::now(),
                seq: AtomicU64::new(0),
                sinks: Mutex::new(Vec::new()),
                metrics: Registry::new(),
                profiler: Profiler::new(),
            }),
            labels: Vec::new(),
        }
    }

    /// Builder-style sink attachment. The sink is added to the shared core,
    /// so labeled views derived before or after this call all see it.
    pub fn with_sink<S: Sink + 'static>(self, sink: S) -> Self {
        self.core.sinks.lock().unwrap().push(Box::new(sink));
        self
    }

    /// A view onto the same event bus that stamps `key = value` onto every
    /// event it emits (after the event's own fields; an existing field with
    /// the same name wins). Sequence numbers, sinks, metrics, and the
    /// profiler are shared with the parent, so multi-job runs interleave
    /// into one totally-ordered stream. Labels accumulate across nested
    /// calls.
    pub fn labeled<V: Into<Value>>(&self, key: &str, value: V) -> Collector {
        let mut labels = self.labels.clone();
        labels.push((key.to_string(), value.into()));
        Collector {
            core: self.core.clone(),
            labels,
        }
    }

    /// The labels this view stamps onto emitted events (empty for the root
    /// collector).
    pub fn labels(&self) -> &[(String, Value)] {
        &self.labels
    }

    /// Emits one event to every sink. `fields` should be a
    /// [`Value::Obj`] (use [`jobj!`]). Labels from [`Collector::labeled`]
    /// are appended unless the event already carries a field of the same
    /// name.
    pub fn emit(&self, kind: &str, fields: Value) {
        let fields = if self.labels.is_empty() {
            fields
        } else if let Value::Obj(mut pairs) = fields {
            for (k, v) in &self.labels {
                if !pairs.iter().any(|(name, _)| name == k) {
                    pairs.push((k.clone(), v.clone()));
                }
            }
            Value::Obj(pairs)
        } else {
            fields
        };
        let ev = Event {
            seq: self.core.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.core.start.elapsed().as_micros() as u64,
            kind: kind.to_string(),
            fields,
        };
        for s in self.core.sinks.lock().unwrap().iter() {
            s.record(&ev);
        }
    }

    /// Total events emitted so far (across every labeled view).
    pub fn events_emitted(&self) -> u64 {
        self.core.seq.load(Ordering::Relaxed)
    }

    /// The metrics registry (shared across every labeled view).
    pub fn metrics(&self) -> &Registry {
        &self.core.metrics
    }

    /// The per-run profile tree accumulated by [`Collector::phase`].
    pub fn profiler(&self) -> &Profiler {
        &self.core.profiler
    }

    /// Opens a nested profiling phase (see [`Profiler::enter`]): the
    /// returned guard rolls the phase's wall-clock time into the profile
    /// tree on drop. Unlike [`Collector::span`] this emits no event and
    /// touches no histogram — it is meant for hot loops.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        self.core.profiler.enter(name)
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for s in self.core.sinks.lock().unwrap().iter() {
            s.flush();
        }
    }

    /// Starts a timed span: on drop, the guard emits a `<kind>` event with
    /// a `secs` field and records the duration into the `span.<kind>`
    /// histogram.
    pub fn span(&self, kind: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            col: self,
            kind,
            start: Instant::now(),
            extra: Vec::new(),
        }
    }

    /// Times `f`, recording the span like [`Collector::span`], and returns
    /// its result.
    pub fn time<R>(&self, kind: &'static str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(kind);
        f()
    }
}

/// Guard returned by [`Collector::span`]; see there.
pub struct SpanGuard<'a> {
    col: &'a Collector,
    kind: &'static str,
    start: Instant,
    extra: Vec<(String, Value)>,
}

impl SpanGuard<'_> {
    /// Attaches an extra field to the span's completion event.
    pub fn field<V: Into<Value>>(&mut self, name: &str, v: V) {
        self.extra.push((name.to_string(), v.into()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let mut fields = vec![("secs".to_string(), Value::from(secs))];
        fields.append(&mut self.extra);
        self.col.emit(self.kind, Value::Obj(fields));
        self.col
            .metrics()
            .observe(&format!("span.{}", self.kind), secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn emit_stamps_monotonic_seq_and_time() {
        let sink = Arc::new(MemorySink::new(16));
        let col = Collector::new().with_sink(sink.clone());
        col.emit("a", jobj! {});
        col.emit("b", jobj! {});
        let evs = sink.events();
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert!(evs[1].t_us >= evs[0].t_us);
        assert_eq!(col.events_emitted(), 2);
    }

    #[test]
    fn fans_out_to_multiple_sinks() {
        let a = Arc::new(MemorySink::new(4));
        let b = Arc::new(MemorySink::new(4));
        let col = Collector::new()
            .with_sink(a.clone())
            .with_sink(b.clone())
            .with_sink(NullSink);
        col.emit("x", jobj! { "v" => 1u64 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn span_emits_duration_event_and_histogram() {
        let sink = Arc::new(MemorySink::new(4));
        let col = Collector::new().with_sink(sink.clone());
        {
            let mut g = col.span("calc");
            g.field("round", 3u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "calc");
        assert!(evs[0].num("secs").unwrap() > 0.0);
        assert_eq!(evs[0].field("round").as_u64(), Some(3));
        assert!(matches!(
            col.metrics().get("span.calc"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
    }

    #[test]
    fn labeled_views_share_the_stream_and_stamp_fields() {
        let sink = Arc::new(MemorySink::new(16));
        let col = Collector::new().with_sink(sink.clone());
        let a = col.labeled("job", "alpha");
        let b = col.labeled("job", "beta");
        col.emit("root", jobj! {});
        a.emit("work", jobj! { "v" => 1u64 });
        b.emit("work", jobj! { "v" => 2u64, "job" => "override" });
        a.metrics().inc("n");
        b.metrics().inc("n");

        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        // One shared sequence across all views.
        assert_eq!((evs[0].seq, evs[1].seq, evs[2].seq), (0, 1, 2));
        assert!(evs[0].field("job").as_str().is_none());
        assert_eq!(evs[1].field("job").as_str(), Some("alpha"));
        // An explicit field of the same name wins over the label.
        assert_eq!(evs[2].field("job").as_str(), Some("override"));
        // Metrics registry is shared too.
        assert_eq!(col.metrics().get("n"), Some(MetricValue::Counter(2)));
        assert_eq!(col.events_emitted(), 3);
    }

    #[test]
    fn concurrent_emit_is_safe_and_lossless() {
        let sink = Arc::new(MemorySink::new(10_000));
        let col = Arc::new(Collector::new().with_sink(sink.clone()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let col = col.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    col.emit("t", jobj! { "thread" => t as u64, "i" => i as u64 });
                    col.metrics().inc("n");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 1000);
        assert_eq!(col.metrics().get("n"), Some(MetricValue::Counter(1000)));
        // seq numbers are unique
        let mut seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 1000);
    }
}
