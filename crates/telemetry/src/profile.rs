//! Self-timing profiling hooks: nested phase timers that roll up into a
//! per-run profile tree.
//!
//! A [`Profiler`] accumulates wall-clock spans keyed by *phase path* — the
//! chain of enclosing phase names, e.g. `plan > dpos.place > eft_scan`.
//! Instrumented code brackets a region with [`Profiler::enter`] (or the
//! [`crate::Collector::phase`] convenience) and the returned [`PhaseGuard`]
//! records the elapsed time into the tree on drop. Nesting is tracked per
//! thread, so concurrent planner threads each build their own subtree and
//! identical paths merge into one node.
//!
//! The tree is cheap to keep hot: entering a phase is one mutex lock and a
//! small child scan, and code paths that have no collector attached skip
//! profiling entirely.
//!
//! # Examples
//!
//! ```
//! use fastt_telemetry::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _plan = prof.enter("plan");
//!     let _place = prof.enter("dpos.place");
//!     let _scan = prof.enter("eft_scan");
//! }
//! let tree = prof.snapshot();
//! assert_eq!(tree[0].path, "plan");
//! assert_eq!(tree[2].path, "plan > dpos.place > eft_scan");
//! assert_eq!(tree[2].depth, 2);
//! ```

use crate::json::Value;
use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Separator used when rendering a phase path (`plan > dpos.place`).
pub const PATH_SEPARATOR: &str = " > ";

#[derive(Debug, Clone)]
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_secs: f64,
}

#[derive(Debug, Default)]
struct ProfilerInner {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Per-thread stack of currently open phases (node indices).
    stacks: HashMap<ThreadId, Vec<usize>>,
}

impl ProfilerInner {
    fn node_for(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            children: Vec::new(),
            calls: 0,
            total_secs: 0.0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

/// Thread-safe accumulator of nested phase timings; see the module docs.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Mutex<ProfilerInner>,
}

/// One node of the profile tree, flattened for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Full path from the root, joined with [`PATH_SEPARATOR`].
    pub path: String,
    /// The phase's own name (last path component).
    pub name: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Completed enter/drop cycles.
    pub calls: u64,
    /// Total wall-clock seconds across all calls (children included).
    pub total_secs: f64,
    /// Seconds spent in this phase excluding profiled children.
    pub self_secs: f64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a phase named `name` nested under the calling thread's
    /// innermost open phase (or as a root). The returned guard closes the
    /// phase and accumulates its wall-clock time on drop.
    pub fn enter(&self, name: &str) -> PhaseGuard<'_> {
        let node = {
            let mut inner = self.inner.lock().expect("profiler lock");
            let tid = std::thread::current().id();
            let parent = inner.stacks.get(&tid).and_then(|s| s.last().copied());
            let node = inner.node_for(parent, name);
            inner.stacks.entry(tid).or_default().push(node);
            node
        };
        PhaseGuard {
            prof: self,
            node,
            start: Instant::now(),
        }
    }

    /// True when no phase has ever been opened.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("profiler lock").nodes.is_empty()
    }

    /// Discards every recorded phase (open guards keep working; their
    /// nodes are re-created on the next enter).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("profiler lock");
        inner.nodes.clear();
        inner.roots.clear();
        inner.stacks.clear();
    }

    /// The profile tree flattened depth-first, siblings sorted by name so
    /// the shape is independent of thread interleaving.
    pub fn snapshot(&self) -> Vec<ProfileEntry> {
        let inner = self.inner.lock().expect("profiler lock");
        let mut out = Vec::new();
        let mut roots = inner.roots.clone();
        roots.sort_by(|&a, &b| inner.nodes[a].name.cmp(&inner.nodes[b].name));
        for r in roots {
            flatten(&inner, r, "", 0, &mut out);
        }
        out
    }

    /// The `n` phases with the largest *self* time (total minus profiled
    /// children), most expensive first.
    pub fn hotspots(&self, n: usize) -> Vec<ProfileEntry> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| {
            b.self_secs
                .partial_cmp(&a.self_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        all.truncate(n);
        all
    }

    /// The profile tree as a JSON array of `{path, depth, calls,
    /// total_secs, self_secs}` objects, depth-first.
    pub fn to_json(&self) -> Value {
        Value::Arr(
            self.snapshot()
                .into_iter()
                .map(|e| {
                    Value::obj([
                        ("path", Value::from(e.path)),
                        ("depth", Value::from(e.depth as u64)),
                        ("calls", Value::from(e.calls)),
                        ("total_secs", Value::from(e.total_secs)),
                        ("self_secs", Value::from(e.self_secs)),
                    ])
                })
                .collect(),
        )
    }

    /// Plain-text rendering of the tree (indentation = nesting), for the
    /// report binary's `perf` section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            let indent = "  ".repeat(e.depth);
            out.push_str(&format!(
                "{indent}{:<width$} {:>10}  {:>10} self  x{}\n",
                e.name,
                fmt_secs(e.total_secs),
                fmt_secs(e.self_secs),
                e.calls,
                width = 32usize.saturating_sub(indent.len()),
            ));
        }
        out
    }
}

fn flatten(
    inner: &ProfilerInner,
    idx: usize,
    prefix: &str,
    depth: usize,
    out: &mut Vec<ProfileEntry>,
) {
    let node = &inner.nodes[idx];
    // Skip phases that never completed a call (still open when snapshotted).
    let path = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix}{PATH_SEPARATOR}{}", node.name)
    };
    let child_total: f64 = node
        .children
        .iter()
        .map(|&c| inner.nodes[c].total_secs)
        .sum();
    out.push(ProfileEntry {
        path: path.clone(),
        name: node.name.clone(),
        depth,
        calls: node.calls,
        total_secs: node.total_secs,
        self_secs: (node.total_secs - child_total).max(0.0),
    });
    let mut kids = node.children.clone();
    kids.sort_by(|&a, &b| inner.nodes[a].name.cmp(&inner.nodes[b].name));
    for c in kids {
        flatten(inner, c, &path, depth + 1, out);
    }
}

/// Human formatting for small durations (`1.23ms`, `456µs`, `7.8s`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// Guard returned by [`Profiler::enter`]; records the phase's wall-clock
/// time when dropped. Must be dropped on the thread that opened it (Rust
/// scope-based drop order makes this the natural usage).
pub struct PhaseGuard<'a> {
    prof: &'a Profiler,
    node: usize,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let mut inner = self.prof.inner.lock().expect("profiler lock");
        let tid = std::thread::current().id();
        if let Some(stack) = inner.stacks.get_mut(&tid) {
            // Pop through any phases leaked by out-of-order drops.
            while let Some(top) = stack.pop() {
                if top == self.node {
                    break;
                }
            }
            if stack.is_empty() {
                inner.stacks.remove(&tid);
            }
        }
        if let Some(n) = inner.nodes.get_mut(self.node) {
            n.calls += 1;
            n.total_secs += secs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_phases_roll_up_into_expected_tree() {
        let p = Profiler::new();
        {
            let _plan = p.enter("plan");
            {
                let _place = p.enter("dpos.place");
                let _scan = p.enter("eft_scan");
            }
            {
                let _place = p.enter("dpos.place");
                let _commit = p.enter("commit");
            }
        }
        let tree = p.snapshot();
        let paths: Vec<&str> = tree.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "plan",
                "plan > dpos.place",
                "plan > dpos.place > commit",
                "plan > dpos.place > eft_scan",
            ]
        );
        assert_eq!(tree[0].calls, 1);
        assert_eq!(tree[1].calls, 2, "same path merges into one node");
        assert_eq!(tree[1].depth, 1);
        // parent totals dominate child totals; self excludes children
        assert!(tree[0].total_secs >= tree[1].total_secs);
        assert!(tree[1].self_secs <= tree[1].total_secs);
    }

    #[test]
    fn threads_build_independent_stacks_that_merge_by_path() {
        let p = std::sync::Arc::new(Profiler::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                let _a = p.enter("plan");
                let _b = p.enter("work");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tree = p.snapshot();
        assert_eq!(tree.len(), 2, "identical paths merge across threads");
        assert_eq!(tree[0].path, "plan");
        assert_eq!(tree[0].calls, 3);
        assert_eq!(tree[1].path, "plan > work");
        assert_eq!(tree[1].calls, 3);
    }

    #[test]
    fn hotspots_rank_by_self_time() {
        let p = Profiler::new();
        {
            let _outer = p.enter("outer");
            {
                let _inner = p.enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        let hot = p.hotspots(1);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].path, "outer > inner");
    }

    #[test]
    fn json_and_render_cover_every_node() {
        let p = Profiler::new();
        {
            let _a = p.enter("a");
            let _b = p.enter("b");
        }
        let json = p.to_json().to_string();
        let v = Value::parse(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["path"].as_str(), Some("a"));
        assert_eq!(v[1]["path"].as_str(), Some("a > b"));
        let text = p.render();
        assert!(text.contains("a"));
        assert!(text.contains("  b"));
    }

    #[test]
    fn clear_resets_and_empty_reports() {
        let p = Profiler::new();
        assert!(p.is_empty());
        {
            let _a = p.enter("a");
        }
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn fmt_secs_scales_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
        assert_eq!(fmt_secs(2.5e-8), "25ns");
    }
}
