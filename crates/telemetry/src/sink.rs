//! Pluggable event sinks: where emitted events go.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Receives every event emitted through a
/// [`Collector`](crate::Collector).
///
/// Implementations must be cheap and must not panic: sinks run inline on
/// the instrumented hot paths.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Sharing a sink between a collector and an observer (e.g. a test that
/// asserts on recorded events) works through `Arc`.
impl<S: Sink + ?Sized> Sink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }
    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards every event. Useful for measuring instrumentation overhead and
/// as a placeholder in configs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// A bounded in-memory ring buffer of events: when full, the oldest events
/// are dropped (and counted).
#[derive(Debug)]
pub struct MemorySink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl MemorySink {
    /// A ring buffer holding at most `cap` events (`cap` is clamped to ≥1).
    pub fn new(cap: usize) -> Self {
        MemorySink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A ring buffer with a default capacity suited to a full
    /// pre-training session.
    pub fn with_default_capacity() -> Self {
        Self::new(65_536)
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("sink lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Retained events whose kind starts with `prefix`.
    pub fn events_of(&self, prefix: &str) -> Vec<Event> {
        self.buf
            .lock()
            .expect("sink lock")
            .iter()
            .filter(|e| e.kind.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("sink lock").len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Empties the buffer.
    pub fn clear(&self) {
        self.buf.lock().expect("sink lock").clear();
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        let mut buf = self.buf.lock().expect("sink lock");
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

/// Appends one JSON object per event to a writer (JSON Lines). Create with
/// [`JsonlSink::create`] for a file target, or wrap any writer with
/// [`JsonlSink::new`].
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Streams events to an arbitrary writer.
    pub fn new<W: Write + Send + 'static>(w: W) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(Box::new(w))),
        }
    }

    /// Creates (truncating) `path` and streams events to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("sink lock");
        // I/O errors are swallowed: telemetry must never fail the workload.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("sink lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parses a JSONL event stream (e.g. a file written through [`JsonlSink`]),
/// skipping unparsable lines.
pub fn parse_jsonl(text: &str) -> Vec<Event> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| crate::json::Value::parse(l).ok())
        .filter_map(|v| Event::from_json(&v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobj;

    fn ev(seq: u64, kind: &str) -> Event {
        Event {
            seq,
            t_us: seq * 10,
            kind: kind.to_string(),
            fields: jobj! { "x" => seq },
        }
    }

    #[test]
    fn memory_sink_ring_evicts_oldest() {
        let s = MemorySink::new(3);
        for i in 0..5 {
            s.record(&ev(i, "k"));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let evs = s.events();
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
    }

    #[test]
    fn memory_sink_filters_by_prefix() {
        let s = MemorySink::new(10);
        s.record(&ev(0, "session.round"));
        s.record(&ev(1, "sim.iteration"));
        s.record(&ev(2, "session.activation"));
        assert_eq!(s.events_of("session.").len(), 2);
        assert_eq!(s.events_of("sim.").len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("fastt-telemetry-test-{}.jsonl", std::process::id()));
        {
            let s = JsonlSink::create(&path).unwrap();
            s.record(&ev(0, "a.b"));
            s.record(&ev(1, "c.d"));
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_jsonl(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, "c.d");
        assert_eq!(events[1].field("x").as_u64(), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_jsonl_skips_garbage_lines() {
        let text = format!("garbage\n{}\n\n{{\"seq\":1}}\n", ev(3, "k").to_json());
        let events = parse_jsonl(&text);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 3);
    }
}
