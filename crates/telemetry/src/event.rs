//! Structured telemetry events.

use crate::json::Value;

/// One structured event: a monotonically increasing sequence number, a
/// timestamp relative to the collector's creation, a dotted kind string
/// (`"session.activation"`, `"sim.oom"`, …), and a free-form object of
/// fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the collector's event stream (0-based).
    pub seq: u64,
    /// Microseconds since the collector was created.
    pub t_us: u64,
    /// Dotted event kind, e.g. `"session.rollback"`.
    pub kind: String,
    /// Event payload; always a [`Value::Obj`].
    pub fields: Value,
}

impl Event {
    /// Field lookup (`Value::Null` when absent).
    pub fn field(&self, name: &str) -> &Value {
        &self.fields[name]
    }

    /// Numeric field shorthand.
    pub fn num(&self, name: &str) -> Option<f64> {
        self.fields[name].as_f64()
    }

    /// String field shorthand.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.fields[name].as_str()
    }

    /// The JSONL representation: one flat object with reserved keys
    /// `seq`, `t_us`, and `kind` plus the nested `fields` object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("seq", Value::from(self.seq)),
            ("t_us", Value::from(self.t_us)),
            ("kind", Value::from(self.kind.as_str())),
            ("fields", self.fields.clone()),
        ])
    }

    /// Rebuilds an event from its [`Event::to_json`] form (e.g. one JSONL
    /// line). Returns `None` when the reserved keys are missing.
    pub fn from_json(v: &Value) -> Option<Event> {
        Some(Event {
            seq: v["seq"].as_u64()?,
            t_us: v["t_us"].as_u64()?,
            kind: v["kind"].as_str()?.to_string(),
            fields: match &v["fields"] {
                obj @ Value::Obj(_) => obj.clone(),
                _ => Value::Obj(Vec::new()),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobj;

    #[test]
    fn json_roundtrip() {
        let ev = Event {
            seq: 7,
            t_us: 1234,
            kind: "session.activation".to_string(),
            fields: jobj! { "est" => 0.5, "round" => 2u64 },
        };
        let line = ev.to_json().to_string();
        let back = Event::from_json(&Value::parse(&line).unwrap()).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.num("est"), Some(0.5));
        assert_eq!(back.field("round").as_u64(), Some(2));
    }

    #[test]
    fn from_json_rejects_malformed() {
        let v = Value::parse(r#"{"seq":1}"#).unwrap();
        assert!(Event::from_json(&v).is_none());
    }
}
