//! SLO declarations and grading: named metrics checked against declared
//! wall-clock (or count) targets.
//!
//! An [`Slo`] names a metric in the [`crate::Registry`], how to read it
//! (a histogram quantile, a histogram mean, or the raw gauge/counter
//! value), and two thresholds: the *target* (pass boundary, inclusive)
//! and a warn band that stretches to `target * warn_factor`. Evaluation
//! never panics and degrades to [`SloGrade::NoData`] when the metric is
//! absent or empty — telemetry must not take down the workload.
//!
//! The first consumer is the ROADMAP `planner.latency` SLO: strategy
//! calculation graded against the paper's interactive-replanning budget.
//!
//! # Examples
//!
//! ```
//! use fastt_telemetry::{Registry, Slo, SloGrade};
//!
//! let reg = Registry::new();
//! reg.observe("planner.latency", 0.004);
//! let slo = Slo::p95("planner.latency.p95", "planner.latency", 0.250);
//! assert_eq!(slo.evaluate(&reg).grade, SloGrade::Pass);
//! ```

use crate::json::Value;
use crate::metrics::{MetricValue, Registry};

/// Outcome band of an SLO evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloGrade {
    /// Observed ≤ target.
    Pass,
    /// target < observed ≤ target × warn_factor.
    Warn,
    /// Observed beyond the warn band.
    Fail,
    /// Metric missing or empty.
    NoData,
}

impl SloGrade {
    /// Upper-case label (`PASS` / `WARN` / `FAIL` / `NO-DATA`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SloGrade::Pass => "PASS",
            SloGrade::Warn => "WARN",
            SloGrade::Fail => "FAIL",
            SloGrade::NoData => "NO-DATA",
        }
    }
}

/// A declared service-level objective over one registry metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Display name, e.g. `planner.latency.p95`.
    pub name: String,
    /// Registry metric key the objective reads.
    pub metric: String,
    /// For histograms: the quantile to grade (`None` grades the mean).
    /// Ignored for counters and gauges.
    pub quantile: Option<f64>,
    /// Pass boundary (inclusive), in the metric's own unit.
    pub target: f64,
    /// Warn band multiplier: observations in `(target, target *
    /// warn_factor]` grade [`SloGrade::Warn`], beyond it [`SloGrade::Fail`].
    pub warn_factor: f64,
}

impl Slo {
    /// An SLO graded on the metric's p95 with the default 2× warn band.
    pub fn p95(name: &str, metric: &str, target: f64) -> Self {
        Slo {
            name: name.to_string(),
            metric: metric.to_string(),
            quantile: Some(0.95),
            target,
            warn_factor: 2.0,
        }
    }

    /// An SLO graded on the histogram mean (or the raw gauge/counter
    /// value) with the default 2× warn band.
    pub fn mean(name: &str, metric: &str, target: f64) -> Self {
        Slo {
            name: name.to_string(),
            metric: metric.to_string(),
            quantile: None,
            target,
            warn_factor: 2.0,
        }
    }

    /// Grades this objective against the registry's current readings.
    pub fn evaluate(&self, reg: &Registry) -> SloVerdict {
        let observed = match reg.get(&self.metric) {
            None => None,
            Some(MetricValue::Counter(c)) => Some(c as f64),
            Some(MetricValue::Gauge(g)) => Some(g),
            Some(MetricValue::Histogram(h)) => {
                if h.count == 0 {
                    None
                } else {
                    Some(match self.quantile {
                        Some(q) => h.quantile_bound(q),
                        None => h.mean(),
                    })
                }
            }
        };
        let warn_limit = self.target * self.warn_factor;
        let grade = match observed {
            None => SloGrade::NoData,
            Some(v) if v <= self.target => SloGrade::Pass,
            Some(v) if v <= warn_limit => SloGrade::Warn,
            Some(_) => SloGrade::Fail,
        };
        SloVerdict {
            slo: self.name.clone(),
            metric: self.metric.clone(),
            observed: observed.unwrap_or(f64::NAN),
            target: self.target,
            warn_limit,
            grade,
        }
    }
}

/// The result of grading one [`Slo`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// The objective's display name.
    pub slo: String,
    /// Metric key that was read.
    pub metric: String,
    /// The value graded (NaN when [`SloGrade::NoData`]).
    pub observed: f64,
    /// Declared pass boundary.
    pub target: f64,
    /// `target * warn_factor`, the fail boundary.
    pub warn_limit: f64,
    /// Outcome band.
    pub grade: SloGrade,
}

impl SloVerdict {
    /// One-line human rendering for reports.
    pub fn render(&self) -> String {
        if self.grade == SloGrade::NoData {
            format!(
                "{:<28} {:>8}  (metric {} empty)",
                self.slo,
                self.grade.as_str(),
                self.metric
            )
        } else {
            format!(
                "{:<28} {:>8}  observed {:.6} target {:.6} warn-limit {:.6}",
                self.slo,
                self.grade.as_str(),
                self.observed,
                self.target,
                self.warn_limit
            )
        }
    }

    /// JSON object form for BENCH dumps.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("slo", Value::from(self.slo.clone())),
            ("metric", Value::from(self.metric.clone())),
            ("observed", Value::from(self.observed)),
            ("target", Value::from(self.target)),
            ("warn_limit", Value::from(self.warn_limit)),
            ("grade", Value::from(self.grade.as_str())),
        ])
    }
}

/// Grades every objective in `slos` against `reg`.
pub fn evaluate_slos(slos: &[Slo], reg: &Registry) -> Vec<SloVerdict> {
    slos.iter().map(|s| s.evaluate(reg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(target: f64) -> Slo {
        Slo::p95("t.p95", "t", target)
    }

    #[test]
    fn boundaries_are_pinned() {
        // Histogram quantile_bound lands on a bucket upper bound; grade
        // with a gauge to pin exact boundary semantics.
        let reg = Registry::new();
        let s = Slo::mean("g", "g", 0.1); // warn band to 0.2

        reg.set_gauge("g", 0.1);
        assert_eq!(s.evaluate(&reg).grade, SloGrade::Pass, "target inclusive");
        reg.set_gauge("g", 0.100001);
        assert_eq!(s.evaluate(&reg).grade, SloGrade::Warn, "just over target");
        reg.set_gauge("g", 0.2);
        assert_eq!(
            s.evaluate(&reg).grade,
            SloGrade::Warn,
            "warn limit inclusive"
        );
        reg.set_gauge("g", 0.200001);
        assert_eq!(s.evaluate(&reg).grade, SloGrade::Fail, "beyond warn band");
    }

    #[test]
    fn histogram_quantile_is_graded() {
        let reg = Registry::new();
        for _ in 0..100 {
            reg.observe("t", 5e-4); // p95 bucket bound = 1e-3
        }
        assert_eq!(slo(1e-3).evaluate(&reg).grade, SloGrade::Pass);
        assert_eq!(slo(1e-4).evaluate(&reg).grade, SloGrade::Fail);
        let v = slo(1e-3).evaluate(&reg);
        assert_eq!(v.observed, 1e-3);
        assert_eq!(v.warn_limit, 2e-3);
    }

    #[test]
    fn missing_or_empty_metric_is_no_data() {
        let reg = Registry::new();
        let v = slo(1.0).evaluate(&reg);
        assert_eq!(v.grade, SloGrade::NoData);
        assert!(v.observed.is_nan());
        assert!(v.render().contains("NO-DATA"));
    }

    #[test]
    fn counter_reads_raw_value() {
        let reg = Registry::new();
        reg.add("n", 7);
        let s = Slo::mean("n", "n", 10.0);
        assert_eq!(s.evaluate(&reg).grade, SloGrade::Pass);
        reg.add("n", 100);
        assert_eq!(s.evaluate(&reg).grade, SloGrade::Fail);
    }

    #[test]
    fn evaluate_slos_covers_all_and_json_renders() {
        let reg = Registry::new();
        reg.observe("t", 0.5);
        let list = vec![slo(1.0), Slo::p95("other", "missing", 1.0)];
        let verdicts = evaluate_slos(&list, &reg);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].grade, SloGrade::Pass);
        assert_eq!(verdicts[1].grade, SloGrade::NoData);
        let json = verdicts[0].to_json().to_string();
        let v = Value::parse(&json).unwrap();
        assert_eq!(v["grade"].as_str(), Some("PASS"));
    }
}
