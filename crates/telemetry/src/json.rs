//! A minimal self-contained JSON value type: construction, compact
//! serialization, and parsing.
//!
//! The build environment cannot fetch `serde_json`, and the telemetry layer
//! must not impose dependencies on every instrumented crate, so this module
//! supplies the small JSON surface the workspace needs: building values
//! (via [`From`] impls and the [`jobj!`](crate::jobj) macro), rendering them
//! compactly ([`std::fmt::Display`]), and parsing them back
//! ([`Value::parse`]) for trace/report consumers.
//!
//! Numbers are stored as `f64`. Integers up to 2^53 round-trip exactly,
//! which covers every quantity this workspace serializes (byte counts,
//! microsecond timestamps, counters). Non-finite floats serialize as
//! `null`, matching `serde_json`'s behavior.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Insertion order is preserved (no key dedup on build).
    Obj(Vec<(String, Value)>),
}

/// Shared `null` for out-of-range indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<T: Into<Value>, I: IntoIterator<Item = T>>(items: I) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Member lookup: `Some(&value)` for a present object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Num(n as f64)
            }
        }
    )*};
}

impl_from_num!(f64, f32, u64, u32, u16, u8, i64, i32, usize);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

/// Builds a [`Value::Obj`] literal: `jobj! { "key" => value, ... }`.
/// Values go through `Value::from`.
#[macro_export]
macro_rules! jobj {
    { $($k:expr => $v:expr),* $(,)? } => {
        $crate::Value::Obj(vec![
            $( ($k.to_string(), $crate::Value::from($v)) ),*
        ])
    };
}

fn escape_into(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => escape_into(s, f),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in telemetry data;
                            // lone surrogates degrade to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_compact_json() {
        let v = jobj! {
            "name" => "conv1",
            "secs" => 0.5,
            "count" => 3u64,
            "ok" => true,
            "tags" => Value::arr(["a", "b"]),
        };
        assert_eq!(
            v.to_string(),
            r#"{"name":"conv1","secs":0.5,"count":3,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn roundtrips_nested_structures() {
        let src = jobj! {
            "a" => Value::arr([Value::Num(1.0), Value::Null, Value::Bool(false)]),
            "b" => jobj! { "c" => "x \"quoted\" \\ line\nbreak" },
            "n" => -2.5e-3,
        };
        let back = Value::parse(&src.to_string()).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"k\" : [ 1 , 2.5 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v["k"][0].as_f64(), Some(1.0));
        assert_eq!(v["k"][1], 2.5);
        assert_eq!(v["k"][2].as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("{}x").is_err());
        assert!(Value::parse("\"abc").is_err());
    }

    #[test]
    fn indexing_misses_yield_null() {
        let v = Value::parse(r#"{"a":[10]}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"][5].is_null());
        assert_eq!(v["a"][0].as_u64(), Some(10));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(1e6).to_string(), "1000000");
        assert_eq!(Value::Num(0.25).to_string(), "0.25");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn large_u64_precision_bound() {
        let v = Value::from((1u64 << 53) - 1);
        assert_eq!(v.as_u64(), Some((1 << 53) - 1));
    }
}
