//! Property tests. The offline build environment cannot fetch the external
//! `proptest` crate, so these are compiled only under `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the discrete-event engine: schedule invariants
//! that must hold for every graph, placement, and policy.

use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, RunTrace, SimConfig};
use proptest::prelude::*;

/// Deterministic pseudo-random DAG: `n` ops in layers, each with 0-2
/// predecessors from earlier ops, mixed kinds.
fn arb_dag() -> impl Strategy<Value = Graph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut g = Graph::new();
        let kinds = [
            OpKind::MatMul,
            OpKind::Relu,
            OpKind::Conv2D,
            OpKind::Add,
            OpKind::Pool,
        ];
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            let flops = 1 << (16 + next() % 12);
            let elems = 1 << (8 + next() % 8);
            let id = g
                .add_op(Operation::new(format!("o{i}"), kind, [elems]).with_flops(flops))
                .unwrap();
            if i > 0 {
                let preds = next() % 3;
                for _ in 0..preds {
                    let p = OpId((next() % i as u64) as u32);
                    let _ = g.connect(p, id);
                }
            }
        }
        g
    })
}

fn arb_placement(n_ops: usize, gpus: u16) -> impl Strategy<Value = Placement> {
    proptest::collection::vec(0..gpus, n_ops)
        .prop_map(|v| Placement::new(v.into_iter().map(DeviceId).collect()))
}

fn cfg() -> SimConfig {
    SimConfig {
        iteration_overhead: 0.0,
        check_memory: false,
        ..SimConfig::default()
    }
}

fn check_schedule_invariants(g: &Graph, topo: &Topology, p: &Placement, tr: &RunTrace) {
    // 1. every op executed exactly once with non-negative duration
    for r in &tr.op_records {
        assert!(r.start >= 0.0, "{} never ran", r.op);
        assert!(r.end >= r.start);
    }
    // 2. records on one device never overlap
    let mut by_dev: std::collections::HashMap<DeviceId, Vec<(f64, f64)>> = Default::default();
    for r in &tr.op_records {
        by_dev.entry(r.device).or_default().push((r.start, r.end));
    }
    for (d, mut v) in by_dev {
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in v.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-12,
                "overlap on {d}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    // 3. precedence: a consumer starts at/after its producer ends
    //    (plus the transfer when remote)
    for e in g.iter_edges() {
        let src = tr.op_record(e.src);
        let dst = tr.op_record(e.dst);
        assert!(
            dst.start >= src.end - 1e-12,
            "{} started before {} finished",
            e.dst,
            e.src
        );
        if p.device_of(e.src) != p.device_of(e.dst) {
            // some transfer carrying this tensor must end before dst starts
            let ok = tr.transfers.iter().any(|t| {
                t.src_op == e.src && t.dst_dev == p.device_of(e.dst) && t.end <= dst.start + 1e-12
            });
            assert!(ok, "no arriving transfer for {} -> {}", e.src, e.dst);
        }
    }
    // 4. makespan covers everything; busy time never exceeds it
    let max_end = tr.op_records.iter().map(|r| r.end).fold(0.0f64, f64::max);
    assert!((tr.makespan - max_end).abs() < 1e-9);
    for d in topo.device_ids() {
        assert!(tr.device_busy[d.index()] <= tr.makespan + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_invariants_hold_under_fifo(g in arb_dag(), gpus in 1u16..5) {
        let topo = Topology::single_server(gpus);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let tr = simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &cfg()).unwrap();
        check_schedule_invariants(&g, &topo, &p, &tr);
    }

    #[test]
    fn schedule_invariants_hold_under_random_placements(
        (g, gpus) in arb_dag().prop_flat_map(|g| (Just(g), 1u16..5)),
        seed in any::<u64>(),
    ) {
        let topo = Topology::single_server(gpus);
        let n = g.op_count();
        // derive a placement deterministically from the seed
        let mut state = seed | 1;
        let mut devs = Vec::with_capacity(n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            devs.push(DeviceId((state % gpus as u64) as u16));
        }
        let p = Placement::new(devs);
        let tr = simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &cfg()).unwrap();
        check_schedule_invariants(&g, &topo, &p, &tr);
    }

    #[test]
    fn priority_policy_preserves_invariants_and_work(g in arb_dag(), gpus in 1u16..4) {
        let topo = Topology::single_server(gpus);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let order = g.topo_order().unwrap();
        let hw = HardwarePerf::new();
        let fifo = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &cfg()).unwrap();
        let prio = simulate(&g, &topo, &p, &hw, ExecPolicy::Priority(&order), &cfg()).unwrap();
        check_schedule_invariants(&g, &topo, &p, &prio);
        // same total work regardless of policy
        prop_assert!((fifo.total_compute_time() - prio.total_compute_time()).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic(g in arb_dag(), gpus in 1u16..4) {
        let topo = Topology::single_server(gpus);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let hw = HardwarePerf::new();
        let a = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &cfg()).unwrap();
        let b = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &cfg()).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        for (ra, rb) in a.op_records.iter().zip(&b.op_records) {
            prop_assert_eq!(ra.start, rb.start);
            prop_assert_eq!(ra.device, rb.device);
        }
    }

    #[test]
    fn spreading_work_never_loses_ops(
        (g, p, gpus) in (arb_dag(), 2u16..5).prop_flat_map(|(g, gpus)| {
            let n = g.op_count();
            (Just(g), arb_placement(n, gpus), Just(gpus))
        })
    ) {
        let topo = Topology::single_server(gpus);
        let tr = simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &cfg()).unwrap();
        prop_assert_eq!(tr.op_records.len(), g.op_count());
        prop_assert!(tr.op_records.iter().all(|r| r.start >= 0.0));
    }
}

/// Any seed-derived fault schedule must replay bit-identically, and an
/// empty schedule must be indistinguishable from no schedule at all.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_injection_is_deterministic(
        g in arb_dag(),
        gpus in 2u16..5,
        seed in any::<u64>(),
        iteration in 0u64..40,
    ) {
        use fastt_sim::FaultSchedule;
        use std::sync::Arc;
        let topo = Topology::single_server(gpus);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let run = || {
            let c = SimConfig {
                jitter_pct: 0.05,
                seed,
                iteration,
                faults: Some(Arc::new(FaultSchedule::seeded(seed, gpus, 40, false))),
                ..cfg()
            };
            simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &c)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan, b.makespan);
                prop_assert_eq!(a.reexecutions, b.reexecutions);
                for (ra, rb) in a.op_records.iter().zip(&b.op_records) {
                    prop_assert_eq!(ra.start, rb.start);
                    prop_assert_eq!(ra.end, rb.end);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn empty_fault_schedule_is_inert(g in arb_dag(), gpus in 1u16..4, seed in any::<u64>()) {
        use fastt_sim::FaultSchedule;
        use std::sync::Arc;
        let topo = Topology::single_server(gpus);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let base_cfg = SimConfig { jitter_pct: 0.05, seed, ..cfg() };
        let empty_cfg = SimConfig {
            faults: Some(Arc::new(FaultSchedule::none())),
            ..base_cfg.clone()
        };
        let plain = simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &base_cfg).unwrap();
        let empty = simulate(&g, &topo, &p, &HardwarePerf::new(), ExecPolicy::Fifo, &empty_cfg).unwrap();
        prop_assert_eq!(plain.makespan, empty.makespan);
        prop_assert_eq!(plain.op_records, empty.op_records);
        prop_assert_eq!(plain.transfers, empty.transfers);
    }
}
