//! Behavioural tests of the discrete-event engine on hand-built graphs.

use fastt_cluster::{Device, DeviceId, Link, Topology, TopologyBuilder};
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig, SimError};

fn hw() -> HardwarePerf {
    HardwarePerf::new()
}

fn cfg() -> SimConfig {
    SimConfig {
        iteration_overhead: 0.0,
        ..SimConfig::default()
    }
}

/// a -> b -> c chain of memory-bound ops.
fn chain() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Input, [1 << 20]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::Relu, [1 << 20]))
        .unwrap();
    let c = g
        .add_op(Operation::new("c", OpKind::Relu, [1 << 20]))
        .unwrap();
    g.connect(a, b).unwrap();
    g.connect(b, c).unwrap();
    g
}

#[test]
fn chain_on_one_device_is_sequential() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), DeviceId(0));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert!(tr.transfers.is_empty());
    // each op starts exactly when its predecessor ends
    let (a, b, c) = (OpId(0), OpId(1), OpId(2));
    assert_eq!(tr.op_record(a).start, 0.0);
    assert_eq!(tr.op_record(b).start, tr.op_record(a).end);
    assert_eq!(tr.op_record(c).start, tr.op_record(b).end);
    assert!((tr.makespan - tr.op_record(c).end).abs() < 1e-12);
}

#[test]
fn independent_ops_run_in_parallel_across_devices() {
    let mut g = Graph::new();
    for i in 0..2 {
        g.add_op(Operation::new(format!("m{i}"), OpKind::MatMul, [64]).with_flops(1 << 33))
            .unwrap();
    }
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(2, DeviceId(0));
    p.set(OpId(1), DeviceId(1));
    let par = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let seq = simulate(
        &g,
        &t,
        &Placement::uniform(2, DeviceId(0)),
        &hw(),
        ExecPolicy::Fifo,
        &cfg(),
    )
    .unwrap();
    assert!(par.makespan < 0.6 * seq.makespan);
}

#[test]
fn cross_device_edge_produces_transfer() {
    let g = chain();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    p.set(OpId(2), DeviceId(1));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert_eq!(tr.transfers.len(), 1);
    let x = &tr.transfers[0];
    assert_eq!(x.bytes, (1u64 << 20) * 4);
    let link = t.link(DeviceId(0), DeviceId(1)).unwrap();
    assert!((x.duration() - link.transfer_time(x.bytes)).abs() < 1e-12);
    // consumer starts only after arrival
    assert!(tr.op_record(OpId(2)).start >= x.end);
}

#[test]
fn transfers_on_same_channel_serialize() {
    // two producers on dev0 feeding two consumers on dev1
    let mut g = Graph::new();
    for i in 0..2 {
        let a = g
            .add_op(Operation::new(format!("p{i}"), OpKind::Input, [1 << 22]))
            .unwrap();
        let b = g
            .add_op(Operation::new(format!("c{i}"), OpKind::Relu, [1 << 22]))
            .unwrap();
        g.connect(a, b).unwrap();
    }
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    p.set(OpId(1), DeviceId(1));
    p.set(OpId(3), DeviceId(1));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert_eq!(tr.transfers.len(), 2);
    let (t1, t2) = (&tr.transfers[0], &tr.transfers[1]);
    // the later transfer cannot start before the earlier finishes
    let (first, second) = if t1.start <= t2.start {
        (t1, t2)
    } else {
        (t2, t1)
    };
    assert!(second.start >= first.end - 1e-12);
}

#[test]
fn priority_order_is_respected() {
    // two independent ready ops on one device; priority reverses FIFO order
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Relu, [1 << 18]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::Relu, [1 << 18]))
        .unwrap();
    let t = Topology::single_server(1);
    let p = Placement::uniform(2, DeviceId(0));
    let order = [b, a];
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Priority(&order), &cfg()).unwrap();
    assert!(tr.op_record(b).start < tr.op_record(a).start);
    let tr_fifo = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert!(tr_fifo.op_record(a).start < tr_fifo.op_record(b).start);
}

#[test]
fn oom_on_oversized_variable() {
    let mut g = Graph::new();
    g.add_op(Operation::new("w", OpKind::Variable, [1]).with_param_bytes(1 << 30))
        .unwrap();
    let mut b = TopologyBuilder::new();
    b.add_device(Device::v100("tiny").with_mem_bytes(1 << 20), 0);
    let t = b.build();
    let p = Placement::uniform(1, DeviceId(0));
    let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
}

#[test]
fn oom_on_activations_mid_run() {
    // two large activations alive at once exceed a small device
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Pool, [1 << 20]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::Pool, [1 << 20]))
        .unwrap();
    let c = g.add_op(Operation::new("c", OpKind::Pool, [4])).unwrap();
    g.connect(a, c).unwrap();
    g.connect(b, c).unwrap();
    let mut tb = TopologyBuilder::new();
    tb.add_device(Device::v100("tiny").with_mem_bytes(6 << 20), 0);
    let t = tb.build();
    let p = Placement::uniform(3, DeviceId(0));
    let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap_err();
    match err {
        SimError::Oom { at_op, .. } => assert_eq!(at_op, "b"),
        other => panic!("expected OOM, got {other}"),
    }
}

#[test]
fn memory_is_freed_after_last_consumer() {
    // a feeds b; после b runs, a's activation must be freed before c runs
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Pool, [1 << 20]))
        .unwrap();
    let b = g.add_op(Operation::new("b", OpKind::Pool, [16])).unwrap();
    let c = g
        .add_op(Operation::new("c", OpKind::Pool, [1 << 20]))
        .unwrap();
    g.connect(a, b).unwrap();
    g.connect(b, c).unwrap();
    let mut tb = TopologyBuilder::new();
    // fits one big activation (4MB + small) but not two simultaneously
    tb.add_device(Device::v100("tiny").with_mem_bytes(6 << 20), 0);
    let t = tb.build();
    let p = Placement::uniform(3, DeviceId(0));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert!(tr.max_peak_mem() <= 6 << 20);
}

#[test]
fn jitter_is_deterministic_per_seed_and_iteration() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), DeviceId(0));
    let mk = |seed, iteration| {
        let c = SimConfig {
            jitter_pct: 0.05,
            seed,
            iteration,
            iteration_overhead: 0.0,
            ..SimConfig::default()
        };
        simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c)
            .unwrap()
            .makespan
    };
    assert_eq!(mk(1, 0), mk(1, 0));
    assert_ne!(mk(1, 0), mk(1, 1));
    assert_ne!(mk(1, 0), mk(2, 0));
}

#[test]
fn invalid_placement_rejected() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(2, DeviceId(0)); // wrong length
    let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap_err();
    assert!(matches!(err, SimError::InvalidPlacement(_)));
}

#[test]
fn slow_cross_server_link_hurts() {
    let g = chain();
    let fast = Topology::single_server(2);
    let slow = Topology::multi_server(2, 1);
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    p.set(OpId(2), DeviceId(1));
    let t_fast = simulate(&g, &fast, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let t_slow = simulate(&g, &slow, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert!(t_slow.makespan > t_fast.makespan);
    let _ = Link::nvlink();
}

#[test]
fn iteration_overhead_added_to_makespan() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), DeviceId(0));
    let base = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let with = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &SimConfig {
            iteration_overhead: 0.5,
            ..cfg()
        },
    )
    .unwrap();
    assert!((with.makespan - base.makespan - 0.5).abs() < 1e-12);
}

/// n per-device gradients feeding one aggregation node, plus one consumer.
fn grad_fanin(n: u16, collective: bool) -> (Graph, OpId, OpId) {
    use fastt_graph::CollectiveKind;
    let mut g = Graph::new();
    let mut agg = Operation::new("agg", OpKind::AggregateGradients, [1 << 20]);
    if collective {
        agg = agg.with_collective(CollectiveKind::AllReduce);
    }
    let grads: Vec<OpId> = (0..n)
        .map(|i| {
            g.add_op(Operation::new(
                format!("g{i}"),
                OpKind::EltwiseGrad,
                [1 << 20],
            ))
            .unwrap()
        })
        .collect();
    let agg = g.add_op(agg).unwrap();
    let apply = g
        .add_op(Operation::new("apply", OpKind::ApplyGradient, [1 << 20]))
        .unwrap();
    for &gr in &grads {
        g.connect(gr, agg).unwrap();
    }
    g.connect(agg, apply).unwrap();
    (g, agg, apply)
}

#[test]
fn cross_server_transfer_stages_through_both_hosts() {
    let g = chain();
    let t = Topology::multi_server(2, 1); // GPUs 0,1; hosts 2,3
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    p.set(OpId(2), DeviceId(1));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    // one logical edge crosses servers -> three physical hops recorded
    assert_eq!(tr.transfers.len(), 3);
    let hops: Vec<(DeviceId, DeviceId)> = tr
        .transfers
        .iter()
        .map(|x| (x.src_dev, x.dst_dev))
        .collect();
    assert_eq!(
        hops,
        vec![
            (DeviceId(0), DeviceId(2)),
            (DeviceId(2), DeviceId(3)),
            (DeviceId(3), DeviceId(1)),
        ]
    );
    // hops serialize along the route and the consumer waits for the last
    assert!(tr.transfers[1].start >= tr.transfers[0].end - 1e-12);
    assert!(tr.transfers[2].start >= tr.transfers[1].end - 1e-12);
    assert!(tr.op_record(OpId(2)).start >= tr.transfers[2].end - 1e-12);
}

#[test]
fn allreduce_collective_runs_ring_phases() {
    use fastt_graph::CollectiveKind;
    let (g, agg, _) = grad_fanin(2, true);
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    p.set(OpId(1), DeviceId(1));
    let tr = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    assert_eq!(tr.collectives.len(), 1);
    let c = &tr.collectives[0];
    assert_eq!(c.kind, CollectiveKind::AllReduce);
    assert_eq!(c.participants, vec![DeviceId(0), DeviceId(1)]);
    // 2(n-1) phases x n ring hops, each moving bytes/n
    assert_eq!(tr.transfers.len(), 4);
    assert!(tr.transfers.iter().all(|x| x.bytes == (1u64 << 20) * 4 / 2));
    // the aggregation node itself runs only after the ring completes
    assert!(tr.op_record(agg).ready >= c.end - 1e-12);
    assert!(c.duration() > 0.0);
}

#[test]
fn allreduce_beats_ps_funnel_on_eight_gpu_nvlink() {
    let t = Topology::single_server(8);
    let host = t.host_of(0).unwrap();
    let place = |g: &Graph, agg_dev: DeviceId| {
        let mut p = Placement::uniform(g.op_count(), agg_dev);
        for i in 0..8u32 {
            p.set(OpId(i), DeviceId(i as u16));
        }
        p
    };
    let (gc, _, _) = grad_fanin(8, true);
    let ring = simulate(
        &gc,
        &t,
        &place(&gc, DeviceId(0)),
        &hw(),
        ExecPolicy::Fifo,
        &cfg(),
    )
    .unwrap();
    let (gp, _, _) = grad_fanin(8, false);
    let funnel = simulate(&gp, &t, &place(&gp, host), &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    // the PS funnel serializes 8 full-tensor copies on the host channel;
    // the ring moves 2(n-1)/n of the tensor over parallel NVLink pairs
    assert!(
        ring.makespan < funnel.makespan,
        "ring {} vs funnel {}",
        ring.makespan,
        funnel.makespan
    );
}

#[test]
fn collective_runs_are_deterministic() {
    let (g, _, _) = grad_fanin(4, true);
    let t = Topology::single_server(4);
    let mut p = Placement::uniform(g.op_count(), DeviceId(0));
    for i in 0..4u32 {
        p.set(OpId(i), DeviceId(i as u16));
    }
    let cfg = SimConfig {
        jitter_pct: 0.02,
        seed: 7,
        iteration: 3,
        iteration_overhead: 0.0,
        ..SimConfig::default()
    };
    let a = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg).unwrap();
    let b = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.collectives, b.collectives);
}
