//! Coarse calibration checks: single-GPU training times and memory
//! footprints of the benchmark models must land in realistic V100 bands
//! (within a small factor of the paper's Table 1 measurements).
//!
//! These tests pin the hardware ground truth: if a constant in
//! `fastt-sim::hardware` drifts far enough to break the *shape* of the
//! paper's results, they fail.

use fastt_cluster::{DeviceId, Topology};
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// Simulated single-GPU iteration time at the paper's batch size.
fn single_gpu_iter(model: Model) -> (f64, u64) {
    let g = model.training_graph(model.paper_batch());
    let topo = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), DeviceId(0));
    let tr = simulate(
        &g,
        &topo,
        &p,
        &HardwarePerf::new(),
        ExecPolicy::Fifo,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{model}: {e}"));
    (tr.makespan, tr.max_peak_mem())
}

/// Paper Table 1, single-GPU column: samples/s → seconds per iteration.
fn paper_iter_time(model: Model) -> f64 {
    let sps = match model {
        Model::InceptionV3 => 191.0,
        Model::Vgg19 => 129.0,
        Model::ResNet200 => 89.3,
        Model::LeNet => 8827.5,
        Model::AlexNet => 1630.5,
        Model::Gnmt4 => 301.1,
        Model::Rnnlm => 345.9,
        Model::Transformer => 7613.3,
        Model::BertLarge => 84.2,
    };
    model.paper_batch() as f64 / sps
}

#[test]
fn single_gpu_iteration_times_within_5x_of_paper() {
    for m in Model::all() {
        let (iter, _) = single_gpu_iter(m);
        let paper = paper_iter_time(m);
        let ratio = iter / paper;
        // LeNet's published time is dominated by Python/input-pipeline
        // overhead that the simulator deliberately models as a small
        // constant, so it gets a wider lower band.
        let lo = if m == Model::LeNet { 0.05 } else { 0.2 };
        assert!(
            (lo..5.0).contains(&ratio),
            "{m}: simulated {iter:.4}s vs paper {paper:.4}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn all_models_fit_on_one_v100_at_paper_batch() {
    // Table 1 trains every model on a single GPU at its global batch size,
    // so none of them may OOM there.
    for m in Model::all() {
        let (_, peak) = single_gpu_iter(m);
        let cap = Topology::single_server(1).device(DeviceId(0)).mem_bytes;
        assert!(peak <= cap, "{m}: peak {peak} exceeds capacity {cap}");
        // ... and the memory model should not be trivially small either
        // (LeNet really is tiny; everything else should use >100 MB)
        let floor: u64 = if m == Model::LeNet {
            10 << 20
        } else {
            100 << 20
        };
        assert!(peak > floor, "{m}: implausibly small peak {peak}");
    }
}

#[test]
fn bert_oom_boundary_matches_table3() {
    // Paper Table 3: single GPU trains batch 16 but OOMs at 32.
    let topo = Topology::single_server(1);
    let hw = HardwarePerf::new();
    let run = |batch: u64| {
        let g = Model::BertLarge.training_graph(batch);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &SimConfig::default())
    };
    assert!(run(16).is_ok(), "bert-16 must fit on one V100");
    let err = run(32).expect_err("bert-32 must OOM on one V100");
    assert!(err.is_oom());
}

#[test]
fn compute_heavy_models_dominated_by_flops_not_overhead() {
    // VGG-19's iteration must be much longer than the per-op overhead floor.
    let g = Model::Vgg19.training_graph(64);
    let overhead_floor = g.op_count() as f64 * fastt_sim::LAUNCH_OVERHEAD;
    let (iter, _) = single_gpu_iter(Model::Vgg19);
    assert!(iter > 5.0 * overhead_floor);
}
