//! Behavioural tests of deterministic fault injection in the engine.

use std::sync::Arc;

use fastt_cluster::{Device, DeviceId, Topology, TopologyBuilder};
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::{
    simulate, ExecPolicy, Fault, FaultKind, FaultSchedule, HardwarePerf, Placement, SimConfig,
    SimError,
};

const D0: DeviceId = DeviceId(0);
const D1: DeviceId = DeviceId(1);

fn hw() -> HardwarePerf {
    HardwarePerf::new()
}

fn cfg() -> SimConfig {
    SimConfig {
        iteration_overhead: 0.0,
        ..SimConfig::default()
    }
}

fn with_faults(schedule: FaultSchedule, iteration: u64) -> SimConfig {
    SimConfig {
        faults: Some(Arc::new(schedule)),
        iteration,
        ..cfg()
    }
}

/// a -> b -> c chain of compute-bound ops.
fn chain() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Input, [1 << 20]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::MatMul, [1 << 20]).with_flops(1 << 30))
        .unwrap();
    let c = g
        .add_op(Operation::new("c", OpKind::MatMul, [1 << 20]).with_flops(1 << 30))
        .unwrap();
    g.connect(a, b).unwrap();
    g.connect(b, c).unwrap();
    g
}

#[test]
fn empty_schedule_is_bit_identical_to_no_schedule() {
    let g = chain();
    let t = Topology::single_server(2);
    let p = Placement::uniform(g.op_count(), D0);
    let plain = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let empty = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(FaultSchedule::none(), 0),
    )
    .unwrap();
    assert_eq!(plain.makespan, empty.makespan);
    assert_eq!(plain.op_records, empty.op_records);
    assert_eq!(plain.transfers, empty.transfers);
    assert_eq!(empty.reexecutions, 0);
}

#[test]
fn straggler_slows_only_its_window() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::Straggler {
            device: D0,
            slowdown: 3.0,
        },
        5,
        10,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let inside = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 7),
    )
    .unwrap();
    let after = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 10)).unwrap();
    assert!(
        inside.makespan > 2.0 * healthy.makespan,
        "straggled {} vs healthy {}",
        inside.makespan,
        healthy.makespan
    );
    assert_eq!(after.makespan, healthy.makespan);
}

#[test]
fn link_degrade_stretches_transfers() {
    let g = chain();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(OpId(2), D1);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkDegrade {
            src: D0,
            dst: D1,
            factor: 4.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let degraded = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(healthy.transfers.len(), 1);
    assert_eq!(degraded.transfers.len(), 1);
    let ratio = degraded.transfers[0].duration() / healthy.transfers[0].duration();
    assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
}

#[test]
fn crash_surfaces_typed_error_once_active() {
    let g = chain();
    let t = Topology::single_server(2);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(FaultKind::Crash { device: D0 }, 5));
    // before the crash the run succeeds
    simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 4),
    )
    .unwrap();
    let err = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 5),
    )
    .unwrap_err();
    match err {
        SimError::DeviceCrash { device, iteration } => {
            assert_eq!(device, D0);
            assert_eq!(iteration, 5);
        }
        other => panic!("expected DeviceCrash, got {other}"),
    }
    // runs not touching the crashed device are unaffected
    let on_d1 = Placement::uniform(g.op_count(), D1);
    simulate(&g, &t, &on_d1, &hw(), ExecPolicy::Fifo, &with_faults(s, 9)).unwrap();
}

#[test]
fn mem_pressure_shrinks_capacity_to_oom() {
    let g = chain();
    let mut tb = TopologyBuilder::new();
    tb.add_device(Device::v100("tiny").with_mem_bytes(32 << 20), 0);
    let t = tb.build();
    let p = Placement::uniform(g.op_count(), D0);
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::MemPressure {
            device: D0,
            reserve_bytes: 30 << 20,
        },
        0,
        3,
    ));
    let err = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 1),
    )
    .unwrap_err();
    assert!(err.is_oom(), "expected OOM under pressure, got {err}");
    // once the spike passes, the same run fits again
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 3)).unwrap();
}

#[test]
fn transient_op_faults_reexecute_and_slow_the_run() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::TransientOp {
            device: D0,
            prob: 1.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let faulty = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(faulty.reexecutions, g.op_count() as u64);
    assert!(faulty.makespan > 1.5 * healthy.makespan);
}

#[test]
fn profile_failure_yields_to_enough_attempts() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::ProfileFailure {
            device: D0,
            fail_attempts: 2,
        },
        0,
        10,
    ));
    for attempt in 0..2u32 {
        let c = SimConfig {
            attempt,
            ..with_faults(s.clone(), 3)
        };
        let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap_err();
        match err {
            SimError::Transient {
                device, attempt: a, ..
            } => {
                assert_eq!(device, D0);
                assert_eq!(a, attempt);
                assert!(err.is_transient());
            }
            other => panic!("expected Transient, got {other}"),
        }
    }
    let c = SimConfig {
        attempt: 2,
        ..with_faults(s, 3)
    };
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap();
}

#[test]
fn profile_failure_is_inert_on_unused_or_blacklisted_devices() {
    let g = chain();
    let t = Topology::single_server(2);
    // everything runs on D0; the failing device is D1
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::ProfileFailure {
            device: D1,
            fail_attempts: u32::MAX,
        },
        0,
    ));
    // an unused device's profiling hiccups must not abort the run, even at
    // attempt 0 — this is what lets a session that blacklisted the device
    // and re-planned onto the survivors make progress again
    simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 3),
    )
    .unwrap();

    // and once the device is blacklisted the same schedule is inert too
    let mut dead = Topology::single_server(2);
    dead.fail_device(D1);
    simulate(&g, &dead, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 3)).unwrap();
}

#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let g = chain();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(OpId(2), D1);
    let run = |seed: u64| {
        let s = FaultSchedule::seeded(seed, 2, 40, false);
        let c = SimConfig {
            jitter_pct: 0.05,
            seed,
            ..with_faults(s, 6)
        };
        simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.op_records, b.op_records);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.reexecutions, b.reexecutions);
}
