//! Behavioural tests of deterministic fault injection in the engine.

use std::sync::Arc;

use fastt_cluster::{Device, DeviceId, Topology, TopologyBuilder};
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::{
    simulate, ExecPolicy, Fault, FaultKind, FaultSchedule, HardwarePerf, Placement, SimConfig,
    SimError,
};

const D0: DeviceId = DeviceId(0);
const D1: DeviceId = DeviceId(1);

fn hw() -> HardwarePerf {
    HardwarePerf::new()
}

fn cfg() -> SimConfig {
    SimConfig {
        iteration_overhead: 0.0,
        ..SimConfig::default()
    }
}

fn with_faults(schedule: FaultSchedule, iteration: u64) -> SimConfig {
    SimConfig {
        faults: Some(Arc::new(schedule)),
        iteration,
        ..cfg()
    }
}

/// a -> b -> c chain of compute-bound ops.
fn chain() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Input, [1 << 20]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::MatMul, [1 << 20]).with_flops(1 << 30))
        .unwrap();
    let c = g
        .add_op(Operation::new("c", OpKind::MatMul, [1 << 20]).with_flops(1 << 30))
        .unwrap();
    g.connect(a, b).unwrap();
    g.connect(b, c).unwrap();
    g
}

#[test]
fn empty_schedule_is_bit_identical_to_no_schedule() {
    let g = chain();
    let t = Topology::single_server(2);
    let p = Placement::uniform(g.op_count(), D0);
    let plain = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let empty = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(FaultSchedule::none(), 0),
    )
    .unwrap();
    assert_eq!(plain.makespan, empty.makespan);
    assert_eq!(plain.op_records, empty.op_records);
    assert_eq!(plain.transfers, empty.transfers);
    assert_eq!(empty.reexecutions, 0);
}

#[test]
fn straggler_slows_only_its_window() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::Straggler {
            device: D0,
            slowdown: 3.0,
        },
        5,
        10,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let inside = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 7),
    )
    .unwrap();
    let after = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 10)).unwrap();
    assert!(
        inside.makespan > 2.0 * healthy.makespan,
        "straggled {} vs healthy {}",
        inside.makespan,
        healthy.makespan
    );
    assert_eq!(after.makespan, healthy.makespan);
}

#[test]
fn link_degrade_stretches_transfers() {
    let g = chain();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(OpId(2), D1);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkDegrade {
            src: D0,
            dst: D1,
            factor: 4.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let degraded = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(healthy.transfers.len(), 1);
    assert_eq!(degraded.transfers.len(), 1);
    let ratio = degraded.transfers[0].duration() / healthy.transfers[0].duration();
    assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
}

#[test]
fn crash_surfaces_typed_error_once_active() {
    let g = chain();
    let t = Topology::single_server(2);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(FaultKind::Crash { device: D0 }, 5));
    // before the crash the run succeeds
    simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 4),
    )
    .unwrap();
    let err = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 5),
    )
    .unwrap_err();
    match err {
        SimError::DeviceCrash { device, iteration } => {
            assert_eq!(device, D0);
            assert_eq!(iteration, 5);
        }
        other => panic!("expected DeviceCrash, got {other}"),
    }
    // runs not touching the crashed device are unaffected
    let on_d1 = Placement::uniform(g.op_count(), D1);
    simulate(&g, &t, &on_d1, &hw(), ExecPolicy::Fifo, &with_faults(s, 9)).unwrap();
}

#[test]
fn mem_pressure_shrinks_capacity_to_oom() {
    let g = chain();
    let mut tb = TopologyBuilder::new();
    tb.add_device(Device::v100("tiny").with_mem_bytes(32 << 20), 0);
    let t = tb.build();
    let p = Placement::uniform(g.op_count(), D0);
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::MemPressure {
            device: D0,
            reserve_bytes: 30 << 20,
        },
        0,
        3,
    ));
    let err = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 1),
    )
    .unwrap_err();
    assert!(err.is_oom(), "expected OOM under pressure, got {err}");
    // once the spike passes, the same run fits again
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 3)).unwrap();
}

#[test]
fn transient_op_faults_reexecute_and_slow_the_run() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::TransientOp {
            device: D0,
            prob: 1.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let faulty = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(faulty.reexecutions, g.op_count() as u64);
    assert!(faulty.makespan > 1.5 * healthy.makespan);
}

#[test]
fn profile_failure_yields_to_enough_attempts() {
    let g = chain();
    let t = Topology::single_server(1);
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::windowed(
        FaultKind::ProfileFailure {
            device: D0,
            fail_attempts: 2,
        },
        0,
        10,
    ));
    for attempt in 0..2u32 {
        let c = SimConfig {
            attempt,
            ..with_faults(s.clone(), 3)
        };
        let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap_err();
        match err {
            SimError::Transient {
                device, attempt: a, ..
            } => {
                assert_eq!(device, D0);
                assert_eq!(a, attempt);
                assert!(err.is_transient());
            }
            other => panic!("expected Transient, got {other}"),
        }
    }
    let c = SimConfig {
        attempt: 2,
        ..with_faults(s, 3)
    };
    simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap();
}

#[test]
fn profile_failure_is_inert_on_unused_or_blacklisted_devices() {
    let g = chain();
    let t = Topology::single_server(2);
    // everything runs on D0; the failing device is D1
    let p = Placement::uniform(g.op_count(), D0);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::ProfileFailure {
            device: D1,
            fail_attempts: u32::MAX,
        },
        0,
    ));
    // an unused device's profiling hiccups must not abort the run, even at
    // attempt 0 — this is what lets a session that blacklisted the device
    // and re-planned onto the survivors make progress again
    simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 3),
    )
    .unwrap();

    // and once the device is blacklisted the same schedule is inert too
    let mut dead = Topology::single_server(2);
    dead.fail_device(D1);
    simulate(&g, &dead, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 3)).unwrap();
}

/// a (D0, server 0) -> b (D2, server 1): one cross-server transfer.
fn cross_chain() -> (Graph, Topology, Placement) {
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("a", OpKind::Input, [1 << 20]))
        .unwrap();
    let b = g
        .add_op(Operation::new("b", OpKind::MatMul, [1 << 20]).with_flops(1 << 30))
        .unwrap();
    g.connect_bytes(a, b, 16 << 20).unwrap();
    let t = Topology::multi_server(2, 2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(OpId(1), DeviceId(2));
    (g, t, p)
}

#[test]
fn link_degrade_applies_per_physical_hop_on_staged_routes() {
    // Degrading the *logical* D0 → D2 pair must stretch only the
    // inter-server (Eth/NIC) hop of the staged route — not conjure a
    // fictional direct link, and not triple-stretch all three hops.
    let (g, t, p) = cross_chain();
    let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkDegrade {
            src: D0,
            dst: DeviceId(2),
            factor: 4.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let degraded = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(healthy.transfers.len(), 3, "PCIe → NIC → PCIe staging");
    let hop = |trace: &fastt_sim::RunTrace, a: DeviceId, b: DeviceId| -> f64 {
        trace
            .transfers
            .iter()
            .find(|x| x.src_dev == a && x.dst_dev == b)
            .expect("hop recorded")
            .duration()
    };
    let nic_ratio = hop(&degraded, h0, h1) / hop(&healthy, h0, h1);
    assert!((nic_ratio - 4.0).abs() < 1e-9, "NIC hop ratio {nic_ratio}");
    let pcie_out = hop(&degraded, D0, h0) / hop(&healthy, D0, h0);
    let pcie_in = hop(&degraded, h1, DeviceId(2)) / hop(&healthy, h1, DeviceId(2));
    assert!(
        (pcie_out - 1.0).abs() < 1e-9,
        "egress PCIe stretched {pcie_out}"
    );
    assert!(
        (pcie_in - 1.0).abs() < 1e-9,
        "ingress PCIe stretched {pcie_in}"
    );
    // a fault scripted directly against a physical hop still works
    let s_hop = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkDegrade {
            src: h0,
            dst: h1,
            factor: 2.0,
        },
        0,
    ));
    let hop_deg = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s_hop, 0)).unwrap();
    let r = hop(&hop_deg, h0, h1) / hop(&healthy, h0, h1);
    assert!((r - 2.0).abs() < 1e-9, "physical-hop ratio {r}");
}

#[test]
fn nic_degrade_stretches_only_inter_server_hops() {
    let (g, t, p) = cross_chain();
    let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::NicDegrade {
            server: 1,
            factor: 8.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let degraded = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    let hop = |trace: &fastt_sim::RunTrace, a: DeviceId, b: DeviceId| -> f64 {
        trace
            .transfers
            .iter()
            .find(|x| x.src_dev == a && x.dst_dev == b)
            .unwrap()
            .duration()
    };
    let nic = hop(&degraded, h0, h1) / hop(&healthy, h0, h1);
    assert!((nic - 8.0).abs() < 1e-9, "NIC ratio {nic}");
    let pcie = hop(&degraded, h1, DeviceId(2)) / hop(&healthy, h1, DeviceId(2));
    assert!(
        (pcie - 1.0).abs() < 1e-9,
        "intra-server hop stretched {pcie}"
    );
}

#[test]
fn link_flap_retries_then_fails_typed() {
    let (g, t, p) = cross_chain();
    let (h0, h1) = (t.host_of(0).unwrap(), t.host_of(1).unwrap());
    // prob 1.0: every attempt finds the hop down → budget exhausts
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkFlap {
            src: h0,
            dst: h1,
            prob: 1.0,
        },
        0,
    ));
    let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap_err();
    assert_eq!(
        err,
        SimError::LinkDown {
            src: h0,
            dst: h1,
            iteration: 0,
        }
    );
    assert_eq!(err.dead_link(), Some((h0, h1)));
    // a moderate flap rides out on retries: the run completes, slower,
    // with the retries counted in the trace
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::LinkFlap {
            src: h0,
            dst: h1,
            prob: 0.5,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let mut retried_total = 0u64;
    let mut slower_seen = false;
    for iter in 0..20u64 {
        match simulate(
            &g,
            &t,
            &p,
            &hw(),
            ExecPolicy::Fifo,
            &with_faults(s.clone(), iter),
        ) {
            Ok(trace) => {
                retried_total += trace.comm_retries;
                if trace.comm_retries > 0 {
                    assert!(trace.makespan > healthy.makespan, "backoff must cost time");
                    slower_seen = true;
                }
            }
            Err(e) => assert!(matches!(e, SimError::LinkDown { .. })),
        }
    }
    assert!(retried_total > 0, "a 50% flap must force some retries");
    assert!(slower_seen);
}

#[test]
fn partition_times_out_typed_and_deterministic() {
    let (g, t, p) = cross_chain();
    let s = FaultSchedule::none().with(Fault::from(FaultKind::HostPartition { server: 1 }, 5));
    // before the partition the cross-server run is fine
    simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 4),
    )
    .unwrap();
    let err = simulate(
        &g,
        &t,
        &p,
        &hw(),
        ExecPolicy::Fifo,
        &with_faults(s.clone(), 5),
    )
    .unwrap_err();
    assert_eq!(
        err,
        SimError::PartitionTimeout {
            server: 1,
            iteration: 5,
        }
    );
    assert_eq!(err.partitioned_server(), Some(1));
    // work confined to the partitioned server itself still runs: the
    // partition cuts external links, not the server's own fabric
    let inside = Placement::uniform(g.op_count(), DeviceId(2));
    simulate(&g, &t, &inside, &hw(), ExecPolicy::Fifo, &with_faults(s, 9)).unwrap();
}

#[test]
fn collective_with_partitioned_participant_aborts_within_deadline() {
    // ring all-reduce across both servers; server 1 partitions mid-ring →
    // the collective must abort with a typed error, not deadlock or hang
    let mut g = Graph::new();
    let g0 = g
        .add_op(Operation::new("g0", OpKind::EltwiseGrad, [1 << 18]))
        .unwrap();
    let g1 = g
        .add_op(Operation::new("g1", OpKind::EltwiseGrad, [1 << 18]))
        .unwrap();
    let agg = g
        .add_op(
            Operation::new("agg", OpKind::AggregateGradients, [1 << 18])
                .with_collective(fastt_graph::CollectiveKind::AllReduce),
        )
        .unwrap();
    g.connect_bytes(g0, agg, 4 << 20).unwrap();
    g.connect_bytes(g1, agg, 4 << 20).unwrap();
    let t = Topology::multi_server(2, 2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(g1, DeviceId(2));
    let s = FaultSchedule::none().with(Fault::from(FaultKind::HostPartition { server: 1 }, 3));
    let err = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 3)).unwrap_err();
    assert_eq!(
        err,
        SimError::PartitionTimeout {
            server: 1,
            iteration: 3,
        },
        "collective must abort typed, not hang or report Deadlock"
    );
}

#[test]
fn collective_straggler_drags_the_ring_but_not_compute() {
    let mut g = Graph::new();
    let g0 = g
        .add_op(Operation::new("g0", OpKind::EltwiseGrad, [1 << 18]).with_flops(1 << 28))
        .unwrap();
    let g1 = g
        .add_op(Operation::new("g1", OpKind::EltwiseGrad, [1 << 18]).with_flops(1 << 28))
        .unwrap();
    let agg = g
        .add_op(
            Operation::new("agg", OpKind::AggregateGradients, [1 << 18])
                .with_collective(fastt_graph::CollectiveKind::AllReduce),
        )
        .unwrap();
    g.connect_bytes(g0, agg, 16 << 20).unwrap();
    g.connect_bytes(g1, agg, 16 << 20).unwrap();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(g1, D1);
    let s = FaultSchedule::none().with(Fault::from(
        FaultKind::CollectiveStraggler {
            device: D1,
            slowdown: 4.0,
        },
        0,
    ));
    let healthy = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &cfg()).unwrap();
    let dragged = simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &with_faults(s, 0)).unwrap();
    assert_eq!(healthy.collectives.len(), 1);
    let ratio = dragged.collectives[0].duration() / healthy.collectives[0].duration();
    assert!((ratio - 4.0).abs() < 1e-9, "ring ratio {ratio}");
    // compute is untouched: op durations identical
    for (a, b) in healthy.op_records.iter().zip(dragged.op_records.iter()) {
        assert!((a.duration() - b.duration()).abs() < 1e-12);
    }
}

#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let g = chain();
    let t = Topology::single_server(2);
    let mut p = Placement::uniform(g.op_count(), D0);
    p.set(OpId(2), D1);
    let run = |seed: u64| {
        let s = FaultSchedule::seeded(seed, 2, 40, false);
        let c = SimConfig {
            jitter_pct: 0.05,
            seed,
            ..with_faults(s, 6)
        };
        simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c).unwrap()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.op_records, b.op_records);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.reexecutions, b.reexecutions);
}

#[test]
fn network_chaos_schedule_is_deterministic_per_seed() {
    let (g, t, p) = cross_chain();
    let run = |seed: u64, iter: u64| {
        let s = FaultSchedule::seeded_network(seed, 4, 2, 40);
        let c = SimConfig {
            jitter_pct: 0.05,
            seed,
            ..with_faults(s, iter)
        };
        simulate(&g, &t, &p, &hw(), ExecPolicy::Fifo, &c)
    };
    for iter in [0u64, 6, 13, 21, 35] {
        match (run(11, iter), run(11, iter)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.makespan, b.makespan);
                assert_eq!(a.transfers, b.transfers);
                assert_eq!(a.comm_retries, b.comm_retries);
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "typed errors must be reproducible"),
            (a, b) => panic!("same seed diverged at iter {iter}: {a:?} vs {b:?}"),
        }
    }
}
