//! Deterministic fault injection.
//!
//! The paper's heuristics assume the profiled cluster stays healthy; real
//! fleets do not. This module lets a simulation run replay a *scripted*
//! sequence of infrastructure faults — stragglers, degraded links, transient
//! op failures, device crashes, memory-pressure spikes — so the training
//! session's detection/re-planning/degradation machinery can be exercised
//! reproducibly.
//!
//! Everything here is **pure and seed-derived**: a [`FaultSchedule`] is
//! either written out literally or generated from a seed with
//! [`FaultSchedule::seeded`], and every in-engine decision (e.g. which op a
//! transient failure hits) is a hash of `(seed, op, iteration)`. There is no
//! wall clock and no global RNG, so the same schedule plus the same
//! [`SimConfig`](crate::SimConfig) always produces bit-identical traces and
//! identical typed errors.
//!
//! Fault windows are expressed in **training iterations** (the unit the
//! session steps in, threaded through `SimConfig::iteration`), not in
//! intra-iteration simulated seconds: an iteration is milliseconds long
//! while faults live for seconds-to-forever, so the iteration is the
//! natural granularity.

use crate::seed::{domains, splitmix64, SeedStream};
use fastt_cluster::DeviceId;

/// What kind of infrastructure fault is injected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The device computes `slowdown`× slower than healthy (thermal
    /// throttling, a noisy neighbour, a failing fan). `slowdown > 1`.
    Straggler {
        /// Affected device.
        device: DeviceId,
        /// Multiplier on every op's execution time (e.g. `3.0`).
        slowdown: f64,
    },
    /// The `src → dst` link moves data `factor`× slower (flaky NVLink
    /// retraining, congested NIC). `factor > 1`.
    LinkDegrade {
        /// Source device of the degraded direction.
        src: DeviceId,
        /// Destination device.
        dst: DeviceId,
        /// Multiplier on the transfer time (e.g. `4.0`).
        factor: f64,
    },
    /// Ops on the device occasionally fail and must re-execute (ECC
    /// retries, XID errors that the driver survives). Each op execution
    /// independently (but deterministically, from the jitter seed) fails
    /// with probability `prob` and is re-run, doubling its time.
    TransientOp {
        /// Affected device.
        device: DeviceId,
        /// Per-op re-execution probability in `[0, 1]`.
        prob: f64,
    },
    /// Profiling the device fails outright for the first `fail_attempts`
    /// attempts of each iteration in the window (driver hiccup, collector
    /// timeout); the run surfaces [`SimError::Transient`](crate::SimError)
    /// and succeeds once the caller has retried enough times.
    ProfileFailure {
        /// Affected device.
        device: DeviceId,
        /// Attempts that fail before one succeeds.
        fail_attempts: u32,
    },
    /// The device is gone (XID 79, preemption, kernel panic). Any run that
    /// places work on it fails with
    /// [`SimError::DeviceCrash`](crate::SimError).
    Crash {
        /// The crashed device.
        device: DeviceId,
    },
    /// Another tenant (or a fragmentation spike) pins `reserve_bytes` of
    /// the device's memory, shrinking the capacity the run sees.
    MemPressure {
        /// Affected device.
        device: DeviceId,
        /// Bytes unavailable to the training job while active.
        reserve_bytes: u64,
    },
    /// The `src → dst` link flaps: each transfer attempt over the hop
    /// independently (but deterministically, from the seed) finds the link
    /// down with probability `prob` and must back off and retry. A
    /// transfer that exhausts its retry budget surfaces
    /// [`SimError::LinkDown`](crate::SimError).
    LinkFlap {
        /// Source device of the flapping direction.
        src: DeviceId,
        /// Destination device.
        dst: DeviceId,
        /// Per-attempt probability in `[0, 1]` that the hop is down.
        prob: f64,
    },
    /// The server is cut off from the rest of the cluster (switch failure,
    /// mis-pushed ACL): every transfer crossing the partition boundary
    /// times out and surfaces
    /// [`SimError::PartitionTimeout`](crate::SimError).
    HostPartition {
        /// The partitioned server.
        server: u16,
    },
    /// Collective phases involving the device run `slowdown`× slower
    /// (a slow NCCL rank dragging the whole ring). Plain P2P transfers
    /// are unaffected. `slowdown > 1`.
    CollectiveStraggler {
        /// The slow participant.
        device: DeviceId,
        /// Multiplier on collective hop times (e.g. `4.0`).
        slowdown: f64,
    },
    /// Every hop entering or leaving the server's NIC moves `factor`×
    /// slower (duplex negotiation drop, failing optics). Intra-server
    /// hops are unaffected. `factor > 1`.
    NicDegrade {
        /// The server whose NIC degraded.
        server: u16,
        /// Multiplier on inter-server hop times (e.g. `8.0`).
        factor: f64,
    },
}

impl FaultKind {
    /// The primary device this fault touches (the `src` for link faults),
    /// or `None` for server-scoped faults ([`FaultKind::HostPartition`],
    /// [`FaultKind::NicDegrade`]).
    pub fn device(&self) -> Option<DeviceId> {
        match *self {
            FaultKind::Straggler { device, .. }
            | FaultKind::TransientOp { device, .. }
            | FaultKind::ProfileFailure { device, .. }
            | FaultKind::Crash { device }
            | FaultKind::MemPressure { device, .. }
            | FaultKind::CollectiveStraggler { device, .. } => Some(device),
            FaultKind::LinkDegrade { src, .. } | FaultKind::LinkFlap { src, .. } => Some(src),
            FaultKind::HostPartition { .. } | FaultKind::NicDegrade { .. } => None,
        }
    }

    /// The server this fault is scoped to, for server-scoped faults.
    pub fn server(&self) -> Option<u16> {
        match *self {
            FaultKind::HostPartition { server } | FaultKind::NicDegrade { server, .. } => {
                Some(server)
            }
            _ => None,
        }
    }

    /// Short machine-readable label for telemetry (`fault.injected` events).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::TransientOp { .. } => "transient_op",
            FaultKind::ProfileFailure { .. } => "profile_failure",
            FaultKind::Crash { .. } => "crash",
            FaultKind::MemPressure { .. } => "mem_pressure",
            FaultKind::LinkFlap { .. } => "link_flap",
            FaultKind::HostPartition { .. } => "host_partition",
            FaultKind::CollectiveStraggler { .. } => "collective_straggler",
            FaultKind::NicDegrade { .. } => "nic_degrade",
        }
    }
}

/// A cluster-lifecycle event: capacity arriving, returning, or leaving
/// with advance notice.
///
/// Fault kinds in [`FaultKind`] only ever *shrink* the usable cluster;
/// lifecycle events are the growth side — spot instances coming back, a
/// repaired host re-racked, a revocation notice landing before the
/// preemption. The engine treats them as part of the same deterministic
/// script: [`FaultSchedule::crashed`] is revival-aware, so a device that
/// died (via [`FaultKind::Crash`] or a [`LifecycleKind::SpotRevocation`]
/// deadline) and later sees a [`LifecycleKind::DeviceArrival`] /
/// [`LifecycleKind::DeviceRestore`] simulates alive again.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleKind {
    /// A (possibly previously revoked) device joins the cluster. For an
    /// existing blacklisted id this is a re-admission signal; the session
    /// quarantines it before placing work back on it.
    DeviceArrival {
        /// The arriving device.
        device: DeviceId,
    },
    /// A whole new server (with `gpus` GPUs plus its host CPU) is hot-added
    /// to the cluster.
    HostArrival {
        /// GPUs on the arriving server.
        gpus: u16,
    },
    /// A spot/preemption notice: the provider announces at `at_iter` that
    /// the device will be reclaimed `notice_iters` iterations later. The
    /// device actually dies at `at_iter + notice_iters` (the deadline); a
    /// zero-notice revocation is an immediate crash.
    SpotRevocation {
        /// The device being reclaimed.
        device: DeviceId,
        /// Iterations of advance warning before the device dies.
        notice_iters: u64,
    },
    /// A repaired device comes back (same semantics as
    /// [`LifecycleKind::DeviceArrival`]; kept distinct so traces can tell
    /// "repair finished" from "new spot capacity").
    DeviceRestore {
        /// The repaired device.
        device: DeviceId,
    },
    /// A repaired link comes back; the session restores the `src → dst`
    /// hop (and its reverse) into the routing tables.
    LinkRestore {
        /// Source device of the repaired direction.
        src: DeviceId,
        /// Destination device.
        dst: DeviceId,
    },
}

impl LifecycleKind {
    /// The primary device this event touches (the `src` for link events),
    /// or `None` for server-scoped events ([`LifecycleKind::HostArrival`]).
    pub fn device(&self) -> Option<DeviceId> {
        match *self {
            LifecycleKind::DeviceArrival { device }
            | LifecycleKind::SpotRevocation { device, .. }
            | LifecycleKind::DeviceRestore { device } => Some(device),
            LifecycleKind::LinkRestore { src, .. } => Some(src),
            LifecycleKind::HostArrival { .. } => None,
        }
    }

    /// Short machine-readable label for telemetry (`fault.lifecycle`
    /// events).
    pub fn label(&self) -> &'static str {
        match self {
            LifecycleKind::DeviceArrival { .. } => "device_arrival",
            LifecycleKind::HostArrival { .. } => "host_arrival",
            LifecycleKind::SpotRevocation { .. } => "spot_revocation",
            LifecycleKind::DeviceRestore { .. } => "device_restore",
            LifecycleKind::LinkRestore { .. } => "link_restore",
        }
    }
}

/// One scheduled lifecycle event, taking effect at `at_iter`.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    /// What happens.
    pub kind: LifecycleKind,
    /// Training iteration the event takes effect (for
    /// [`LifecycleKind::SpotRevocation`], the iteration the *notice*
    /// lands; the device dies `notice_iters` later).
    pub at_iter: u64,
}

impl LifecycleEvent {
    /// An event taking effect at `at_iter`.
    pub fn at(kind: LifecycleKind, at_iter: u64) -> Self {
        LifecycleEvent { kind, at_iter }
    }

    /// For revocations, the iteration the device actually dies; for every
    /// other kind, `at_iter` itself.
    pub fn deadline(&self) -> u64 {
        match self.kind {
            LifecycleKind::SpotRevocation { notice_iters, .. } => {
                self.at_iter.saturating_add(notice_iters)
            }
            _ => self.at_iter,
        }
    }
}

/// One scheduled fault: a kind active over `[from_iter, until_iter)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// First training iteration the fault is active (inclusive).
    pub from_iter: u64,
    /// First iteration the fault is over (exclusive); `u64::MAX` means the
    /// fault is permanent, which is the only sensible window for a crash.
    pub until_iter: u64,
}

impl Fault {
    /// A fault active over `[from, until)`.
    pub fn windowed(kind: FaultKind, from: u64, until: u64) -> Self {
        Fault {
            kind,
            from_iter: from,
            until_iter: until,
        }
    }

    /// A fault active from `from` forever (the right shape for crashes).
    pub fn from(kind: FaultKind, from: u64) -> Self {
        Fault {
            kind,
            from_iter: from,
            until_iter: u64::MAX,
        }
    }

    /// Whether the fault is active at `iteration`.
    pub fn active(&self, iteration: u64) -> bool {
        self.from_iter <= iteration && iteration < self.until_iter
    }
}

/// A deterministic script of infrastructure faults for one training run.
///
/// Shared immutably (usually as `Arc<FaultSchedule>`) through
/// [`SimConfig::faults`](crate::SimConfig); an empty or absent schedule
/// leaves the engine's behaviour bit-identical to a fault-free build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
    lifecycle: Vec<LifecycleEvent>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultSchedule {
            faults,
            lifecycle: Vec::new(),
        }
    }

    /// Builder-style: appends one fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Builder-style: appends one cluster-lifecycle event.
    pub fn with_lifecycle(mut self, event: LifecycleEvent) -> Self {
        self.lifecycle.push(event);
        self
    }

    /// A pseudo-random but fully seed-determined chaos scenario over
    /// `gpus` devices and `iters` iterations: one straggler window, one
    /// degraded link, one transient-op window, one memory-pressure spike,
    /// and (when `with_crash` is set and at least two GPUs exist) one
    /// permanent device crash in the middle of the run. Useful for chaos
    /// smoke tests and the `report` binary's fault scenarios.
    pub fn seeded(seed: u64, gpus: u16, iters: u64, with_crash: bool) -> Self {
        assert!(gpus > 0 && iters > 0, "need devices and iterations");
        let stream = SeedStream::domain(seed, domains::DEVICE_CHAOS);
        let pick = |salt: u64, modulo: u64| stream.pick(salt, modulo);
        let dev = |salt: u64| DeviceId(pick(salt, gpus as u64) as u16);
        let span = (iters / 4).max(1);
        // A self-loop "link" would be a silent no-op (the engine only
        // stretches cross-device transfers), so when the draw collides,
        // shift the destination to the next device.
        let link_src = dev(4);
        let mut link_dst = dev(5);
        if link_dst == link_src {
            link_dst = DeviceId((link_dst.0 + 1) % gpus);
        }
        let mut s = FaultSchedule::none()
            .with(Fault::windowed(
                FaultKind::Straggler {
                    device: dev(1),
                    slowdown: 2.0 + pick(2, 30) as f64 / 10.0,
                },
                pick(3, iters),
                pick(3, iters) + span,
            ))
            .with(Fault::windowed(
                FaultKind::LinkDegrade {
                    src: link_src,
                    dst: link_dst,
                    factor: 3.0 + pick(6, 50) as f64 / 10.0,
                },
                pick(7, iters),
                pick(7, iters) + span,
            ))
            .with(Fault::windowed(
                FaultKind::TransientOp {
                    device: dev(8),
                    prob: 0.02 + pick(9, 8) as f64 / 100.0,
                },
                pick(10, iters),
                pick(10, iters) + span,
            ))
            .with(Fault::windowed(
                FaultKind::MemPressure {
                    device: dev(11),
                    reserve_bytes: (1 + pick(12, 3)) << 30,
                },
                pick(13, iters),
                pick(13, iters) + span,
            ));
        if with_crash && gpus >= 2 {
            s = s.with(Fault::from(
                FaultKind::Crash { device: dev(14) },
                iters / 2 + pick(15, span),
            ));
        }
        s
    }

    /// A seed-determined *network* chaos scenario over `gpus` devices
    /// spread across `servers` servers and `iters` iterations: one
    /// flapping link early on, one collective straggler, one degraded NIC,
    /// and — when at least two servers exist — a permanent host partition
    /// from mid-run (the network analogue of [`FaultSchedule::seeded`]'s
    /// crash). Device ids are drawn from `0..gpus` and server ids from
    /// `0..servers`, matching the GPU-first id layout of
    /// `Topology::multi_server`.
    pub fn seeded_network(seed: u64, gpus: u16, servers: u16, iters: u64) -> Self {
        assert!(
            gpus > 0 && servers > 0 && iters > 0,
            "need devices, servers and iterations"
        );
        let stream = SeedStream::domain(seed, domains::NETWORK_CHAOS);
        let pick = |salt: u64, modulo: u64| stream.pick(salt, modulo);
        let dev = |salt: u64| DeviceId(pick(salt, gpus as u64) as u16);
        let span = (iters / 4).max(1);
        let flap_src = dev(1);
        let mut flap_dst = dev(2);
        if flap_dst == flap_src {
            flap_dst = DeviceId((flap_dst.0 + 1) % gpus);
        }
        let mut s = FaultSchedule::none()
            .with(Fault::windowed(
                FaultKind::LinkFlap {
                    src: flap_src,
                    dst: flap_dst,
                    prob: 0.2 + pick(3, 30) as f64 / 100.0,
                },
                pick(4, iters / 2),
                pick(4, iters / 2) + span,
            ))
            .with(Fault::windowed(
                FaultKind::CollectiveStraggler {
                    device: dev(5),
                    slowdown: 3.0 + pick(6, 40) as f64 / 10.0,
                },
                pick(7, iters),
                pick(7, iters) + span,
            ))
            .with(Fault::windowed(
                FaultKind::NicDegrade {
                    server: pick(8, servers as u64) as u16,
                    factor: 4.0 + pick(9, 80) as f64 / 10.0,
                },
                pick(10, iters),
                pick(10, iters) + span,
            ));
        if servers >= 2 {
            s = s.with(Fault::from(
                FaultKind::HostPartition {
                    server: pick(11, servers as u64) as u16,
                },
                iters / 2 + pick(12, span),
            ));
        }
        s
    }

    /// A seed-determined *elastic churn* scenario over `gpus` devices on
    /// `servers` servers and `iters` iterations, interleaving revocations
    /// and arrivals so cluster capacity oscillates:
    ///
    /// 1. a **noticed** spot revocation early on (2–4 iterations of
    ///    warning, so the session can drain proactively), with the same
    ///    device arriving back a few iterations after the deadline;
    /// 2. when the run is long enough, a **zero-notice** revocation of a
    ///    different device late in the run (exercising the crash-recovery
    ///    path), followed by its repair ([`LifecycleKind::DeviceRestore`]);
    /// 3. with at least two servers and a long enough run, one mid-run
    ///    [`LifecycleKind::HostArrival`] hot-adding a whole server.
    ///
    /// Purely lifecycle events — compose with [`FaultSchedule::seeded`] or
    /// [`FaultSchedule::seeded_network`] for mixed chaos. Device ids are
    /// drawn from `0..gpus`, matching `Topology::multi_server`'s GPU-first
    /// id layout.
    pub fn seeded_churn(seed: u64, gpus: u16, servers: u16, iters: u64) -> Self {
        assert!(
            gpus >= 2 && servers > 0 && iters >= 24,
            "churn needs >= 2 devices and >= 24 iterations to oscillate"
        );
        let stream = SeedStream::domain(seed, domains::ELASTIC_CHURN);
        let pick = |salt: u64, modulo: u64| stream.pick(salt, modulo);
        let dev_a = DeviceId(pick(1, gpus as u64) as u16);
        let mut dev_b = DeviceId(pick(2, gpus as u64) as u16);
        if dev_b == dev_a {
            dev_b = DeviceId((dev_b.0 + 1) % gpus);
        }
        // wave 1: a noticed revocation with the capacity returning shortly
        // after the deadline — guarantees at least one drain → scale-up →
        // promotion opportunity per run
        let notice1 = 2 + pick(3, 3);
        let t1 = iters / 6 + pick(4, iters / 6);
        let back1 = t1 + notice1 + 2 + pick(5, 3);
        let mut s = FaultSchedule::none()
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::SpotRevocation {
                    device: dev_a,
                    notice_iters: notice1,
                },
                t1,
            ))
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::DeviceArrival { device: dev_a },
                back1,
            ));
        // wave 2: a zero-notice revocation (immediate crash) plus repair,
        // late enough that wave 1's promotion has settled
        let t2 = (back1 + 8).max(2 * iters / 3) + pick(6, (iters / 8).max(1));
        let back2 = t2 + 2 + pick(7, 3);
        if back2 + 2 < iters {
            s = s
                .with_lifecycle(LifecycleEvent::at(
                    LifecycleKind::SpotRevocation {
                        device: dev_b,
                        notice_iters: 0,
                    },
                    t2,
                ))
                .with_lifecycle(LifecycleEvent::at(
                    LifecycleKind::DeviceRestore { device: dev_b },
                    back2,
                ));
        }
        // optional hot-add: a whole server mid-run, between the waves
        if servers >= 2 && iters >= 48 {
            s = s.with_lifecycle(LifecycleEvent::at(
                LifecycleKind::HostArrival {
                    gpus: (gpus / servers).max(1),
                },
                iters / 2 + pick(8, (iters / 8).max(1)),
            ));
        }
        s
    }

    /// Whether the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.lifecycle.is_empty()
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// All scheduled cluster-lifecycle events, in schedule order.
    pub fn lifecycle(&self) -> &[LifecycleEvent] {
        &self.lifecycle
    }

    /// Faults active at `iteration`.
    pub fn active(&self, iteration: u64) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| f.active(iteration))
    }

    /// Combined compute-slowdown factor for `device` at `iteration`
    /// (product of overlapping stragglers; `1.0` when healthy).
    pub fn slowdown(&self, device: DeviceId, iteration: u64) -> f64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::Straggler {
                    device: d,
                    slowdown,
                } if d == device => Some(slowdown),
                _ => None,
            })
            .product()
    }

    /// Combined transfer-time factor for the `src → dst` direction at
    /// `iteration` (`1.0` when the link is healthy).
    pub fn link_factor(&self, src: DeviceId, dst: DeviceId, iteration: u64) -> f64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::LinkDegrade {
                    src: s,
                    dst: d,
                    factor,
                } if s == src && d == dst => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Per-attempt probability that the `src → dst` hop is down at
    /// `iteration` (max of overlapping flap windows; `0.0` when healthy).
    pub fn link_flap_prob(&self, src: DeviceId, dst: DeviceId, iteration: u64) -> f64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::LinkFlap {
                    src: s,
                    dst: d,
                    prob,
                } if s == src && d == dst => Some(prob),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Deterministic flap coin: whether transfer attempt `attempt` of
    /// `op`'s send over the `src → dst` hop finds the link down at
    /// `iteration`. Each attempt gets an independent coin, so bounded
    /// retries with backoff usually ride a flap out — and deterministically
    /// exhaust their budget on persistent flaps.
    pub fn link_flapped(
        &self,
        seed: u64,
        op_index: u32,
        src: DeviceId,
        dst: DeviceId,
        iteration: u64,
        attempt: u32,
    ) -> bool {
        let prob = self.link_flap_prob(src, dst, iteration);
        if prob <= 0.0 {
            return false;
        }
        let h = splitmix64(
            seed ^ 0xF1A9_F1A9
                ^ splitmix64(op_index as u64)
                ^ splitmix64(((src.0 as u64) << 16) | dst.0 as u64)
                ^ splitmix64(iteration.wrapping_mul(0x9E3779B9))
                ^ splitmix64(0xB0FF ^ attempt as u64),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < prob
    }

    /// Whether `server` is partitioned off the cluster at `iteration`.
    pub fn is_partitioned(&self, server: u16, iteration: u64) -> bool {
        self.active(iteration)
            .any(|f| matches!(f.kind, FaultKind::HostPartition { server: s } if s == server))
    }

    /// Combined collective-phase slowdown contributed by `device` at
    /// `iteration` (product of overlapping collective stragglers; `1.0`
    /// when healthy). Plain P2P transfers are unaffected.
    pub fn collective_slowdown(&self, device: DeviceId, iteration: u64) -> f64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::CollectiveStraggler {
                    device: d,
                    slowdown,
                } if d == device => Some(slowdown),
                _ => None,
            })
            .product()
    }

    /// Combined NIC degradation factor for traffic entering or leaving
    /// `server` at `iteration` (`1.0` when healthy).
    pub fn nic_factor(&self, server: u16, iteration: u64) -> f64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::NicDegrade { server: s, factor } if s == server => Some(factor),
                _ => None,
            })
            .product()
    }

    /// The most recent revival of `device` at or before `iteration`: a
    /// [`LifecycleKind::DeviceArrival`] or [`LifecycleKind::DeviceRestore`]
    /// event, if any.
    fn revival_iter(&self, device: DeviceId, iteration: u64) -> Option<u64> {
        self.lifecycle
            .iter()
            .filter(|e| {
                e.at_iter <= iteration
                    && matches!(
                        e.kind,
                        LifecycleKind::DeviceArrival { device: d }
                        | LifecycleKind::DeviceRestore { device: d } if d == device
                    )
            })
            .map(|e| e.at_iter)
            .max()
    }

    /// Whether `device` is dead as of `iteration`.
    ///
    /// Deaths come from [`FaultKind::Crash`] windows and from
    /// [`LifecycleKind::SpotRevocation`] deadlines; a later
    /// [`LifecycleKind::DeviceArrival`] / [`LifecycleKind::DeviceRestore`]
    /// revives the device. A revival must land **strictly after** the
    /// death to count (at the same iteration, the death wins — the
    /// replacement capacity is not usable until the next iteration).
    pub fn crashed(&self, device: DeviceId, iteration: u64) -> bool {
        let revival = self.revival_iter(device, iteration);
        // dead by `death` unless revived strictly after it
        let dead_since = |death: u64| revival.is_none_or(|r| r <= death);
        self.active(iteration).any(|f| {
            matches!(f.kind, FaultKind::Crash { device: d } if d == device)
                && dead_since(f.from_iter)
        }) || self.lifecycle.iter().any(|e| {
            matches!(
                e.kind,
                LifecycleKind::SpotRevocation { device: d, .. } if d == device
            ) && e.deadline() <= iteration
                && dead_since(e.deadline())
        })
    }

    /// Bytes of `device` memory pinned by pressure spikes at `iteration`.
    pub fn mem_reserved(&self, device: DeviceId, iteration: u64) -> u64 {
        self.active(iteration)
            .filter_map(|f| match f.kind {
                FaultKind::MemPressure {
                    device: d,
                    reserve_bytes,
                } if d == device => Some(reserve_bytes),
                _ => None,
            })
            .sum()
    }

    /// How many extra executions a transient fault forces on `op` (by
    /// index) on `device` at `iteration`: `0` for the overwhelmingly common
    /// healthy case, `1` when the deterministic per-op coin lands inside an
    /// active window's probability.
    pub fn reexecutions(&self, seed: u64, op_index: u32, device: DeviceId, iteration: u64) -> u32 {
        let mut prob = 0.0f64;
        for f in self.active(iteration) {
            if let FaultKind::TransientOp { device: d, prob: p } = f.kind {
                if d == device {
                    prob = prob.max(p);
                }
            }
        }
        if prob <= 0.0 {
            return 0;
        }
        let h = splitmix64(
            seed ^ 0xFA17_FA17
                ^ splitmix64(op_index as u64)
                ^ splitmix64(iteration.wrapping_mul(0x5DEECE66D)),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        u32::from(unit < prob)
    }

    /// All profile-failure faults active at `iteration`, as
    /// `(device, fail_attempts)` pairs in schedule order. A simulation whose
    /// `SimConfig::attempt` is below an *applicable* pair's threshold
    /// returns [`SimError::Transient`](crate::SimError) for that device;
    /// which pairs apply is the engine's call (it skips devices the
    /// placement does not use or that the topology has blacklisted, so a
    /// fault cannot keep failing runs after the session has planned around
    /// its device).
    pub fn profile_fail_attempts(
        &self,
        iteration: u64,
    ) -> impl Iterator<Item = (DeviceId, u32)> + '_ {
        self.active(iteration).filter_map(|f| match f.kind {
            FaultKind::ProfileFailure {
                device,
                fail_attempts,
            } => Some((device, fail_attempts)),
            _ => None,
        })
    }

    /// The first crashed device at `iteration` among `devices`, if any.
    pub fn first_crashed<I: IntoIterator<Item = DeviceId>>(
        &self,
        devices: I,
        iteration: u64,
    ) -> Option<DeviceId> {
        devices.into_iter().find(|&d| self.crashed(d, iteration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn windows_are_half_open() {
        let f = Fault::windowed(
            FaultKind::Straggler {
                device: D0,
                slowdown: 2.0,
            },
            5,
            10,
        );
        assert!(!f.active(4));
        assert!(f.active(5));
        assert!(f.active(9));
        assert!(!f.active(10));
    }

    #[test]
    fn slowdowns_multiply_and_ignore_other_devices() {
        let s = FaultSchedule::none()
            .with(Fault::from(
                FaultKind::Straggler {
                    device: D0,
                    slowdown: 2.0,
                },
                0,
            ))
            .with(Fault::from(
                FaultKind::Straggler {
                    device: D0,
                    slowdown: 3.0,
                },
                0,
            ));
        assert_eq!(s.slowdown(D0, 0), 6.0);
        assert_eq!(s.slowdown(D1, 0), 1.0);
    }

    #[test]
    fn link_factor_is_directional() {
        let s = FaultSchedule::none().with(Fault::from(
            FaultKind::LinkDegrade {
                src: D0,
                dst: D1,
                factor: 4.0,
            },
            0,
        ));
        assert_eq!(s.link_factor(D0, D1, 0), 4.0);
        assert_eq!(s.link_factor(D1, D0, 0), 1.0);
    }

    #[test]
    fn crash_is_permanent_with_from() {
        let s = FaultSchedule::none().with(Fault::from(FaultKind::Crash { device: D1 }, 7));
        assert!(!s.crashed(D1, 6));
        assert!(s.crashed(D1, 7));
        assert!(s.crashed(D1, 1_000_000));
        assert_eq!(s.first_crashed([D0, D1], 8), Some(D1));
        assert_eq!(s.first_crashed([D0], 8), None);
    }

    #[test]
    fn mem_pressure_sums() {
        let s = FaultSchedule::none()
            .with(Fault::windowed(
                FaultKind::MemPressure {
                    device: D0,
                    reserve_bytes: 100,
                },
                0,
                10,
            ))
            .with(Fault::windowed(
                FaultKind::MemPressure {
                    device: D0,
                    reserve_bytes: 50,
                },
                5,
                10,
            ));
        assert_eq!(s.mem_reserved(D0, 2), 100);
        assert_eq!(s.mem_reserved(D0, 7), 150);
        assert_eq!(s.mem_reserved(D0, 10), 0);
    }

    #[test]
    fn reexecutions_deterministic_and_bounded_by_prob() {
        let s = FaultSchedule::none().with(Fault::from(
            FaultKind::TransientOp {
                device: D0,
                prob: 0.25,
            },
            0,
        ));
        let mut hits = 0;
        for op in 0..1000u32 {
            let a = s.reexecutions(42, op, D0, 3);
            let b = s.reexecutions(42, op, D0, 3);
            assert_eq!(a, b, "same inputs must give the same coin");
            hits += a;
        }
        // ~25% of 1000, very loose bounds
        assert!((150..350).contains(&hits), "hits = {hits}");
        // other devices unaffected
        assert_eq!(s.reexecutions(42, 0, D1, 3), 0);
    }

    #[test]
    fn profile_failure_lists_every_active_fault() {
        let s = FaultSchedule::none()
            .with(Fault::windowed(
                FaultKind::ProfileFailure {
                    device: D0,
                    fail_attempts: 1,
                },
                0,
                10,
            ))
            .with(Fault::windowed(
                FaultKind::ProfileFailure {
                    device: D1,
                    fail_attempts: 3,
                },
                0,
                5,
            ));
        let at = |i: u64| s.profile_fail_attempts(i).collect::<Vec<_>>();
        assert_eq!(at(2), vec![(D0, 1), (D1, 3)]);
        assert_eq!(at(7), vec![(D0, 1)]);
        assert_eq!(at(12), vec![]);
    }

    #[test]
    fn seeded_scenarios_reproducible_and_seed_sensitive() {
        let a = FaultSchedule::seeded(9, 4, 40, true);
        let b = FaultSchedule::seeded(9, 4, 40, true);
        let c = FaultSchedule::seeded(10, 4, 40, true);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.faults().len() == 5);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Crash { .. })));
        // no crash requested → none scheduled
        let no_crash = FaultSchedule::seeded(9, 4, 40, false);
        assert!(!no_crash
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Crash { .. })));
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.slowdown(D0, 0), 1.0);
        assert_eq!(s.link_factor(D0, D1, 0), 1.0);
        assert!(!s.crashed(D0, 0));
        assert_eq!(s.mem_reserved(D0, 0), 0);
        assert_eq!(s.reexecutions(0, 0, D0, 0), 0);
        assert_eq!(s.profile_fail_attempts(0).count(), 0);
        assert_eq!(s.link_flap_prob(D0, D1, 0), 0.0);
        assert!(!s.link_flapped(0, 0, D0, D1, 0, 0));
        assert!(!s.is_partitioned(0, 0));
        assert_eq!(s.collective_slowdown(D0, 0), 1.0);
        assert_eq!(s.nic_factor(0, 0), 1.0);
    }

    #[test]
    fn flap_coin_is_directional_deterministic_and_attempt_varying() {
        let s = FaultSchedule::none().with(Fault::from(
            FaultKind::LinkFlap {
                src: D0,
                dst: D1,
                prob: 0.5,
            },
            0,
        ));
        assert_eq!(s.link_flap_prob(D0, D1, 0), 0.5);
        assert_eq!(s.link_flap_prob(D1, D0, 0), 0.0, "flaps are directional");
        // deterministic per (seed, op, hop, iteration, attempt)
        for attempt in 0..8u32 {
            assert_eq!(
                s.link_flapped(7, 3, D0, D1, 2, attempt),
                s.link_flapped(7, 3, D0, D1, 2, attempt)
            );
        }
        // attempts get independent coins: at prob 0.5, eight straight
        // identical draws across many ops would be a broken hash
        let mut varies = false;
        for op in 0..16u32 {
            let first = s.link_flapped(7, op, D0, D1, 2, 0);
            if (1..8).any(|a| s.link_flapped(7, op, D0, D1, 2, a) != first) {
                varies = true;
                break;
            }
        }
        assert!(varies, "per-attempt coins must be independent");
        // the reverse direction never flaps
        assert!(!s.link_flapped(7, 3, D1, D0, 2, 0));
    }

    #[test]
    fn partition_and_nic_faults_are_server_scoped() {
        let s = FaultSchedule::none()
            .with(Fault::windowed(
                FaultKind::HostPartition { server: 1 },
                5,
                10,
            ))
            .with(Fault::from(
                FaultKind::NicDegrade {
                    server: 0,
                    factor: 8.0,
                },
                0,
            ));
        assert!(!s.is_partitioned(1, 4));
        assert!(s.is_partitioned(1, 5));
        assert!(!s.is_partitioned(0, 5));
        assert_eq!(s.nic_factor(0, 3), 8.0);
        assert_eq!(s.nic_factor(1, 3), 1.0);
        // server-scoped kinds expose a server, not a device
        assert_eq!(FaultKind::HostPartition { server: 1 }.device(), None);
        assert_eq!(FaultKind::HostPartition { server: 1 }.server(), Some(1));
        assert_eq!(
            FaultKind::NicDegrade {
                server: 0,
                factor: 2.0
            }
            .label(),
            "nic_degrade"
        );
    }

    #[test]
    fn collective_straggler_does_not_slow_compute() {
        let s = FaultSchedule::none().with(Fault::from(
            FaultKind::CollectiveStraggler {
                device: D0,
                slowdown: 4.0,
            },
            0,
        ));
        assert_eq!(s.collective_slowdown(D0, 0), 4.0);
        assert_eq!(s.collective_slowdown(D1, 0), 1.0);
        assert_eq!(s.slowdown(D0, 0), 1.0, "compute path unaffected");
        assert_eq!(s.link_factor(D0, D1, 0), 1.0, "p2p path unaffected");
    }

    #[test]
    fn seeded_network_reproducible_and_partition_only_multi_server() {
        let a = FaultSchedule::seeded_network(9, 4, 2, 40);
        let b = FaultSchedule::seeded_network(9, 4, 2, 40);
        let c = FaultSchedule::seeded_network(10, 4, 2, 40);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.faults().len(), 4);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::HostPartition { .. })));
        // flap is never a self-loop, and the partition lands mid-run
        for seed in 0..100u64 {
            let s = FaultSchedule::seeded_network(seed, 4, 2, 40);
            for f in s.faults() {
                match f.kind {
                    FaultKind::LinkFlap { src, dst, .. } => {
                        assert_ne!(src, dst, "seed {seed}");
                        assert!(dst.0 < 4);
                    }
                    FaultKind::HostPartition { server } => {
                        assert!(server < 2);
                        assert!(f.from_iter >= 20, "seed {seed}");
                        assert_eq!(f.until_iter, u64::MAX);
                    }
                    _ => {}
                }
            }
        }
        // single server: no partition scheduled
        let single = FaultSchedule::seeded_network(9, 4, 1, 40);
        assert_eq!(single.faults().len(), 3);
    }

    #[test]
    fn revocation_kills_at_deadline_and_arrival_revives() {
        let s = FaultSchedule::none()
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::SpotRevocation {
                    device: D1,
                    notice_iters: 3,
                },
                5,
            ))
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::DeviceArrival { device: D1 },
                12,
            ));
        // alive through the whole notice window, dead at the deadline
        assert!(!s.crashed(D1, 5));
        assert!(!s.crashed(D1, 7));
        assert!(s.crashed(D1, 8));
        assert!(s.crashed(D1, 11));
        // revived by the arrival, and stays revived
        assert!(!s.crashed(D1, 12));
        assert!(!s.crashed(D1, 1_000_000));
        // other devices untouched
        assert!(!s.crashed(D0, 8));
    }

    #[test]
    fn restore_revives_a_crash_and_recrash_wins_over_stale_revival() {
        let s = FaultSchedule::none()
            .with(Fault::from(FaultKind::Crash { device: D0 }, 4))
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::DeviceRestore { device: D0 },
                9,
            ))
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::SpotRevocation {
                    device: D0,
                    notice_iters: 0,
                },
                15,
            ));
        assert!(s.crashed(D0, 4));
        assert!(s.crashed(D0, 8));
        assert!(!s.crashed(D0, 9), "restore revives the crash");
        assert!(!s.crashed(D0, 14));
        assert!(s.crashed(D0, 15), "a later death beats an older revival");
        assert_eq!(s.first_crashed([D0, D1], 15), Some(D0));
    }

    #[test]
    fn same_iteration_death_beats_revival() {
        let s = FaultSchedule::none()
            .with(Fault::from(FaultKind::Crash { device: D0 }, 6))
            .with_lifecycle(LifecycleEvent::at(
                LifecycleKind::DeviceArrival { device: D0 },
                6,
            ));
        assert!(s.crashed(D0, 6), "ties resolve to dead");
        assert!(s.crashed(D0, 7), "and stay dead without a later revival");
    }

    #[test]
    fn lifecycle_events_mark_schedule_non_empty() {
        let s = FaultSchedule::none().with_lifecycle(LifecycleEvent::at(
            LifecycleKind::HostArrival { gpus: 2 },
            3,
        ));
        assert!(!s.is_empty());
        assert!(s.faults().is_empty());
        assert_eq!(s.lifecycle().len(), 1);
        assert_eq!(s.lifecycle()[0].kind.label(), "host_arrival");
        assert_eq!(s.lifecycle()[0].kind.device(), None);
        assert_eq!(
            LifecycleKind::LinkRestore { src: D1, dst: D0 }.device(),
            Some(D1)
        );
    }

    #[test]
    fn seeded_churn_reproducible_oscillating_and_in_range() {
        let a = FaultSchedule::seeded_churn(9, 4, 2, 60);
        let b = FaultSchedule::seeded_churn(9, 4, 2, 60);
        let c = FaultSchedule::seeded_churn(10, 4, 2, 60);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for seed in 0..100u64 {
            let s = FaultSchedule::seeded_churn(seed, 4, 2, 60);
            assert!(s.faults().is_empty(), "churn is lifecycle-only");
            let mut noticed_revocations = 0;
            let mut arrivals = 0;
            for e in s.lifecycle() {
                match e.kind {
                    LifecycleKind::SpotRevocation {
                        device,
                        notice_iters,
                    } => {
                        assert!(device.0 < 4, "seed {seed}");
                        if notice_iters > 0 {
                            assert!((2..=4).contains(&notice_iters), "seed {seed}");
                            noticed_revocations += 1;
                        }
                        assert!(e.deadline() < 60, "seed {seed}: death inside the run");
                    }
                    LifecycleKind::DeviceArrival { device }
                    | LifecycleKind::DeviceRestore { device } => {
                        assert!(device.0 < 4, "seed {seed}");
                        arrivals += 1;
                        // the matching death precedes the return
                        assert!(
                            s.crashed(device, e.at_iter.saturating_sub(1)),
                            "seed {seed}: arrival at {} without a prior death",
                            e.at_iter
                        );
                        assert!(!s.crashed(device, e.at_iter), "seed {seed}");
                    }
                    LifecycleKind::HostArrival { gpus } => assert!(gpus >= 1, "seed {seed}"),
                    LifecycleKind::LinkRestore { .. } => {}
                }
            }
            assert!(
                noticed_revocations >= 1 && arrivals >= 1,
                "seed {seed}: capacity must oscillate (lose *and* regain)"
            );
        }
    }

    #[test]
    fn seeded_link_degrade_is_never_a_self_loop() {
        for seed in 0..200u64 {
            for gpus in 2..6u16 {
                let s = FaultSchedule::seeded(seed, gpus, 40, false);
                for f in s.faults() {
                    if let FaultKind::LinkDegrade { src, dst, .. } = f.kind {
                        assert_ne!(src, dst, "seed {seed}, gpus {gpus}");
                        assert!(dst.0 < gpus);
                    }
                }
            }
        }
    }
}
