//! The discrete-event execution engine.
//!
//! Simulates one training iteration of a placed graph over a topology:
//! per-device serial execution with FIFO or priority ready queues, tensor
//! transfers serialized per channel (per device pair within a server, per
//! server pair across servers), compute/communication overlap, and memory
//! accounting with OOM detection.

use crate::comm::{CollectiveStep, CommPlan};
use crate::error::SimError;
use crate::faults::FaultSchedule;
use crate::hardware::HardwarePerf;
use crate::placement::Placement;
use crate::queue::{ExecPolicy, ReadyQueue};
use crate::trace::{CollectiveRecord, MemSample, OpRecord, RunTrace, TransferRecord};
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{CollectiveKind, Graph, OpId};
use fastt_telemetry::{jobj, Collector};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Multiplicative execution-time noise amplitude (e.g. `0.02` = ±2%).
    /// Deterministic given `seed` and `iteration`.
    pub jitter_pct: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Which training iteration this is (varies the jitter stream).
    pub iteration: u64,
    /// Fixed per-iteration framework overhead added to the makespan
    /// (session dispatch, input pipeline) — calibrated to TF 1.x.
    pub iteration_overhead: f64,
    /// Whether to enforce device memory capacities.
    pub check_memory: bool,
    /// Telemetry collector; when set, the engine emits `sim.*` events
    /// (iteration summary, OOM) and updates `sim.*` metrics. `None` keeps
    /// the hot path untouched.
    pub collector: Option<Arc<Collector>>,
    /// Whether to record the per-device memory-over-time samples that back
    /// Perfetto counter tracks (`RunTrace::mem_timeline`). Off by default:
    /// it allocates per memory change.
    pub record_mem_timeline: bool,
    /// Scripted infrastructure faults (stragglers, degraded links, crashes,
    /// memory pressure, transient failures) active during this run. `None`
    /// (the default) leaves every code path bit-identical to a fault-free
    /// engine.
    pub faults: Option<Arc<FaultSchedule>>,
    /// Which retry attempt of this iteration this run is (0-based). Only
    /// consulted by `FaultKind::ProfileFailure` faults: attempts below the
    /// fault's threshold fail with [`SimError::Transient`].
    pub attempt: u32,
    /// How many times a transfer retries a hop that a `LinkFlap` fault
    /// finds down before giving up with [`SimError::LinkDown`]. Only
    /// consulted when a fault schedule is set.
    pub comm_retries: u32,
    /// First retry backoff in simulated seconds; doubles per retry
    /// (bounded exponential backoff).
    pub comm_backoff_base: f64,
    /// Deadline in simulated seconds for one transfer's retry budget: a
    /// hop that cannot come up within it — a partitioned server, a flap
    /// whose backoff would overrun it — fails typed instead of hanging.
    pub transfer_deadline: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            jitter_pct: 0.0,
            seed: 0,
            iteration: 0,
            iteration_overhead: 3e-3,
            check_memory: true,
            collector: None,
            record_mem_timeline: false,
            faults: None,
            attempt: 0,
            comm_retries: 4,
            comm_backoff_base: 5e-4,
            transfer_deadline: 0.5,
        }
    }
}

use crate::seed::splitmix64;

/// Uniform in [-1, 1] derived from (seed, op, iteration).
fn jitter_unit(seed: u64, op: OpId, iteration: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(op.0 as u64) ^ splitmix64(iteration.wrapping_mul(0xA5A5)));
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[derive(Debug, PartialEq)]
enum Event {
    OpFinish {
        op: OpId,
    },
    /// A tensor arrived on a device, satisfying one in-edge of each listed
    /// consumer (TensorFlow sends a tensor once per destination device and
    /// fans it out locally, so one transfer may unblock several consumers).
    TransferArrive {
        dsts: Vec<OpId>,
    },
    /// A collective's final ring phase completed; its node becomes ready.
    CollectiveDone {
        node: OpId,
    },
    /// Placeholder left behind once an event has been consumed.
    Consumed,
}

/// Executes one routed transfer: hop by hop along `route`, each hop queueing
/// on its physical channel, recording one [`TransferRecord`] per hop (the
/// cost model learns single links from them). Returns the arrival time of
/// the last hop.
///
/// Fault semantics — every network fault is applied **per physical hop**:
///
/// * `LinkDegrade(a → b)` matching the hop stretches it; a degradation
///   scripted against the *logical* pair additionally stretches the
///   inter-server hop of a staged route (cross-server degradation is an Eth
///   problem, not a fictional direct link's);
/// * `NicDegrade` stretches hops entering or leaving the server's NIC;
/// * `coll_factor` carries the collective-straggler stretch (`1.0` for
///   plain P2P);
/// * `LinkFlap` puts the hop through a bounded exponential-backoff retry
///   loop — retries are counted and, past the budget or the deadline, the
///   transfer fails typed with [`SimError::LinkDown`];
/// * a hop crossing into (or out of) a partitioned server can never
///   complete: the transfer burns its deadline and fails typed with
///   [`SimError::PartitionTimeout`] instead of hanging;
/// * a hop over an administratively failed link fails immediately with
///   [`SimError::LinkDown`] (plans are validated against this, so hitting
///   it means the link died after lowering).
#[allow(clippy::too_many_arguments)]
fn run_route(
    route: &[(DeviceId, DeviceId)],
    bytes: u64,
    src_op: OpId,
    dst_op: OpId,
    start: f64,
    logical: (DeviceId, DeviceId),
    coll_factor: f64,
    topo: &Topology,
    config: &SimConfig,
    channels: &mut HashMap<(u32, u32), f64>,
    contention: &mut f64,
    transfers: &mut Vec<TransferRecord>,
    comm_retries: &mut u64,
) -> Result<f64, SimError> {
    let mut cursor = start;
    for &(a, b) in route {
        let cross_server = topo.server_of(a) != topo.server_of(b);
        if let Some(faults) = &config.faults {
            if cross_server {
                for server in [topo.server_of(a), topo.server_of(b)] {
                    if faults.is_partitioned(server, config.iteration) {
                        if config.attempt == 0 {
                            if let Some(col) = &config.collector {
                                col.metrics().inc("fault.link");
                                col.emit(
                                    "fault.link",
                                    jobj! {
                                        "kind" => "partition_timeout",
                                        "src" => a.0 as u64,
                                        "dst" => b.0 as u64,
                                        "server" => server as u64,
                                        "iteration" => config.iteration,
                                        "deadline" => config.transfer_deadline,
                                    },
                                );
                            }
                        }
                        return Err(SimError::PartitionTimeout {
                            server,
                            iteration: config.iteration,
                        });
                    }
                }
            }
        }
        if topo.is_link_failed(a, b) {
            return Err(SimError::LinkDown {
                src: a,
                dst: b,
                iteration: config.iteration,
            });
        }
        // Flap retry loop: each attempt flips an independent deterministic
        // coin; down attempts back off exponentially. The budget and the
        // deadline both bound the loop, so a persistent flap surfaces a
        // typed error in bounded simulated time.
        if let Some(faults) = &config.faults {
            if faults.link_flap_prob(a, b, config.iteration) > 0.0 {
                let mut wait = 0.0f64;
                let mut up = false;
                let mut attempt = 0u32;
                loop {
                    if !faults.link_flapped(config.seed, src_op.0, a, b, config.iteration, attempt)
                    {
                        up = true;
                        break;
                    }
                    if attempt >= config.comm_retries {
                        break;
                    }
                    let backoff = config.comm_backoff_base * (1u64 << attempt.min(32)) as f64;
                    if wait + backoff > config.transfer_deadline {
                        break;
                    }
                    wait += backoff;
                    *comm_retries += 1;
                    if config.attempt == 0 {
                        if let Some(col) = &config.collector {
                            col.metrics().inc("comm.retries");
                            col.emit(
                                "comm.retry",
                                jobj! {
                                    "op" => src_op.0 as u64,
                                    "src" => a.0 as u64,
                                    "dst" => b.0 as u64,
                                    "retry" => (attempt + 1) as u64,
                                    "backoff" => backoff,
                                    "iteration" => config.iteration,
                                },
                            );
                        }
                    }
                    attempt += 1;
                }
                cursor += wait;
                if !up {
                    if config.attempt == 0 {
                        if let Some(col) = &config.collector {
                            col.metrics().inc("fault.link");
                            col.emit(
                                "fault.link",
                                jobj! {
                                    "kind" => "link_down",
                                    "src" => a.0 as u64,
                                    "dst" => b.0 as u64,
                                    "retries" => attempt as u64,
                                    "iteration" => config.iteration,
                                },
                            );
                        }
                    }
                    return Err(SimError::LinkDown {
                        src: a,
                        dst: b,
                        iteration: config.iteration,
                    });
                }
            }
        }
        let key = topo.channel_key(a, b);
        let free_at = channels.get(&key).copied().unwrap_or(0.0).max(cursor);
        *contention += free_at - cursor;
        let link = topo.link(a, b).expect("route hops are physical links");
        let mut xfer = link.transfer_time(bytes) * coll_factor;
        if let Some(faults) = &config.faults {
            xfer *= faults.link_factor(a, b, config.iteration);
            if cross_server {
                xfer *= faults.nic_factor(topo.server_of(a), config.iteration)
                    * faults.nic_factor(topo.server_of(b), config.iteration);
                // a degradation scripted against the logical endpoints of a
                // staged route bites on its inter-server hop
                if route.len() > 1 {
                    xfer *= faults.link_factor(logical.0, logical.1, config.iteration);
                }
            }
        }
        let hop_end = free_at + xfer;
        channels.insert(key, hop_end);
        transfers.push(TransferRecord {
            src_op,
            dst_op,
            src_dev: a,
            dst_dev: b,
            bytes,
            start: free_at,
            end: hop_end,
        });
        if config.attempt == 0 {
            if let Some(col) = &config.collector {
                if let Some(class) = topo.link_class(a, b) {
                    col.metrics()
                        .add(&format!("comm.bytes.{}", class.name()), bytes);
                }
            }
        }
        cursor = hop_end;
    }
    Ok(cursor)
}

/// Executes one lowered collective over the channel timelines, starting at
/// `now` (when its last producer finished). Ring collectives run
/// [`CollectiveStep::phases`] synchronized phases — every phase waits for
/// its slowest ring hop, and each ring hop expands to its physical route.
/// Broadcast fans the full tensor from the first participant to every other
/// concurrently. Returns the completion time.
///
/// A scripted `CollectiveStraggler` on any participant drags every ring
/// hop (the slowest rank paces the ring). A participant pair left without
/// a live route — a partition mid-ring, a crashed staging host — aborts
/// the collective *deterministically* with a typed error rather than
/// simulating a hang: the error propagates out of the event loop within
/// the transfer deadline semantics of [`run_route`].
#[allow(clippy::too_many_arguments)]
fn run_collective(
    step: &CollectiveStep,
    now: f64,
    topo: &Topology,
    config: &SimConfig,
    channels: &mut HashMap<(u32, u32), f64>,
    contention: &mut f64,
    transfers: &mut Vec<TransferRecord>,
    comm_retries: &mut u64,
) -> Result<f64, SimError> {
    let n = step.participants.len();
    if n < 2 {
        return Ok(now);
    }
    let coll_factor = match &config.faults {
        Some(f) => step
            .participants
            .iter()
            .map(|&p| f.collective_slowdown(p, config.iteration))
            .fold(1.0, f64::max),
        None => 1.0,
    };
    let ring_route = |a: DeviceId, b: DeviceId| -> Result<Vec<(DeviceId, DeviceId)>, SimError> {
        topo.try_route(a, b)
            .ok_or(SimError::Unreachable { src: a, dst: b })
    };
    if step.kind == CollectiveKind::Broadcast {
        let root = step.participants[0];
        let mut end = now;
        for &p in &step.participants[1..] {
            let route = ring_route(root, p)?;
            let t = run_route(
                &route,
                step.bytes,
                step.node,
                step.node,
                now,
                (root, p),
                coll_factor,
                topo,
                config,
                channels,
                contention,
                transfers,
                comm_retries,
            )?;
            end = end.max(t);
        }
        return Ok(end);
    }
    let chunk = step.chunk_bytes();
    let mut t = now;
    for _ in 0..step.phases() {
        let phase_start = t;
        let mut phase_end = phase_start;
        for i in 0..n {
            let a = step.participants[i];
            let b = step.participants[(i + 1) % n];
            let route = ring_route(a, b)?;
            let hop_end = run_route(
                &route,
                chunk,
                step.node,
                step.node,
                phase_start,
                (a, b),
                coll_factor,
                topo,
                config,
                channels,
                contention,
                transfers,
                comm_retries,
            )?;
            phase_end = phase_end.max(hop_end);
        }
        t = phase_end;
    }
    Ok(t)
}

/// Simulates one iteration.
///
/// # Errors
///
/// * [`SimError::InvalidPlacement`] if the placement does not cover the
///   graph, uses unknown devices, or violates colocation groups;
/// * [`SimError::Oom`] if a device's memory capacity is exceeded
///   (when `config.check_memory` is set);
/// * [`SimError::Deadlock`] if the graph cannot be fully executed;
/// * [`SimError::DeviceCrash`] if a scheduled fault crashed a device the
///   placement still uses;
/// * [`SimError::Transient`] if a scheduled profile-failure fault aborts
///   this attempt (`config.attempt` below the fault's threshold);
/// * [`SimError::Unreachable`] if a required transfer has no live route;
/// * [`SimError::LinkDown`] if a link flap outlasts the retry budget (or a
///   route references an administratively failed link);
/// * [`SimError::PartitionTimeout`] if a transfer must cross into a
///   partitioned server — including a collective ring hop, which aborts
///   the collective deterministically instead of hanging.
pub fn simulate(
    graph: &Graph,
    topo: &Topology,
    placement: &Placement,
    hw: &HardwarePerf,
    policy: ExecPolicy<'_>,
    config: &SimConfig,
) -> Result<RunTrace, SimError> {
    placement
        .validate(graph, topo)
        .map_err(SimError::InvalidPlacement)?;

    let n_ops = graph.op_count();
    let n_dev = topo.device_count();

    // Scripted faults: surface crashes and transient profiling failures
    // before any work "runs", exactly as the real cluster would refuse the
    // step. Everything in this block is skipped when no schedule is set.
    if let Some(faults) = &config.faults {
        // Emit the active-fault story only on the first attempt of an
        // iteration: retries and the session's planning probes
        // (`attempt = u32::MAX`) re-simulate the same iteration and would
        // otherwise inflate `sim.faults_active` and the JSONL stream.
        if config.attempt == 0 {
            if let Some(col) = &config.collector {
                for f in faults.active(config.iteration) {
                    col.metrics().inc("sim.faults_active");
                    // Device-scoped faults carry their device id;
                    // server-scoped ones (partition, NIC) their server id.
                    let scope = f
                        .kind
                        .device()
                        .map(|d| d.0 as u64)
                        .or_else(|| f.kind.server().map(|s| s as u64))
                        .unwrap_or(0);
                    let scope_kind = if f.kind.device().is_some() {
                        "device"
                    } else {
                        "server"
                    };
                    col.emit(
                        "fault.injected",
                        jobj! {
                            "kind" => f.kind.label(),
                            "device" => scope,
                            "scope" => scope_kind,
                            "iteration" => config.iteration,
                            "from_iter" => f.from_iter,
                            "until_iter" => f.until_iter,
                        },
                    );
                }
                // Cluster-lifecycle events: arrivals/restores surface on
                // their effective iteration; a revocation surfaces on every
                // iteration of its notice window (the provider keeps
                // shouting until the deadline), so mid-iteration re-plans
                // and long notices produce repeats — the report dedupes
                // them into one `xN` line.
                for ev in faults.lifecycle() {
                    let visible = match ev.kind {
                        crate::LifecycleKind::SpotRevocation { .. } => {
                            ev.at_iter <= config.iteration
                                && config.iteration < ev.deadline().max(ev.at_iter + 1)
                        }
                        _ => ev.at_iter == config.iteration,
                    };
                    if !visible {
                        continue;
                    }
                    col.metrics().inc("fault.lifecycle");
                    col.emit(
                        "fault.lifecycle",
                        jobj! {
                            "kind" => ev.kind.label(),
                            "device" => ev.kind.device().map(|d| d.0 as u64).unwrap_or(0),
                            "iteration" => config.iteration,
                            "at_iter" => ev.at_iter,
                            "deadline" => ev.deadline(),
                        },
                    );
                }
            }
        }
        let mut used = vec![false; n_dev];
        for op in graph.op_ids() {
            used[placement.device_of(op).index()] = true;
        }
        // A profile failure only bites on a device that is live and that
        // this placement actually schedules work on: once the session
        // blacklists the device (or plans around it), the fault must go
        // inert — otherwise a fault outlasting the retry budget would keep
        // failing every re-planned run forever. Overlapping faults are
        // attributed to the worst offender, which is the device the caller
        // will blacklist first; the survivors' faults then get their turn.
        if let Some((device, fail_attempts)) = faults
            .profile_fail_attempts(config.iteration)
            .filter(|&(d, _)| used.get(d.index()).copied().unwrap_or(false) && !topo.is_failed(d))
            .max_by_key(|&(_, n)| n)
        {
            if config.attempt < fail_attempts {
                return Err(SimError::Transient {
                    device,
                    iteration: config.iteration,
                    attempt: config.attempt,
                });
            }
        }
        let used_devices = graph.op_ids().map(|op| placement.device_of(op));
        if let Some(device) = faults.first_crashed(used_devices, config.iteration) {
            return Err(SimError::DeviceCrash {
                device,
                iteration: config.iteration,
            });
        }
    }

    // Effective memory capacity: hardware capacity minus any scripted
    // memory-pressure reservation (another tenant pinning memory).
    let capacity_of = |d: usize| -> u64 {
        let cap = topo.device(DeviceId(d as u16)).mem_bytes;
        match &config.faults {
            Some(f) => cap.saturating_sub(f.mem_reserved(DeviceId(d as u16), config.iteration)),
            None => cap,
        }
    };

    // Priorities from the execution-order list (missing ops run last).
    let priority: Vec<u32> = match policy {
        ExecPolicy::Fifo => vec![0; n_ops],
        ExecPolicy::Priority(order) => {
            let mut p = vec![u32::MAX; n_ops];
            for (i, &o) in order.iter().enumerate() {
                if o.index() < n_ops {
                    p[o.index()] = i as u32;
                }
            }
            p
        }
    };

    let mut queues: Vec<ReadyQueue> = (0..n_dev)
        .map(|_| match policy {
            ExecPolicy::Fifo => ReadyQueue::new_fifo(),
            ExecPolicy::Priority(_) => ReadyQueue::new_priority(),
        })
        .collect();

    // Dependency counters.
    let mut indeg: Vec<u32> = vec![0; n_ops];
    for e in graph.iter_edges() {
        indeg[e.dst.index()] += 1;
    }
    // Producers' outputs are freed once all their consumers finish.
    let mut out_remaining: Vec<u32> = vec![0; n_ops];
    for e in graph.iter_edges() {
        out_remaining[e.src.index()] += 1;
    }

    // Memory: resident parameters up front.
    let mut mem_used: Vec<u64> = vec![0; n_dev];
    let mut mem_peak: Vec<u64> = vec![0; n_dev];
    for (op, o) in graph.iter_ops() {
        let d = placement.device_of(op);
        mem_used[d.index()] += hw.resident_bytes(o);
    }
    for d in 0..n_dev {
        mem_peak[d] = mem_used[d];
        let cap = capacity_of(d);
        if config.check_memory && mem_used[d] > cap {
            if let Some(col) = &config.collector {
                col.metrics().inc("sim.oom");
                col.emit(
                    "sim.oom",
                    jobj! {
                        "device" => d as u64,
                        "needed" => mem_used[d],
                        "capacity" => cap,
                        "at" => "resident",
                    },
                );
            }
            return Err(SimError::Oom {
                device: DeviceId(d as u16),
                needed: mem_used[d],
                capacity: cap,
                at_op: String::new(),
            });
        }
    }

    // Device state.
    let mut device_free: Vec<bool> = vec![true; n_dev];
    let mut device_busy_time: Vec<f64> = vec![0.0; n_dev];

    // Transfer channels: busy-until per channel key (see
    // `Topology::channel_key` for the sharing rules).
    let mut channels: HashMap<(u32, u32), f64> = HashMap::new();

    // The communication plan: every cross-device edge's route and every
    // collective's ring, lowered once up front (see `crate::comm`). The
    // event loop below only *executes* it. Lowering is typed-fallible
    // (blacklisted devices, unreachable pairs) and the validator proves
    // the plan references only live links and cannot deadlock.
    let plan = {
        let _lower_phase = config.collector.as_deref().map(|c| c.phase("sim.lower"));
        let t0 = std::time::Instant::now();
        let plan = CommPlan::lower(graph, placement, topo)?;
        plan.validate(topo, config.iteration)?;
        if let Some(col) = &config.collector {
            col.metrics().observe_with(
                "sim.lower_secs",
                t0.elapsed().as_secs_f64(),
                &fastt_telemetry::FINE_BUCKETS,
            );
        }
        plan
    };
    let mut coll_pending: Vec<u32> = plan
        .collectives
        .iter()
        .map(|c| c.as_ref().map_or(0, |s| s.pending))
        .collect();
    let mut collectives_run: Vec<CollectiveRecord> = Vec::new();

    // Event queue ordered by (time, seq) for determinism.
    let mut events: BinaryHeap<Reverse<(OrderedF64, u64, usize)>> = BinaryHeap::new();
    let mut event_payload: Vec<Event> = Vec::new();
    let mut seq: u64 = 0;
    let push_event = |events: &mut BinaryHeap<Reverse<(OrderedF64, u64, usize)>>,
                      payload: &mut Vec<Event>,
                      seq: &mut u64,
                      t: f64,
                      ev: Event| {
        payload.push(ev);
        events.push(Reverse((OrderedF64(t), *seq, payload.len() - 1)));
        *seq += 1;
    };

    let mut records: Vec<OpRecord> = (0..n_ops)
        .map(|i| OpRecord {
            op: OpId(i as u32),
            device: placement.device_of(OpId(i as u32)),
            ready: -1.0,
            start: -1.0,
            end: -1.0,
        })
        .collect();
    let mut transfers: Vec<TransferRecord> = Vec::new();
    let mut executed = 0usize;
    let mut contention = 0.0f64;
    let mut steps = 0u64;
    let mut mem_timeline: Vec<MemSample> = Vec::new();
    let mut reexecutions = 0u64;
    let mut comm_retry_count = 0u64;

    // Seed ready queues with zero-indegree ops. Under FIFO the seeding order
    // is *hash-shuffled*: TensorFlow's default executor pops initially-ready
    // ops (variable reads, constants) in an order determined by graph
    // internals, not by model layer order — the arbitrary transfer ordering
    // TicTac [23] identified and FastT's order enforcement fixes. Priority
    // runs are unaffected (their order comes from the computed list).
    let mut seeds: Vec<OpId> = graph.op_ids().filter(|op| indeg[op.index()] == 0).collect();
    if matches!(policy, ExecPolicy::Fifo) {
        seeds.sort_by_key(|op| splitmix64(0xF1F0 ^ op.0 as u64));
    }
    for op in seeds {
        let d = placement.device_of(op);
        records[op.index()].ready = 0.0;
        queues[d.index()].push(op, priority[op.index()]);
    }

    // Tries to start the next ready op on an idle device.
    // Returns Err on OOM.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        d: usize,
        now: f64,
        graph: &Graph,
        topo: &Topology,
        hw: &HardwarePerf,
        config: &SimConfig,
        queues: &mut [ReadyQueue],
        device_free: &mut [bool],
        device_busy_time: &mut [f64],
        mem_used: &mut [u64],
        mem_peak: &mut [u64],
        records: &mut [OpRecord],
        events: &mut BinaryHeap<Reverse<(OrderedF64, u64, usize)>>,
        payload: &mut Vec<Event>,
        seq: &mut u64,
        mem_timeline: &mut Vec<MemSample>,
        reexecutions: &mut u64,
    ) -> Result<(), SimError> {
        if !device_free[d] || queues[d].is_empty() {
            return Ok(());
        }
        let op = queues[d].pop().expect("non-empty");
        let o = graph.op_ref(op);
        // allocate the activation
        let act = hw.activation_bytes(o);
        mem_used[d] += act;
        mem_peak[d] = mem_peak[d].max(mem_used[d]);
        if config.record_mem_timeline && act > 0 {
            mem_timeline.push(MemSample {
                t: now,
                device: DeviceId(d as u16),
                bytes: mem_used[d],
            });
        }
        let mut cap = topo.device(DeviceId(d as u16)).mem_bytes;
        if let Some(faults) = &config.faults {
            cap = cap.saturating_sub(faults.mem_reserved(DeviceId(d as u16), config.iteration));
        }
        if config.check_memory && mem_used[d] > cap {
            if let Some(col) = &config.collector {
                col.metrics().inc("sim.oom");
                col.emit(
                    "sim.oom",
                    jobj! {
                        "device" => d as u64,
                        "needed" => mem_used[d],
                        "capacity" => cap,
                        "at" => o.name.as_str(),
                    },
                );
            }
            return Err(SimError::Oom {
                device: DeviceId(d as u16),
                needed: mem_used[d],
                capacity: cap,
                at_op: o.name.clone(),
            });
        }
        let mut t = hw.exec_time(graph, op, topo.device(DeviceId(d as u16)));
        if config.jitter_pct > 0.0 {
            t *= 1.0 + config.jitter_pct * jitter_unit(config.seed, op, config.iteration);
        }
        if let Some(faults) = &config.faults {
            t *= faults.slowdown(DeviceId(d as u16), config.iteration);
            let reruns =
                faults.reexecutions(config.seed, op.0, DeviceId(d as u16), config.iteration);
            if reruns > 0 {
                t *= 1.0 + reruns as f64;
                *reexecutions += reruns as u64;
            }
        }
        records[op.index()].start = now;
        records[op.index()].end = now + t;
        device_busy_time[d] += t;
        device_free[d] = false;
        payload.push(Event::OpFinish { op });
        events.push(Reverse((OrderedF64(now + t), *seq, payload.len() - 1)));
        *seq += 1;
        Ok(())
    }

    // Kick off every device.
    for d in 0..n_dev {
        dispatch(
            d,
            0.0,
            graph,
            topo,
            hw,
            config,
            &mut queues,
            &mut device_free,
            &mut device_busy_time,
            &mut mem_used,
            &mut mem_peak,
            &mut records,
            &mut events,
            &mut event_payload,
            &mut seq,
            &mut mem_timeline,
            &mut reexecutions,
        )?;
    }

    let _loop_phase = config
        .collector
        .as_deref()
        .map(|c| c.phase("sim.event_loop"));
    let mut makespan = 0.0f64;
    while let Some(Reverse((OrderedF64(now), _, idx))) = events.pop() {
        steps += 1;
        makespan = makespan.max(now);
        // Take the payload without shifting indices.
        let ev = std::mem::replace(&mut event_payload[idx], Event::Consumed);
        match ev {
            Event::OpFinish { op } => {
                executed += 1;
                let d = placement.device_of(op).index();
                device_free[d] = true;

                // Free predecessors whose last consumer just finished.
                for e in graph.in_edges(op) {
                    let s = e.src.index();
                    out_remaining[s] -= 1;
                    if out_remaining[s] == 0 {
                        let sd = placement.device_of(e.src).index();
                        let act = hw.activation_bytes(graph.op_ref(e.src));
                        mem_used[sd] = mem_used[sd].saturating_sub(act);
                        if config.record_mem_timeline && act > 0 {
                            mem_timeline.push(MemSample {
                                t: now,
                                device: DeviceId(sd as u16),
                                bytes: mem_used[sd],
                            });
                        }
                    }
                }
                // Sinks free their own output immediately.
                if out_remaining[op.index()] == 0 {
                    let act = hw.activation_bytes(graph.op_ref(op));
                    mem_used[d] = mem_used[d].saturating_sub(act);
                    if config.record_mem_timeline && act > 0 {
                        mem_timeline.push(MemSample {
                            t: now,
                            device: DeviceId(d as u16),
                            bytes: mem_used[d],
                        });
                    }
                }

                // Deliver outputs per the communication plan: local
                // consumers unblock inline (the tensor is already on their
                // device — including collective participants), point-to-point
                // sends run hop by hop along their routes, and edges into
                // collective nodes count toward the collective's readiness.
                let sd = placement.device_of(op);
                let oc = &plan.op_comm[op.index()];
                let mut wake: Vec<usize> = Vec::new();
                for &dst in &oc.local {
                    indeg[dst.index()] -= 1;
                    if indeg[dst.index()] == 0 {
                        records[dst.index()].ready = now;
                        let dd = placement.device_of(dst).index();
                        queues[dd].push(dst, priority[dst.index()]);
                        if dd != d && !wake.contains(&dd) {
                            wake.push(dd);
                        }
                    }
                }
                wake.sort_unstable();
                for send in &oc.sends {
                    let arrive = run_route(
                        &send.route,
                        send.bytes,
                        op,
                        send.dsts[0],
                        now,
                        (sd, send.dst_dev),
                        1.0,
                        topo,
                        config,
                        &mut channels,
                        &mut contention,
                        &mut transfers,
                        &mut comm_retry_count,
                    )?;
                    if config.attempt == 0 {
                        if let Some(col) = &config.collector {
                            col.emit(
                                "comm.step",
                                jobj! {
                                    "op" => op.0 as u64,
                                    "src_dev" => sd.0 as u64,
                                    "dst_dev" => send.dst_dev.0 as u64,
                                    "bytes" => send.bytes,
                                    "hops" => send.route.len() as u64,
                                    "start" => now,
                                    "end" => arrive,
                                },
                            );
                        }
                    }
                    push_event(
                        &mut events,
                        &mut event_payload,
                        &mut seq,
                        arrive,
                        Event::TransferArrive {
                            dsts: send.dsts.clone(),
                        },
                    );
                }
                for &node in &oc.feeds {
                    coll_pending[node.index()] -= 1;
                    if coll_pending[node.index()] != 0 {
                        continue;
                    }
                    let step = plan
                        .collective(node)
                        .expect("fed node carries a collective step");
                    let end = match run_collective(
                        step,
                        now,
                        topo,
                        config,
                        &mut channels,
                        &mut contention,
                        &mut transfers,
                        &mut comm_retry_count,
                    ) {
                        Ok(end) => end,
                        Err(e) => {
                            // Deterministic abort: the ring cannot finish
                            // (partition, dead staging, flap past budget) —
                            // surface the typed cause instead of hanging.
                            if config.attempt == 0 {
                                if let Some(col) = &config.collector {
                                    col.metrics().inc("comm.collective_aborts");
                                    col.emit(
                                        "comm.collective_abort",
                                        jobj! {
                                            "node" => node.0 as u64,
                                            "kind" => step.kind.to_string().as_str(),
                                            "participants" => step.participants.len() as u64,
                                            "error" => e.to_string().as_str(),
                                            "iteration" => config.iteration,
                                        },
                                    );
                                }
                            }
                            return Err(e);
                        }
                    };
                    collectives_run.push(CollectiveRecord {
                        node,
                        kind: step.kind,
                        participants: step.participants.clone(),
                        bytes: step.bytes,
                        start: now,
                        end,
                    });
                    if config.attempt == 0 {
                        if let Some(col) = &config.collector {
                            col.metrics().inc("comm.collectives");
                            col.emit(
                                "comm.collective",
                                jobj! {
                                    "node" => node.0 as u64,
                                    "kind" => step.kind.to_string().as_str(),
                                    "participants" => step.participants.len() as u64,
                                    "bytes" => step.bytes,
                                    "start" => now,
                                    "end" => end,
                                },
                            );
                        }
                    }
                    push_event(
                        &mut events,
                        &mut event_payload,
                        &mut seq,
                        end,
                        Event::CollectiveDone { node },
                    );
                }

                for dd in wake {
                    dispatch(
                        dd,
                        now,
                        graph,
                        topo,
                        hw,
                        config,
                        &mut queues,
                        &mut device_free,
                        &mut device_busy_time,
                        &mut mem_used,
                        &mut mem_peak,
                        &mut records,
                        &mut events,
                        &mut event_payload,
                        &mut seq,
                        &mut mem_timeline,
                        &mut reexecutions,
                    )?;
                }
                dispatch(
                    d,
                    now,
                    graph,
                    topo,
                    hw,
                    config,
                    &mut queues,
                    &mut device_free,
                    &mut device_busy_time,
                    &mut mem_used,
                    &mut mem_peak,
                    &mut records,
                    &mut events,
                    &mut event_payload,
                    &mut seq,
                    &mut mem_timeline,
                    &mut reexecutions,
                )?;
            }
            Event::TransferArrive { dsts } => {
                let dd = placement.device_of(dsts[0]).index();
                for dst in dsts {
                    indeg[dst.index()] -= 1;
                    if indeg[dst.index()] == 0 {
                        records[dst.index()].ready = now;
                        queues[dd].push(dst, priority[dst.index()]);
                    }
                }
                dispatch(
                    dd,
                    now,
                    graph,
                    topo,
                    hw,
                    config,
                    &mut queues,
                    &mut device_free,
                    &mut device_busy_time,
                    &mut mem_used,
                    &mut mem_peak,
                    &mut records,
                    &mut events,
                    &mut event_payload,
                    &mut seq,
                    &mut mem_timeline,
                    &mut reexecutions,
                )?;
            }
            Event::CollectiveDone { node } => {
                // The ring already moved (and reduced) the data; the node
                // itself now runs as an ordinary op on its device.
                indeg[node.index()] = 0;
                let dd = placement.device_of(node).index();
                records[node.index()].ready = now;
                queues[dd].push(node, priority[node.index()]);
                dispatch(
                    dd,
                    now,
                    graph,
                    topo,
                    hw,
                    config,
                    &mut queues,
                    &mut device_free,
                    &mut device_busy_time,
                    &mut mem_used,
                    &mut mem_peak,
                    &mut records,
                    &mut events,
                    &mut event_payload,
                    &mut seq,
                    &mut mem_timeline,
                    &mut reexecutions,
                )?;
            }
            Event::Consumed => unreachable!("each event index is popped once"),
        }
    }

    if executed != n_ops {
        return Err(SimError::Deadlock {
            executed,
            total: n_ops,
        });
    }

    let trace = RunTrace {
        op_records: records,
        transfers,
        collectives: collectives_run,
        makespan: makespan + config.iteration_overhead,
        device_busy: device_busy_time,
        peak_mem: mem_peak,
        contention,
        steps,
        mem_timeline,
        reexecutions,
        comm_retries: comm_retry_count,
    };
    if let Some(col) = &config.collector {
        let m = col.metrics();
        m.inc("sim.iterations");
        m.add("sim.steps", trace.steps);
        m.add("sim.transfers", trace.transfers.len() as u64);
        m.add("sim.ops_executed", executed as u64);
        m.observe("sim.makespan", trace.makespan);
        let queue_wait = trace.device_queue_wait();
        col.emit(
            "sim.iteration",
            jobj! {
                "iteration" => config.iteration,
                "makespan" => trace.makespan,
                "steps" => trace.steps,
                "ops" => executed as u64,
                "transfers" => trace.transfers.len() as u64,
                "collectives" => trace.collectives.len() as u64,
                "contention" => trace.contention,
                "queue_wait" => fastt_telemetry::Value::arr(queue_wait),
                "peak_mem" => fastt_telemetry::Value::arr(trace.peak_mem.clone()),
            },
        );
    }
    Ok(trace)
}

/// Total-ordered f64 wrapper for the event heap (times are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
