//! Per-device ready queues.
//!
//! TensorFlow's default executor pops ready ops FIFO; FastT's order
//! enforcement replaces this with priorities derived from the computed
//! execution order (Sec. 6.1, "Order Enforcement"). The simulator supports
//! both policies so the paper's Fig. 2 comparison can be reproduced.

use fastt_graph::OpId;
use std::collections::{BinaryHeap, VecDeque};

/// How a device's executor picks the next ready op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy<'a> {
    /// TensorFlow's default: first-in-first-out over ready ops.
    Fifo,
    /// FastT's order enforcement: each op's priority is its index in the
    /// computed execution-order list; lower index runs first.
    Priority(&'a [OpId]),
}

/// One device's ready queue.
#[derive(Debug)]
pub(crate) enum ReadyQueue {
    Fifo(VecDeque<OpId>),
    /// Min-heap on (priority, op id) via `Reverse` ordering.
    Priority(BinaryHeap<std::cmp::Reverse<(u32, OpId)>>),
}

impl ReadyQueue {
    pub(crate) fn new_fifo() -> Self {
        ReadyQueue::Fifo(VecDeque::new())
    }

    pub(crate) fn new_priority() -> Self {
        ReadyQueue::Priority(BinaryHeap::new())
    }

    /// Adds a ready op (with its priority, ignored under FIFO).
    pub(crate) fn push(&mut self, op: OpId, priority: u32) {
        match self {
            ReadyQueue::Fifo(q) => q.push_back(op),
            ReadyQueue::Priority(h) => h.push(std::cmp::Reverse((priority, op))),
        }
    }

    /// Pops the next op to execute.
    pub(crate) fn pop(&mut self) -> Option<OpId> {
        match self {
            ReadyQueue::Fifo(q) => q.pop_front(),
            ReadyQueue::Priority(h) => h.pop().map(|std::cmp::Reverse((_, op))| op),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            ReadyQueue::Fifo(q) => q.is_empty(),
            ReadyQueue::Priority(h) => h.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_insertion_order() {
        let mut q = ReadyQueue::new_fifo();
        q.push(OpId(5), 99);
        q.push(OpId(1), 0);
        assert_eq!(q.pop(), Some(OpId(5)));
        assert_eq!(q.pop(), Some(OpId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_pops_lowest_first() {
        let mut q = ReadyQueue::new_priority();
        q.push(OpId(5), 10);
        q.push(OpId(1), 3);
        q.push(OpId(9), 7);
        assert_eq!(q.pop(), Some(OpId(1)));
        assert_eq!(q.pop(), Some(OpId(9)));
        assert_eq!(q.pop(), Some(OpId(5)));
    }

    #[test]
    fn priority_ties_break_by_op_id() {
        let mut q = ReadyQueue::new_priority();
        q.push(OpId(7), 1);
        q.push(OpId(2), 1);
        assert_eq!(q.pop(), Some(OpId(2)));
        assert_eq!(q.pop(), Some(OpId(7)));
    }

    #[test]
    fn emptiness() {
        let mut q = ReadyQueue::new_priority();
        assert!(q.is_empty());
        q.push(OpId(0), 0);
        assert!(!q.is_empty());
    }
}
