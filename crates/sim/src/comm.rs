//! The communication plan: a lowered IR of every transfer an iteration
//! performs.
//!
//! [`CommPlan::lower`] turns `(graph, placement, topology)` into per-op
//! [`OpComm`] delivery lists (local hand-offs, point-to-point sends with
//! their physical multi-hop routes) and per-node [`CollectiveStep`]s for ops
//! annotated with a [`CollectiveKind`] — **once**, before the event loop
//! runs, instead of rediscovering the communication structure edge-by-edge
//! inside the engine. The engine then merely *executes* the plan over
//! per-link channel timelines: route hops serialize on their links, ring
//! phases serialize on every hop simultaneously, and compute/communication
//! overlap falls out of the event queue as before.

use crate::error::SimError;
use crate::placement::Placement;
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{CollectiveKind, Graph, OpId};
use std::collections::{HashMap, VecDeque};

/// One point-to-point delivery: the producer's output tensor sent to one
/// destination device (TensorFlow's send/recv dedup — a tensor crosses to a
/// device once and fans out locally), staged along its physical route.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pSend {
    /// Destination device.
    pub dst_dev: DeviceId,
    /// Bytes moved (the largest edge payload into that device).
    pub bytes: u64,
    /// Consumers unblocked on arrival — one entry per satisfied in-edge.
    pub dsts: Vec<OpId>,
    /// Physical hops ([`Topology::route`]): one direct hop within a server,
    /// PCIe→NIC→PCIe staging across servers.
    pub route: Vec<(DeviceId, DeviceId)>,
}

/// How one op's outputs are delivered once it finishes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpComm {
    /// Consumers receiving the output locally (no transfer) — one entry per
    /// in-edge satisfied. For a collective node this includes the consumers
    /// on participant devices, which already hold the reduced tensor.
    pub local: Vec<OpId>,
    /// One send per remote destination device, sorted by device id (the
    /// engine's deterministic event order depends on it).
    pub sends: Vec<P2pSend>,
    /// Collective nodes fed by this op — one entry per in-edge contributed.
    /// The edge is handled by the collective, not by a point-to-point send.
    pub feeds: Vec<OpId>,
}

/// A lowered collective: the communication performed by one
/// collective-annotated node's incoming edges.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveStep {
    /// The annotated node.
    pub node: OpId,
    /// The pattern.
    pub kind: CollectiveKind,
    /// Participating devices (the producers' devices, sorted, deduped).
    /// Ring hops are `participants[i] → participants[(i+1) % n]`.
    pub participants: Vec<DeviceId>,
    /// Full tensor bytes (the largest in-edge payload).
    pub bytes: u64,
    /// In-edge count: the engine counts producer finishes against this
    /// before the collective can start.
    pub pending: u32,
}

impl CollectiveStep {
    /// Number of synchronized ring phases this collective runs: `2(n−1)`
    /// for all-reduce, `n−1` for reduce-scatter/all-gather, one
    /// root-fan-out round (counted as 1) for broadcast. Degenerate rings
    /// (fewer than two participants) run zero phases.
    pub fn phases(&self) -> u32 {
        let n = self.participants.len() as u32;
        if n < 2 {
            return 0;
        }
        match self.kind {
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::ReduceScatter | CollectiveKind::AllGather => n - 1,
            CollectiveKind::Broadcast => 1,
        }
    }

    /// Bytes each ring phase moves per hop: `bytes/n` chunks for the ring
    /// collectives, the full tensor for broadcast.
    pub fn chunk_bytes(&self) -> u64 {
        let n = self.participants.len() as u64;
        if n < 2 {
            return 0;
        }
        match self.kind {
            CollectiveKind::Broadcast => self.bytes,
            _ => self.bytes.div_ceil(n),
        }
    }
}

/// The complete communication plan of one placed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct CommPlan {
    /// Delivery list per op, indexed by `OpId`.
    pub op_comm: Vec<OpComm>,
    /// Lowered collective per op, indexed by `OpId`; `None` for ordinary
    /// ops. A collective node placed so that all its producers share one
    /// device lowers to `None` degenerate handling (its `pending` still
    /// gates readiness but no ring runs).
    pub collectives: Vec<Option<CollectiveStep>>,
}

impl CommPlan {
    /// Lowers the communication structure of `(graph, placement, topo)`.
    ///
    /// Rules:
    /// * an edge into a [`CollectiveKind`]-annotated node is subsumed by
    ///   that node's collective step (ring phases over the producers'
    ///   devices), never a point-to-point send;
    /// * any other cross-device edge joins the per-destination-device send
    ///   of its producer (largest payload wins, consumers fan out locally),
    ///   routed via [`Topology::route`];
    /// * out-edges of a collective node deliver locally to consumers on
    ///   participant devices — the collective already left the reduced
    ///   tensor there — and as routed sends elsewhere.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidPlacement`] if an op sits on an unknown or
    ///   blacklisted device (the pre-route engine panicked here);
    /// * [`SimError::Unreachable`] if a cross-device edge has no live
    ///   route — every candidate staging crosses a failed link.
    pub fn lower(
        graph: &Graph,
        placement: &Placement,
        topo: &Topology,
    ) -> Result<CommPlan, SimError> {
        let n_ops = graph.op_count();
        for (id, _) in graph.iter_ops() {
            let d = placement.device_of(id);
            if d.index() >= topo.device_count() {
                return Err(SimError::InvalidPlacement(format!(
                    "op {} placed on unknown device {d}",
                    id.0
                )));
            }
            if topo.is_failed(d) {
                return Err(SimError::InvalidPlacement(format!(
                    "op {} placed on blacklisted device {d}",
                    id.0
                )));
            }
        }
        let mut collectives: Vec<Option<CollectiveStep>> = vec![None; n_ops];
        for (id, op) in graph.iter_ops() {
            let Some(kind) = op.collective else { continue };
            let mut pending = 0u32;
            let mut participants: Vec<DeviceId> = Vec::new();
            let mut bytes = 0u64;
            for e in graph.in_edges(id) {
                pending += 1;
                bytes = bytes.max(e.bytes);
                let d = placement.device_of(e.src);
                if !participants.contains(&d) {
                    participants.push(d);
                }
            }
            participants.sort_unstable();
            collectives[id.index()] = Some(CollectiveStep {
                node: id,
                kind,
                participants,
                bytes,
                pending,
            });
        }

        let mut op_comm: Vec<OpComm> = vec![OpComm::default(); n_ops];
        for (id, _) in graph.iter_ops() {
            let src_dev = placement.device_of(id);
            let mut oc = OpComm::default();
            // participant devices of this op's own collective (if any)
            // already hold the result when the node finishes
            let own_participants: &[DeviceId] = match &collectives[id.index()] {
                Some(c) => &c.participants,
                None => &[],
            };
            let mut remote: HashMap<DeviceId, (u64, Vec<OpId>)> = HashMap::new();
            for e in graph.out_edges(id) {
                if collectives[e.dst.index()].is_some() {
                    oc.feeds.push(e.dst);
                    continue;
                }
                let dd = placement.device_of(e.dst);
                if dd == src_dev || own_participants.contains(&dd) {
                    oc.local.push(e.dst);
                } else {
                    let entry = remote.entry(dd).or_insert((0, Vec::new()));
                    entry.0 = entry.0.max(e.bytes);
                    entry.1.push(e.dst);
                }
            }
            let mut sends: Vec<(DeviceId, (u64, Vec<OpId>))> = remote.into_iter().collect();
            sends.sort_by_key(|(d, _)| *d); // deterministic event order
            oc.sends = sends
                .into_iter()
                .map(|(dd, (bytes, dsts))| {
                    let route = topo.try_route(src_dev, dd).ok_or(SimError::Unreachable {
                        src: src_dev,
                        dst: dd,
                    })?;
                    Ok(P2pSend {
                        dst_dev: dd,
                        bytes,
                        dsts,
                        route,
                    })
                })
                .collect::<Result<Vec<_>, SimError>>()?;
            op_comm[id.index()] = oc;
        }
        Ok(CommPlan {
            op_comm,
            collectives,
        })
    }

    /// The collective step of `node`, if it is a collective.
    pub fn collective(&self, node: OpId) -> Option<&CollectiveStep> {
        self.collectives[node.index()].as_ref()
    }

    /// Checks the plan against the *current* link health of `topo` and
    /// against itself: every route hop and every collective ring hop must
    /// run over a live link, and the delivery structure (local hand-offs ∪
    /// point-to-point fan-outs ∪ collective feeds) must be acyclic —
    /// acyclicity is what guarantees the engine's event loop, whatever the
    /// priority order, always has a runnable op and cannot deadlock.
    ///
    /// [`CommPlan::lower`] only produces valid plans; the validator exists
    /// for plans that *outlive* a health change (a session re-using a
    /// cached plan after a link died must re-validate it) and as the
    /// deadlock-freedom regression gate.
    ///
    /// # Errors
    ///
    /// * [`SimError::LinkDown`] (at `iteration`) if a stored send route
    ///   crosses a failed link;
    /// * [`SimError::Unreachable`] if a ring-hop pair has no live route;
    /// * [`SimError::Deadlock`] if the delivery edges contain a cycle.
    pub fn validate(&self, topo: &Topology, iteration: u64) -> Result<(), SimError> {
        for oc in &self.op_comm {
            for send in &oc.sends {
                for &(a, b) in &send.route {
                    if topo.is_link_failed(a, b) {
                        return Err(SimError::LinkDown {
                            src: a,
                            dst: b,
                            iteration,
                        });
                    }
                }
            }
        }
        for step in self.collectives.iter().flatten() {
            let n = step.participants.len();
            if n < 2 {
                continue;
            }
            // Ring hops resolve their routes at execution time, so the
            // live question is reachability, not a stale stored route.
            for i in 0..n {
                let a = step.participants[i];
                let b = step.participants[(i + 1) % n];
                if topo.try_route(a, b).is_none() {
                    return Err(SimError::Unreachable { src: a, dst: b });
                }
            }
        }
        // Kahn's algorithm over the plan's own delivery edges.
        let n_ops = self.op_comm.len();
        let mut indeg = vec![0u32; n_ops];
        let each_edge = |oc: &OpComm, mut f: Box<dyn FnMut(OpId) + '_>| {
            for &d in &oc.local {
                f(d);
            }
            for s in &oc.sends {
                for &d in &s.dsts {
                    f(d);
                }
            }
            for &d in &oc.feeds {
                f(d);
            }
        };
        for oc in &self.op_comm {
            each_edge(oc, Box::new(|d| indeg[d.index()] += 1));
        }
        let mut queue: VecDeque<usize> = (0..n_ops).filter(|&i| indeg[i] == 0).collect();
        let mut processed = 0usize;
        while let Some(i) = queue.pop_front() {
            processed += 1;
            each_edge(
                &self.op_comm[i],
                Box::new(|d| {
                    indeg[d.index()] -= 1;
                    if indeg[d.index()] == 0 {
                        queue.push_back(d.index());
                    }
                }),
            );
        }
        if processed != n_ops {
            return Err(SimError::Deadlock {
                executed: processed,
                total: n_ops,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    fn grad_graph() -> (Graph, [OpId; 4]) {
        // three per-device grads feeding an all-reduce agg, one consumer
        let mut g = Graph::new();
        let g0 = g
            .add_op(Operation::new("g0", OpKind::EltwiseGrad, [256]))
            .unwrap();
        let g1 = g
            .add_op(Operation::new("g1", OpKind::EltwiseGrad, [256]))
            .unwrap();
        let agg = g
            .add_op(
                Operation::new("agg", OpKind::AggregateGradients, [256])
                    .with_collective(CollectiveKind::AllReduce),
            )
            .unwrap();
        let apply = g
            .add_op(Operation::new("apply", OpKind::ApplyGradient, [256]))
            .unwrap();
        g.connect_bytes(g0, agg, 1024).unwrap();
        g.connect_bytes(g1, agg, 1024).unwrap();
        g.connect_bytes(agg, apply, 1024).unwrap();
        (g, [g0, g1, agg, apply])
    }

    #[test]
    fn lowers_collective_with_ring_arithmetic() {
        let (g, [g0, g1, agg, _]) = grad_graph();
        let topo = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(g1, DeviceId(1));
        let plan = CommPlan::lower(&g, &p, &topo).unwrap();
        let c = plan.collective(agg).expect("collective step");
        assert_eq!(c.kind, CollectiveKind::AllReduce);
        assert_eq!(c.participants, vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(c.bytes, 1024);
        assert_eq!(c.pending, 2);
        assert_eq!(c.phases(), 2); // 2(n−1), n = 2
        assert_eq!(c.chunk_bytes(), 512);
        // producer edges feed the collective, not point-to-point sends
        assert_eq!(plan.op_comm[g0.index()].feeds, vec![agg]);
        assert_eq!(plan.op_comm[g1.index()].feeds, vec![agg]);
        assert!(plan.op_comm[g0.index()].sends.is_empty());
    }

    #[test]
    fn collective_output_is_local_on_participant_devices() {
        let (g, [_, g1, agg, apply]) = grad_graph();
        let topo = Topology::single_server(4);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(g1, DeviceId(1));
        // consumer on a participant device: no transfer needed
        p.set(apply, DeviceId(1));
        let plan = CommPlan::lower(&g, &p, &topo).unwrap();
        assert_eq!(plan.op_comm[agg.index()].local, vec![apply]);
        assert!(plan.op_comm[agg.index()].sends.is_empty());
        // consumer outside the ring: routed send
        let mut p2 = p.clone();
        p2.set(apply, DeviceId(3));
        let plan2 = CommPlan::lower(&g, &p2, &topo).unwrap();
        assert!(plan2.op_comm[agg.index()].local.is_empty());
        assert_eq!(plan2.op_comm[agg.index()].sends.len(), 1);
        assert_eq!(plan2.op_comm[agg.index()].sends[0].dst_dev, DeviceId(3));
    }

    #[test]
    fn p2p_sends_carry_multi_hop_routes() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [64])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [64])).unwrap();
        g.connect_bytes(a, b, 256).unwrap();
        let topo = Topology::multi_server(2, 2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(b, DeviceId(2));
        let plan = CommPlan::lower(&g, &p, &topo).unwrap();
        let send = &plan.op_comm[a.index()].sends[0];
        assert_eq!(send.route.len(), 3, "PCIe → NIC → PCIe staging");
        assert_eq!(send.route[0].0, DeviceId(0));
        assert_eq!(send.route[2].1, DeviceId(2));
    }

    #[test]
    fn lower_rejects_blacklisted_device_and_unroutable_pair() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [64])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [64])).unwrap();
        g.connect_bytes(a, b, 256).unwrap();
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(b, DeviceId(1));
        // blacklisted destination: typed InvalidPlacement, no panic
        let mut topo = Topology::single_server(2);
        topo.fail_device(DeviceId(1));
        assert!(matches!(
            CommPlan::lower(&g, &p, &topo),
            Err(SimError::InvalidPlacement(_))
        ));
        // fully partitioned pair: typed Unreachable
        let mut topo = Topology::single_server(2);
        let h = topo.host_of(0).unwrap();
        topo.fail_link(DeviceId(0), DeviceId(1));
        topo.fail_link(DeviceId(0), h);
        assert_eq!(
            CommPlan::lower(&g, &p, &topo),
            Err(SimError::Unreachable {
                src: DeviceId(0),
                dst: DeviceId(1),
            })
        );
    }

    #[test]
    fn validate_rejects_plans_referencing_dead_links() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [64])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [64])).unwrap();
        g.connect_bytes(a, b, 256).unwrap();
        let mut topo = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(b, DeviceId(1));
        let plan = CommPlan::lower(&g, &p, &topo).unwrap();
        assert_eq!(plan.validate(&topo, 0), Ok(()));
        // the link dies after lowering: the cached plan must be rejected
        topo.fail_link(DeviceId(0), DeviceId(1));
        assert_eq!(
            plan.validate(&topo, 3),
            Err(SimError::LinkDown {
                src: DeviceId(0),
                dst: DeviceId(1),
                iteration: 3,
            })
        );
        // re-lowering routes around it and validates again
        let plan2 = CommPlan::lower(&g, &p, &topo).unwrap();
        assert_eq!(plan2.op_comm[a.index()].sends[0].route.len(), 2);
        assert_eq!(plan2.validate(&topo, 3), Ok(()));
        // a ring whose participant pair went unreachable is caught too
        let (cg, [_, g1, _, _]) = grad_graph();
        let mut cp = Placement::uniform(cg.op_count(), DeviceId(0));
        cp.set(g1, DeviceId(1));
        let cplan = CommPlan::lower(&cg, &cp, &Topology::single_server(2)).unwrap();
        let mut ring_topo = Topology::single_server(2);
        let h2 = ring_topo.host_of(0).unwrap();
        ring_topo.fail_link(DeviceId(0), DeviceId(1));
        ring_topo.fail_link(DeviceId(0), h2);
        assert!(matches!(
            cplan.validate(&ring_topo, 0),
            Err(SimError::Unreachable { .. })
        ));
    }

    #[test]
    fn validate_detects_delivery_cycles() {
        // Graphs are DAGs by construction, so deadlock-freedom rests on the
        // plan's delivery edges staying acyclic — prove the detector would
        // catch a hand-corrupted plan (e.g. a bad retry edge) regardless of
        // priority order.
        let (g, [g0, g1, agg, _]) = grad_graph();
        let topo = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(g1, DeviceId(1));
        let mut plan = CommPlan::lower(&g, &p, &topo).unwrap();
        assert_eq!(plan.validate(&topo, 0), Ok(()));
        // corrupt: the collective "feeds back" into one of its producers
        plan.op_comm[agg.index()].local.push(g0);
        assert!(matches!(
            plan.validate(&topo, 0),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn degenerate_single_device_collective_runs_no_phases() {
        let (g, [_, _, agg, _]) = grad_graph();
        let topo = Topology::single_server(2);
        let p = Placement::uniform(g.op_count(), DeviceId(0));
        let plan = CommPlan::lower(&g, &p, &topo).unwrap();
        let c = plan.collective(agg).unwrap();
        assert_eq!(c.participants, vec![DeviceId(0)]);
        assert_eq!(c.phases(), 0);
        assert_eq!(c.pending, 2, "readiness still gated on both producers");
    }
}
