//! Post-hoc analysis of execution traces: where the time actually went.
//!
//! The paper's evaluation reasons about idle gaps ("there could be gap time
//! between operation executions", Sec. 5.1), measured critical paths
//! (OS-DPOS re-derives the critical path from the *placed* costs), and
//! computation-vs-memcpy breakdowns (Fig. 5). This module computes all three
//! from a [`RunTrace`].

use crate::trace::RunTrace;
use fastt_cluster::DeviceId;
use fastt_graph::{Graph, OpId};

/// An idle interval on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleGap {
    /// The idle device.
    pub device: DeviceId,
    /// Gap start time.
    pub start: f64,
    /// Gap end time.
    pub end: f64,
}

impl IdleGap {
    /// Gap duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// All idle gaps on `device` between the start of its first op and the end
/// of its last (gaps shorter than `min_len` are dropped).
pub fn idle_gaps(trace: &RunTrace, device: DeviceId, min_len: f64) -> Vec<IdleGap> {
    let mut busy: Vec<(f64, f64)> = trace
        .op_records
        .iter()
        .filter(|r| r.device == device && r.start >= 0.0)
        .map(|r| (r.start, r.end))
        .collect();
    busy.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut gaps = Vec::new();
    for w in busy.windows(2) {
        let gap = w[1].0 - w[0].1;
        if gap > min_len {
            gaps.push(IdleGap {
                device,
                start: w[0].1,
                end: w[1].0,
            });
        }
    }
    gaps
}

/// The *measured* critical path of an executed iteration: walk backwards
/// from the op that finished last, at each step following the predecessor
/// (or incoming transfer) whose completion gated the current op's start.
/// Returns ops from entry to exit.
pub fn measured_critical_path(graph: &Graph, trace: &RunTrace) -> Vec<OpId> {
    let mut cur = match trace
        .op_records
        .iter()
        .filter(|r| r.start >= 0.0)
        .max_by(|a, b| a.end.total_cmp(&b.end))
    {
        Some(r) => r.op,
        None => return Vec::new(),
    };
    let mut path = vec![cur];
    loop {
        let started = trace.op_record(cur).start;
        // the gating predecessor: latest data arrival among inputs
        let mut best: Option<(f64, OpId)> = None;
        for e in graph.in_edges(cur) {
            let src = trace.op_record(e.src);
            // arrival = src end, or transfer end when remote
            let arrival = if src.device == trace.op_record(cur).device {
                src.end
            } else {
                trace
                    .transfers
                    .iter()
                    .filter(|t| t.src_op == e.src && t.dst_dev == trace.op_record(cur).device)
                    .map(|t| t.end)
                    .fold(src.end, f64::max)
            };
            if arrival <= started + 1e-9 && best.map(|(a, _)| arrival > a).unwrap_or(true) {
                best = Some((arrival, e.src));
            }
        }
        match best {
            Some((_, p)) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Total transferred bytes per (source device, destination device) pair.
pub fn traffic_matrix(trace: &RunTrace, n_devices: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n_devices]; n_devices];
    for t in &trace.transfers {
        if t.src_dev.index() < n_devices && t.dst_dev.index() < n_devices {
            m[t.src_dev.index()][t.dst_dev.index()] += t.bytes;
        }
    }
    m
}

/// Fraction of the makespan during which compute overlapped with at least
/// one in-flight transfer — how well communication is hidden (the effect
/// behind Fig. 5's "per-iteration time is not the sum of computation and
/// memcpy time").
pub fn overlap_fraction(trace: &RunTrace) -> f64 {
    if trace.makespan <= 0.0 {
        return 0.0;
    }
    // sweep: collect transfer intervals, measure their union intersected
    // with any-compute intervals; approximate with sampling-free sweep over
    // event boundaries
    let mut points: Vec<f64> = Vec::new();
    for r in &trace.op_records {
        points.push(r.start);
        points.push(r.end);
    }
    for t in &trace.transfers {
        points.push(t.start);
        points.push(t.end);
    }
    points.sort_by(f64::total_cmp);
    points.dedup();
    let mut overlapped = 0.0;
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let mid = (a + b) / 2.0;
        let compute = trace
            .op_records
            .iter()
            .any(|r| r.start <= mid && mid < r.end);
        let transfer = trace
            .transfers
            .iter()
            .any(|t| t.start <= mid && mid < t.end);
        if compute && transfer {
            overlapped += b - a;
        }
    }
    overlapped / trace.makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpRecord, TransferRecord};

    fn two_device_trace() -> (Graph, RunTrace) {
        use fastt_graph::{OpKind, Operation};
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [4])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [4])).unwrap();
        let c = g.add_op(Operation::new("c", OpKind::Relu, [4])).unwrap();
        g.connect(a, b).unwrap();
        g.connect(b, c).unwrap();
        let trace = RunTrace {
            op_records: vec![
                OpRecord {
                    op: a,
                    device: DeviceId(0),
                    ready: 0.0,
                    start: 0.0,
                    end: 1.0,
                },
                OpRecord {
                    op: b,
                    device: DeviceId(1),
                    ready: 1.5,
                    start: 1.5,
                    end: 2.5,
                },
                OpRecord {
                    op: c,
                    device: DeviceId(1),
                    ready: 4.0,
                    start: 4.0,
                    end: 5.0,
                },
            ],
            transfers: vec![TransferRecord {
                src_op: a,
                dst_op: b,
                src_dev: DeviceId(0),
                dst_dev: DeviceId(1),
                bytes: 16,
                start: 1.0,
                end: 1.5,
            }],
            collectives: Vec::new(),
            makespan: 5.0,
            device_busy: vec![1.0, 2.0],
            peak_mem: vec![0, 0],
            contention: 0.0,
            steps: 0,
            mem_timeline: Vec::new(),
            reexecutions: 0,
            comm_retries: 0,
        };
        (g, trace)
    }

    #[test]
    fn finds_idle_gaps() {
        let (_, tr) = two_device_trace();
        let gaps = idle_gaps(&tr, DeviceId(1), 0.1);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].start, 2.5);
        assert_eq!(gaps[0].end, 4.0);
        assert!((gaps[0].duration() - 1.5).abs() < 1e-12);
        assert!(idle_gaps(&tr, DeviceId(0), 0.1).is_empty());
    }

    #[test]
    fn measured_cp_walks_gating_dependencies() {
        let (g, tr) = two_device_trace();
        let cp = measured_critical_path(&g, &tr);
        let names: Vec<&str> = cp.iter().map(|&o| g.op_ref(o).name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn traffic_matrix_sums_bytes() {
        let (_, tr) = two_device_trace();
        let m = traffic_matrix(&tr, 2);
        assert_eq!(m[0][1], 16);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn overlap_fraction_detects_hidden_comm() {
        let (_, tr) = two_device_trace();
        // transfer [1.0, 1.5) has no concurrent compute in this trace
        assert_eq!(overlap_fraction(&tr), 0.0);
        // move the transfer under op a's execution
        let mut tr2 = tr.clone();
        tr2.transfers[0].start = 0.2;
        tr2.transfers[0].end = 0.8;
        let f = overlap_fraction(&tr2);
        assert!((f - 0.6 / 5.0).abs() < 1e-9, "overlap {f}");
    }
}
