//! Deterministic seed derivation, unified.
//!
//! Every seeded surface in the workspace — fault schedules
//! ([`FaultSchedule::seeded*`](crate::FaultSchedule::seeded)), the fleet's
//! arrival workload (`fastt::fleet::seeded_workload`), per-job session
//! seeds, the black-box search planners, and the fuzzer's scenario
//! generator — used to derive sub-seeds with its own local LCG or
//! splitmix-and-salt arithmetic. [`SeedStream`] is the one shared utility:
//! a root seed plus a **domain tag** yields a stream whose draws are
//! collision-free against every other domain, and the domain registry
//! ([`domains`]) documents all reserved tags in one place.
//!
//! Two draw styles are exposed, matching the two styles the codebase
//! already relies on:
//!
//! * [`SeedStream::pick`] — *stateless*, salt-indexed: the draw for salt
//!   `s` is a pure function of `(root, domain, s)`, so call order cannot
//!   perturb other draws. Fault-schedule construction uses this.
//! * [`SeedStream::next`] — *sequential*: a classic 64-bit LCG (MMIX
//!   constants, top-31-bit output) whose draws depend on call order.
//!   Workload generation uses this.
//!
//! Both are cheap, dependency-free, and byte-stable across platforms, so
//! anything derived from them can be pinned in same-seed determinism
//! tests.

/// splitmix64 — the cheap deterministic hash underlying all stateless
/// derivations (the same finalizer the simulator's jitter stream uses).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The registry of reserved domain tags. A domain tag is XORed into the
/// root seed before any derivation, so two streams over the same root
/// seed but different domains never collide. Add new tags here — nowhere
/// else — so the full derivation story stays documented in one place.
pub mod domains {
    /// [`FaultSchedule::seeded`](crate::FaultSchedule::seeded) — device
    /// chaos (stragglers, transients, crashes). The historical scheme
    /// used the raw seed, hence tag `0`.
    pub const DEVICE_CHAOS: u64 = 0;
    /// [`FaultSchedule::seeded_network`](crate::FaultSchedule::seeded_network)
    /// — link flaps, collective stragglers, NIC degradation, partitions.
    pub const NETWORK_CHAOS: u64 = 0x4E7_F417;
    /// [`FaultSchedule::seeded_churn`](crate::FaultSchedule::seeded_churn)
    /// — spot revocations, arrivals, restores.
    pub const ELASTIC_CHURN: u64 = 0xC1_5C1E;
    /// `fastt::fleet::seeded_workload` — the multi-tenant arrival
    /// schedule (sequential draws).
    pub const FLEET_WORKLOAD: u64 = 0x5ee3_f1ee_7c0f_fee5;
    /// `fastt-fuzz` scenario enumeration (one sub-domain per axis is
    /// derived from this root via [`SeedStream::split`](super::SeedStream::split)).
    pub const FUZZ: u64 = 0xF0_22_ED_0A;
}

/// Reserved root seeds for the black-box search planners' `Default`
/// impls. Kept as small distinct primes for historical compatibility
/// (changing them would silently re-seed every default-configured
/// searcher); what matters is that they are distinct and live here,
/// next to every other reserved seed.
pub mod planner_roots {
    /// `ReinforcePlanner::default().seed`.
    pub const REINFORCE: u64 = 11;
    /// `CemPlanner::default().seed`.
    pub const CEM: u64 = 13;
    /// `McmcPlanner::default().seed`.
    pub const MCMC: u64 = 17;
    /// `RandomPlanner::default().seed`.
    pub const RANDOM: u64 = 19;
}

/// A splittable deterministic seed stream: a `(root seed, domain tag)`
/// pair supporting stateless salt-indexed draws, sequential LCG draws,
/// and collision-free sub-stream derivation. See the [module docs](self)
/// for the two draw styles and the [`domains`] registry.
#[derive(Debug, Clone)]
pub struct SeedStream {
    /// `root ^ domain` — the base all stateless draws hash from.
    base: u64,
    /// Sequential LCG state (starts at `base`).
    state: u64,
}

impl SeedStream {
    /// A stream over `seed` with no domain separation (tag `0`).
    pub fn new(seed: u64) -> Self {
        SeedStream {
            base: seed,
            state: seed,
        }
    }

    /// A domain-separated stream: draws are disjoint from every stream
    /// over the same seed with a different tag. Use a tag from
    /// [`domains`].
    pub fn domain(seed: u64, tag: u64) -> Self {
        Self::new(seed ^ tag)
    }

    /// Stateless salt-indexed draw in `0..modulo` (`0` when `modulo` is
    /// `0`). Pure in `(base, salt)`: reordering or interleaving calls
    /// cannot change any draw.
    pub fn pick(&self, salt: u64, modulo: u64) -> u64 {
        if modulo == 0 {
            0
        } else {
            splitmix64(self.base ^ splitmix64(salt)) % modulo
        }
    }

    /// Full-width stateless sub-seed for salt `salt` — hand these to
    /// other seeded components (a `SimConfig`, a searcher) so sibling
    /// components never share a stream.
    pub fn subseed(&self, salt: u64) -> u64 {
        splitmix64(self.base ^ splitmix64(salt))
    }

    /// A child stream rooted at [`SeedStream::subseed`]`(salt)` —
    /// collision-free against the parent and against any sibling split
    /// off with a different salt.
    pub fn split(&self, salt: u64) -> SeedStream {
        Self::new(self.subseed(salt))
    }

    /// The per-index derived seed `base + index · φ64` (golden-ratio
    /// stride, wrapping) — the scheme the fleet uses for per-job session
    /// seeds, kept as a named derivation so it is documented here.
    pub fn indexed(&self, index: u64) -> u64 {
        self.base
            .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Sequential draw: one LCG step (MMIX multiplier/increment), top 31
    /// bits returned. Order-dependent — use for workload-style streams
    /// where draws are consumed in a fixed documented order.
    ///
    /// Deliberately named like `Iterator::next` (it is the stream's
    /// sequential draw) without implementing the trait: the stream is
    /// infinite and the stateless accessors would make an `Iterator`
    /// impl misleading.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state >> 33
    }

    /// Sequential draw in `0..modulo` (`0` when `modulo` is `0`).
    pub fn next_in(&mut self, modulo: u64) -> u64 {
        let r = self.next();
        if modulo == 0 {
            0
        } else {
            r % modulo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_stateless_and_salt_sensitive() {
        let s = SeedStream::domain(21, domains::NETWORK_CHAOS);
        assert_eq!(s.pick(4, 100), s.pick(4, 100));
        let distinct = (0..64u64)
            .map(|salt| s.pick(salt, u64::MAX))
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(distinct.len(), 64, "salts must not collide");
    }

    #[test]
    fn domains_do_not_collide() {
        let a = SeedStream::domain(7, domains::NETWORK_CHAOS);
        let b = SeedStream::domain(7, domains::ELASTIC_CHURN);
        assert_ne!(a.pick(1, u64::MAX), b.pick(1, u64::MAX));
        assert_ne!(a.subseed(1), b.subseed(1));
    }

    #[test]
    fn splits_are_collision_free() {
        let root = SeedStream::domain(3, domains::FUZZ);
        let mut seen = std::collections::HashSet::new();
        for salt in 0..32u64 {
            let child = root.split(salt);
            assert!(seen.insert(child.pick(0, u64::MAX)));
        }
        // children diverge from the parent too
        assert_ne!(root.split(0).pick(5, u64::MAX), root.pick(5, u64::MAX));
    }

    #[test]
    fn sequential_stream_is_reproducible() {
        let mut a = SeedStream::domain(9, domains::FLEET_WORKLOAD);
        let mut b = SeedStream::domain(9, domains::FLEET_WORKLOAD);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        // 31-bit output
        assert!(xs.iter().all(|&x| x < (1 << 31)));
    }

    #[test]
    fn indexed_matches_golden_stride() {
        let s = SeedStream::new(21);
        assert_eq!(s.indexed(0), 21);
        assert_eq!(
            s.indexed(3),
            21u64.wrapping_add(3u64.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        );
    }
}
