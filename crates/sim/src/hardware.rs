//! The hidden hardware ground-truth performance and memory model.
//!
//! The paper runs on real V100s; FastT itself never sees the hardware
//! directly — it sees profiled execution times (Sec. 4, "Cost Models"). This
//! module plays the role of the physical GPU: it decides how long an op
//! *actually* takes on a device and how much memory it *actually* consumes.
//! The cost models in `fastt-cost` must learn these values through profiling,
//! exactly as the paper's module learns the testbed's behaviour.
//!
//! Constants are calibrated once, globally, against published V100
//! characteristics and the memory footprints reported for the benchmark
//! models (see DESIGN.md "Substitutions"); they are never tuned per
//! experiment.

use fastt_cluster::Device;
use fastt_graph::{Graph, OpId, OpKind, Operation};

/// Per-op kernel launch + framework dispatch overhead (seconds). Real
/// TensorFlow 1.x measures ~5–20 µs per op.
pub const LAUNCH_OVERHEAD: f64 = 10e-6;

/// How many copies of each parameter tensor stay resident per device:
/// the variable itself, its gradient buffer, and two Adam slots.
pub const OPTIMIZER_RESIDENT_FACTOR: u64 = 4;

/// Fraction of peak flops a kind sustains on a V100 for a large,
/// well-saturated kernel. Convolutions exceed what naive flop counting
/// suggests because cuDNN picks Winograd/FFT algorithms (TF 1.x autotunes);
/// GEMMs run near peak through cuBLAS.
fn efficiency(kind: OpKind) -> f64 {
    match kind {
        OpKind::Conv2D => 0.85,
        OpKind::Conv2DBackprop => 0.75,
        OpKind::MatMul => 0.75,
        OpKind::LstmCell => 0.60,
        OpKind::Attention => 0.50,
        _ => 0.10,
    }
}

/// Work (in flops) at which a kernel reaches half of its peak efficiency.
/// Small kernels cannot saturate a V100's 80 SMs — the effect behind the
/// paper's observation that "smaller batch size per GPU … cannot achieve
/// good GPU utilization" (Sec. 6.3).
pub const SATURATION_FLOPS: f64 = 2.0e8;

/// Utilization factor for a kernel of the given size.
fn saturation(flops: u64) -> f64 {
    let f = flops as f64;
    f / (f + SATURATION_FLOPS)
}

/// Multiplier on an op's output bytes that approximates the *actual*
/// allocation the op causes: fused kinds hide intermediate tensors
/// (attention scores and probabilities, unfused GeLU chains in TF 1.x),
/// while ReLU runs in place.
fn workspace_factor(kind: OpKind) -> f64 {
    match kind {
        OpKind::Relu => 0.3,
        OpKind::Gelu => 7.8,
        OpKind::Pool | OpKind::BatchNorm => 1.0,
        OpKind::LayerNorm => 2.0,
        OpKind::Softmax => 2.0,
        OpKind::Conv2D | OpKind::Conv2DBackprop => 1.2,
        OpKind::MatMul => 3.5,
        OpKind::Attention => 6.0,
        OpKind::LstmCell => 4.0,
        OpKind::Identity | OpKind::Split | OpKind::Concat => 1.0,
        _ => 1.0,
    }
}

/// Whether an op's output is short-lived (consumed immediately by the next
/// backward step) rather than being held across the iteration like forward
/// activations. Used by planning-time memory estimates.
pub fn is_transient(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::EltwiseGrad
            | OpKind::Conv2DBackprop
            | OpKind::AggregateGradients
            | OpKind::ApplyGradient
    )
}

/// The hardware ground truth: execution-time and memory synthesis.
#[derive(Debug, Clone)]
pub struct HardwarePerf {
    /// Per-op launch overhead in seconds.
    pub launch_overhead: f64,
}

impl Default for HardwarePerf {
    fn default() -> Self {
        HardwarePerf {
            launch_overhead: LAUNCH_OVERHEAD,
        }
    }
}

impl HardwarePerf {
    /// Creates the default V100-calibrated model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ground-truth execution time of `op` on `device`.
    ///
    /// Compute-bound kinds run at `flops / (efficiency · peak)`; memory-bound
    /// kinds move their input and output bytes at the device's memory
    /// bandwidth. Both are floored by the launch overhead.
    pub fn exec_time(&self, graph: &Graph, op: OpId, device: &Device) -> f64 {
        let o = graph.op_ref(op);
        let t = if o.kind.is_compute_bound() {
            o.flops as f64 / (efficiency(o.kind) * saturation(o.flops) * device.peak_flops)
        } else {
            let in_bytes: u64 = graph.in_edges(op).map(|e| e.bytes).sum();
            let moved = in_bytes + o.out_bytes();
            let bw_time = moved as f64 / device.mem_bandwidth;
            let flop_time = o.flops as f64 / (efficiency(o.kind) * device.peak_flops);
            bw_time.max(flop_time)
        };
        self.launch_overhead + t
    }

    /// Bytes permanently resident on a device for hosting `op`
    /// (parameters plus optimizer state for variables; 0 otherwise).
    pub fn resident_bytes(&self, op: &Operation) -> u64 {
        op.param_bytes.saturating_mul(OPTIMIZER_RESIDENT_FACTOR)
    }

    /// Bytes transiently allocated while `op`'s output is alive
    /// (output tensor times the kind's workspace factor).
    pub fn activation_bytes(&self, op: &Operation) -> u64 {
        if op.kind.is_variable() {
            // a variable's "output" is the parameter itself, already counted
            // as resident
            return 0;
        }
        (op.out_bytes() as f64 * workspace_factor(op.kind)) as u64
    }

    /// Planning-time estimate of the memory `op` pins on its device: resident
    /// bytes plus activation bytes, discounted for transient backward
    /// tensors. This is what the placement algorithms use for the paper's
    /// "memory need of `o_i` exceeds capacity of `d`" check (Alg. 1 line 13).
    pub fn planning_bytes(&self, op: &Operation) -> u64 {
        let act = self.activation_bytes(op);
        let act = if is_transient(op.kind) { act / 5 } else { act };
        self.resident_bytes(op) + act
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::Device;
    use fastt_graph::{Graph, Operation};

    fn dev() -> Device {
        Device::v100("g0")
    }

    fn one_op_graph(op: Operation) -> (Graph, OpId) {
        let mut g = Graph::new();
        let id = g.add_op(op).unwrap();
        (g, id)
    }

    #[test]
    fn compute_bound_scales_with_flops() {
        // Large kernels (far beyond the saturation knee) scale linearly.
        let hw = HardwarePerf::new();
        let (g1, a) = one_op_graph(Operation::new("a", OpKind::Conv2D, [1]).with_flops(1 << 40));
        let (g2, b) = one_op_graph(Operation::new("b", OpKind::Conv2D, [1]).with_flops(1 << 41));
        let ta = hw.exec_time(&g1, a, &dev()) - hw.launch_overhead;
        let tb = hw.exec_time(&g2, b, &dev()) - hw.launch_overhead;
        assert!((tb / ta - 2.0).abs() < 1e-3, "ratio {}", tb / ta);
    }

    #[test]
    fn small_kernels_lose_efficiency() {
        // Two ops with a 64x flop difference should differ by much more
        // than 64x in... no — the *small* one should be disproportionately
        // slow per flop (poor SM utilization).
        let hw = HardwarePerf::new();
        let small_flops = 1u64 << 24; // ~17 MFLOP, far below the knee
        let big_flops = small_flops * 1024;
        let (g1, a) =
            one_op_graph(Operation::new("a", OpKind::MatMul, [1]).with_flops(small_flops));
        let (g2, b) = one_op_graph(Operation::new("b", OpKind::MatMul, [1]).with_flops(big_flops));
        let ta = hw.exec_time(&g1, a, &dev()) - hw.launch_overhead;
        let tb = hw.exec_time(&g2, b, &dev()) - hw.launch_overhead;
        let per_flop_small = ta / small_flops as f64;
        let per_flop_big = tb / big_flops as f64;
        assert!(per_flop_small > 5.0 * per_flop_big);
    }

    #[test]
    fn memory_bound_scales_with_bytes() {
        let hw = HardwarePerf::new();
        let (g, a) = one_op_graph(Operation::new("r", OpKind::Relu, [1 << 20]));
        let t = hw.exec_time(&g, a, &dev());
        let expected = hw.launch_overhead + (4u64 << 20) as f64 / dev().mem_bandwidth;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn launch_overhead_floors_tiny_ops() {
        let hw = HardwarePerf::new();
        let (g, a) = one_op_graph(Operation::new("t", OpKind::Add, [1]));
        assert!(hw.exec_time(&g, a, &dev()) >= hw.launch_overhead);
    }

    #[test]
    fn conv_time_realistic_for_vgg_conv1_2() {
        // VGG-19 conv1_2 at batch 64: 2*64*224^2*3*3*64*64 flops ≈ 237 GFLOP.
        // The paper's Table 5 reports 11.1 ms on a V100; at 48% efficiency we
        // should land within a small factor.
        let hw = HardwarePerf::new();
        let flops = 2u64 * 64 * 224 * 224 * 3 * 3 * 64 * 64;
        let (g, a) = one_op_graph(Operation::new("c", OpKind::Conv2D, [1]).with_flops(flops));
        let t = hw.exec_time(&g, a, &dev());
        assert!(t > 0.005 && t < 0.08, "conv1_2 time = {t}s");
    }

    #[test]
    fn variable_memory_counts_optimizer_state() {
        let hw = HardwarePerf::new();
        let v = Operation::new("w", OpKind::Variable, [1024]).with_param_bytes(4096);
        assert_eq!(hw.resident_bytes(&v), 4096 * OPTIMIZER_RESIDENT_FACTOR);
        assert_eq!(hw.activation_bytes(&v), 0);
    }

    #[test]
    fn transient_kinds_discounted_in_planning() {
        let hw = HardwarePerf::new();
        let f = Operation::new("f", OpKind::Softmax, [1 << 20]);
        let b = Operation::new("b", OpKind::EltwiseGrad, [1 << 20]);
        assert!(hw.planning_bytes(&f) > hw.planning_bytes(&b));
    }

    #[test]
    fn faster_device_runs_compute_ops_faster() {
        let hw = HardwarePerf::new();
        let (g, a) = one_op_graph(Operation::new("m", OpKind::MatMul, [1]).with_flops(1 << 32));
        let slow = Device::v100("s").with_peak_flops(1.0e12);
        let fast = Device::v100("f").with_peak_flops(20.0e12);
        assert!(hw.exec_time(&g, a, &fast) < hw.exec_time(&g, a, &slow));
    }
}
