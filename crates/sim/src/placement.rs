//! Device placements: the mapping from operations to devices.

use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{Graph, OpId};

/// A complete device assignment: one device per operation
/// (the paper's output (ii), Sec. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    device_of: Vec<DeviceId>,
}

impl Placement {
    /// Creates a placement from a per-op device vector (indexed by `OpId`).
    pub fn new(device_of: Vec<DeviceId>) -> Self {
        Placement { device_of }
    }

    /// Places every one of `n_ops` operations on `device`.
    pub fn uniform(n_ops: usize, device: DeviceId) -> Self {
        Placement {
            device_of: vec![device; n_ops],
        }
    }

    /// The device assigned to `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn device_of(&self, op: OpId) -> DeviceId {
        self.device_of[op.index()]
    }

    /// Reassigns `op` to `device`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn set(&mut self, op: OpId, device: DeviceId) {
        self.device_of[op.index()] = device;
    }

    /// Number of ops covered.
    pub fn len(&self) -> usize {
        self.device_of.len()
    }

    /// Whether the placement covers no ops.
    pub fn is_empty(&self) -> bool {
        self.device_of.is_empty()
    }

    /// Iterates over `(op, device)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, DeviceId)> + '_ {
        self.device_of
            .iter()
            .enumerate()
            .map(|(i, &d)| (OpId(i as u32), d))
    }

    /// The set of distinct devices actually used (FastT "may not use all the
    /// input devices", Sec. 5.2).
    pub fn devices_used(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.device_of.clone();
        v.sort();
        v.dedup();
        v
    }

    /// Number of ops per device (the quantity plotted in the paper's
    /// Fig. 4).
    pub fn op_histogram(&self, topo: &Topology) -> Vec<usize> {
        let mut h = vec![0usize; topo.device_count()];
        for &d in &self.device_of {
            if d.index() < h.len() {
                h[d.index()] += 1;
            }
        }
        h
    }

    /// Checks that the placement covers exactly the graph's ops, uses only
    /// devices present in `topo`, and honours every colocation group.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self, graph: &Graph, topo: &Topology) -> Result<(), String> {
        if self.device_of.len() != graph.op_count() {
            return Err(format!(
                "placement covers {} ops but graph has {}",
                self.device_of.len(),
                graph.op_count()
            ));
        }
        for (op, d) in self.iter() {
            if d.index() >= topo.device_count() {
                return Err(format!("op {op} placed on unknown device {d}"));
            }
            if topo.is_failed(d) {
                return Err(format!("op {op} placed on failed device {d}"));
            }
        }
        for grp in graph.colocation_groups() {
            let first = self.device_of(grp[0]);
            for &o in grp.iter().skip(1) {
                if self.device_of(o) != first {
                    return Err(format!(
                        "colocation violated: `{}` on {} but `{}` on {}",
                        graph.op_ref(grp[0]).name,
                        first,
                        graph.op_ref(o).name,
                        self.device_of(o)
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::{OpKind, Operation};

    fn two_op_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        g.connect(a, b).unwrap();
        g
    }

    #[test]
    fn uniform_covers_all() {
        let g = two_op_graph();
        let t = Topology::single_server(2);
        let p = Placement::uniform(g.op_count(), DeviceId(1));
        p.validate(&g, &t).unwrap();
        assert_eq!(p.devices_used(), vec![DeviceId(1)]);
    }

    #[test]
    fn histogram_counts_ops() {
        let g = two_op_graph();
        let t = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(OpId(1), DeviceId(1));
        // histogram covers every device, including the idle CPU host
        assert_eq!(p.op_histogram(&t), vec![1, 1, 0]);
    }

    #[test]
    fn wrong_length_rejected() {
        let g = two_op_graph();
        let t = Topology::single_server(1);
        let p = Placement::uniform(1, DeviceId(0));
        assert!(p.validate(&g, &t).is_err());
    }

    #[test]
    fn unknown_device_rejected() {
        let g = two_op_graph();
        let t = Topology::single_server(1);
        let p = Placement::uniform(g.op_count(), DeviceId(7));
        assert!(p.validate(&g, &t).is_err());
    }

    #[test]
    fn failed_device_rejected() {
        let g = two_op_graph();
        let mut t = Topology::single_server(2);
        let p = Placement::uniform(g.op_count(), DeviceId(1));
        p.validate(&g, &t).unwrap();
        t.fail_device(DeviceId(1));
        let err = p.validate(&g, &t).unwrap_err();
        assert!(err.contains("failed device"));
    }

    #[test]
    fn colocation_violation_rejected() {
        let mut g = two_op_graph();
        g.colocate(&[OpId(0), OpId(1)]);
        let t = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(OpId(1), DeviceId(1));
        let err = p.validate(&g, &t).unwrap_err();
        assert!(err.contains("colocation"));
    }
}
