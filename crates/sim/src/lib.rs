//! # fastt-sim
//!
//! Discrete-event multi-GPU execution simulator for the FastT reproduction.
//!
//! The paper evaluates on servers with 8 NVIDIA V100 GPUs; this crate is the
//! substitute substrate (see DESIGN.md): it executes a placed training graph
//! over a [`fastt_cluster::Topology`], modelling
//!
//! * per-device serial kernel execution, with the ready queue popped either
//!   FIFO (TensorFlow's default executor) or by FastT's enforced priorities
//!   ([`ExecPolicy`]);
//! * inter-device tensor transfers serialized per link (per device pair
//!   inside a server, per NIC pair across servers), overlapping with
//!   compute;
//! * device memory with parameter/optimizer residency and activation
//!   lifetimes, failing with [`SimError::Oom`] exactly where real training
//!   would;
//! * a hidden V100-calibrated hardware ground truth ([`HardwarePerf`]) that
//!   the adaptive cost models of `fastt-cost` must *learn* through profiling,
//!   exactly as the paper's module learns its testbed.
//!
//! # Examples
//!
//! ```
//! use fastt_cluster::{DeviceId, Topology};
//! use fastt_graph::{Graph, OpKind, Operation};
//! use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};
//!
//! let mut g = Graph::new();
//! let a = g.add_op(Operation::new("a", OpKind::Input, [1024]))?;
//! let b = g.add_op(Operation::new("b", OpKind::Relu, [1024]))?;
//! g.connect(a, b)?;
//!
//! let topo = Topology::single_server(2);
//! let placement = Placement::uniform(g.op_count(), DeviceId(0));
//! let trace = simulate(
//!     &g, &topo, &placement, &HardwarePerf::new(),
//!     ExecPolicy::Fifo, &SimConfig::default(),
//! )?;
//! assert!(trace.makespan > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod comm;
mod engine;
mod error;
pub mod faults;
mod hardware;
mod placement;
mod queue;
pub mod seed;
mod trace;

pub use comm::{CollectiveStep, CommPlan, OpComm, P2pSend};
pub use engine::{simulate, SimConfig};
pub use error::SimError;
pub use faults::{Fault, FaultKind, FaultSchedule, LifecycleEvent, LifecycleKind};
pub use hardware::{is_transient, HardwarePerf, LAUNCH_OVERHEAD, OPTIMIZER_RESIDENT_FACTOR};
pub use placement::Placement;
pub use queue::ExecPolicy;
pub use seed::SeedStream;
pub use trace::{CollectiveRecord, OpRecord, RunTrace, TransferRecord};
